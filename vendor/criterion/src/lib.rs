//! Minimal offline reimplementation of the `criterion` benchmarking API
//! used by the FTA workspace.
//!
//! The build environment has no registry access, so this vendored crate
//! (see `vendor/README.md`) provides a small wall-clock harness with the
//! upstream API shape: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function` / `bench_with_input` with [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Differences from upstream, by design: no statistical outlier analysis,
//! no plots, no baseline persistence. Each benchmark is warmed up briefly,
//! then timed over `sample_size` samples; the mean, minimum, and maximum
//! per-iteration times are printed in a `BENCH` line. `--bench` and
//! benchmark-name filter arguments passed by `cargo bench` are honoured.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export: upstream's `black_box` forwards to the standard library one.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Substring filter from the CLI (first free argument).
    filter: Option<String>,
    /// Default number of timed samples per benchmark.
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with flags such as `--bench`;
        // the first non-flag argument is a name filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run(name.to_string(), sample_size, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(&id) {
            return;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for sample in 0..=sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            // Sample 0 is an untimed warm-up.
            if sample > 0 && b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("BENCH {id}: no samples");
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "BENCH {id}: mean {} [min {}, max {}] over {} samples",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            samples.len(),
        );
    }
}

/// Human-readable time with an adaptive unit.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let n = self.effective_sample_size();
        self.criterion.run(full, n, f);
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let n = self.effective_sample_size();
        self.criterion.run(full, n, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op in this
    /// vendored harness beyond consuming the group).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into the string form of a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Returns the rendered identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`, accumulating into this sample.
    ///
    /// The routine runs enough iterations to make one sample meaningful on
    /// fast routines (at least one; more when a single call is ≪ 1 ms).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // First, one measured call to estimate cost.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        let mut iters: u64 = 1;
        let mut elapsed = first;
        // Fast routines: batch further calls up to ~2 ms per sample.
        if first < Duration::from_micros(200) {
            let target = Duration::from_millis(2);
            let per_call = first.max(Duration::from_nanos(20));
            let extra = (target.as_nanos() / per_call.as_nanos().max(1)).min(1_000_000) as u64;
            let start = Instant::now();
            for _ in 0..extra {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iters += extra;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("example");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("FGT", 200).to_string(), "FGT/200");
        assert_eq!(BenchmarkId::from_parameter(2.5).to_string(), "2.5");
    }
}

//! Minimal offline reimplementation of the `serde` data model used by the
//! FTA workspace.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny serde built around one concrete in-memory tree, [`Value`] (the same
//! type `serde_json` re-exports). [`Serialize`] converts a Rust value into a
//! `Value`; [`Deserialize`] reads one back. The derive macros from the
//! vendored `serde_derive` crate target exactly these traits.
//!
//! This is **not** the real serde's zero-copy visitor architecture — it is a
//! deliberately simple tree model that covers everything the workspace
//! needs: structs, newtypes, primitives, `String`, `Option`, `Vec`, tuples,
//! and `BTreeMap` with integer-like or string-like keys (serialised as JSON
//! object keys, matching `serde_json`).

#![deny(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped tree value: the single data model of the vendored serde.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, as serde_json does).
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, preserving insertion order (like serde_json's preserve_order).
    Object(Vec<(String, Value)>),
}

/// Static null used as the out-of-bounds fallback for indexing.
static NULL: Value = Value::Null;

impl Value {
    /// Returns true if the value is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interprets any numeric value as `f64` (like `serde_json::Value`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interprets the value as a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Interprets the value as a signed integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Interprets the value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Interprets the value as an object (ordered key/value pairs).
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key in an object, `None` for absent keys or non-objects.
    /// (Named `field` because the derive macros call it unambiguously.)
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Generic indexed lookup, matching `serde_json::Value::get`.
    #[must_use]
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Types usable as an index into a [`Value`] (`&str` keys, `usize` offsets).
pub trait ValueIndex {
    /// Returns the sub-value, or `None` when absent / wrong container kind.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.field(self)
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.field(self)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialisation error: a message plus optional field context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from any message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// A struct field was absent with no default.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while deserialising {ty}"))
    }

    /// The value had the wrong shape for the requested type.
    #[must_use]
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {expected}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Converts a value into the serde [`Value`] data model.
pub trait Serialize {
    /// Returns the tree representation of `self`.
    fn serialize_value(&self) -> Value;
}

/// Reconstructs a value from the serde [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a tree value.
    ///
    /// # Errors
    /// Returns [`DeError`] when the tree does not match the expected shape.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::type_mismatch("bool", v))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::type_mismatch("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| DeError::msg(format!(
                    "integer {u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let u = v
            .as_u64()
            .ok_or_else(|| DeError::type_mismatch("unsigned integer", v))?;
        usize::try_from(u).map_err(|_| DeError::msg(format!("integer {u} out of range for usize")))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = i64::from(*self);
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::type_mismatch("integer", v))?;
                <$t>::try_from(i).map_err(|_| DeError::msg(format!(
                    "integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        let i = *self as i64;
        if i >= 0 {
            Value::UInt(i as u64)
        } else {
            Value::Int(i)
        }
    }
}

impl Deserialize for isize {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let i = v
            .as_i64()
            .ok_or_else(|| DeError::type_mismatch("integer", v))?;
        isize::try_from(i).map_err(|_| DeError::msg(format!("integer {i} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::type_mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()
            .ok_or_else(|| DeError::type_mismatch("number", v))? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::type_mismatch("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(std::sync::Arc::new(T::deserialize_value(v)?))
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(std::rc::Rc::new(T::deserialize_value(v)?))
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$i.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::deserialize_value(
                            items.get($i).ok_or_else(|| DeError::msg("tuple too short"))?,
                        )?,
                    )+)),
                    other => Err(DeError::type_mismatch("tuple array", other)),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Converts a serialised map key to its JSON object-key string, mirroring
/// `serde_json`'s behaviour of stringifying integer keys.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key shape: {other:?}"),
    }
}

/// Parses a map key back from a JSON object-key string, trying the same
/// shapes `key_to_string` produces.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    // Try the raw string first, then numeric reinterpretations.
    if let Ok(k) = K::deserialize_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    Err(DeError::msg(format!("cannot parse map key `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.serialize_value()), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_falls_back_to_null() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.5)]),
        )]);
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert!(v["missing"][3].is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn map_keys_roundtrip_via_strings() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(7u32, "y".to_string());
        let v = m.serialize_value();
        let back: BTreeMap<u32, String> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn option_null_roundtrip() {
        let v = Option::<f64>::None.serialize_value();
        assert!(v.is_null());
        let back: Option<f64> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, None);
        let back: Option<f64> = Deserialize::deserialize_value(&Value::Float(1.5)).unwrap();
        assert_eq!(back, Some(1.5));
    }
}

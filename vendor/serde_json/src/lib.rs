//! Minimal offline reimplementation of the `serde_json` API surface used by
//! the FTA workspace.
//!
//! Backed by the vendored `serde`'s [`Value`] tree (re-exported here), it
//! provides [`to_string`], [`to_string_pretty`], and [`from_str`] with the
//! semantics the workspace relies on:
//!
//! * non-finite floats serialise as `null` (matching upstream serde_json);
//! * floats print via Rust's shortest-roundtrip formatting (the workspace
//!   enables `float_roundtrip` upstream; Rust's `{:?}` for `f64` gives the
//!   same guarantee);
//! * integer-keyed maps become objects with stringified keys;
//! * parsing accepts arbitrary nesting, unicode escapes, and scientific
//!   notation, and yields `Int`/`UInt` for integral literals.

#![deny(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error type for serialisation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips, and
        // always keeps a decimal point or exponent (e.g. "1.0"), so the
        // value re-parses as a float.
        out.push_str(&format!("{f:?}"));
    } else {
        // serde_json serialises NaN / ±inf as null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
/// Infallible for the shapes the workspace serialises; the `Result` mirrors
/// the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), false, 0);
    Ok(out)
}

/// Serialises `value` to a pretty-printed JSON string (2-space indent).
///
/// # Errors
/// Infallible for the shapes the workspace serialises; the `Result` mirrors
/// the upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), true, 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.consume_lit("null", Value::Null),
            Some(b't') => self.consume_lit("true", Value::Bool(true)),
            Some(b'f') => self.consume_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                if b < 0x20 {
                    return Err(self.err("raw control character in string"));
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is a &str, so slices on byte runs that stop at ASCII
                // delimiters stay valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.err(&format!("invalid escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::deserialize_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("a \"b\"\n".to_string())),
            (
                "xs".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5), Value::Int(-3)]),
            ),
            ("none".to_string(), Value::Null),
        ]);
        for json in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let json = to_string(&vec![f64::NAN, f64::INFINITY, 1.0]).unwrap();
        assert_eq!(json, "[null,null,1.0]");
        let back: Value = from_str(&json).unwrap();
        assert!(back[0].is_null());
        assert_eq!(back[2].as_f64(), Some(1.0));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1e-300, 123456.789, -2.2250738585072014e-308] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
    }

    #[test]
    fn integers_stay_integral() {
        let v: Value = from_str("[1, -2, 18446744073709551615]").unwrap();
        assert_eq!(v[0].as_u64(), Some(1));
        assert_eq!(v[1].as_i64(), Some(-2));
        assert_eq!(v[2].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{broken").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

//! Minimal offline reimplementation of the `rand` 0.8 API surface used by
//! the FTA workspace.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the handful of external crates it depends on (see
//! `vendor/README.md`). This crate provides deterministic, seedable random
//! number generation with the exact *API* of `rand` 0.8 that the workspace
//! uses — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` /
//! `gen_bool`, and `SliceRandom::{choose, shuffle}` — but **not** the same
//! random streams: `StdRng` here is xoshiro256++ seeded via SplitMix64
//! rather than ChaCha12. All workspace tests assert seed-*determinism* and
//! relative properties rather than absolute stream values, so the substitution
//! is behaviourally transparent.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// a small, fast, high-quality non-cryptographic PRNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Exports the raw xoshiro256++ state.
        ///
        /// Offline-vendor extension (not in upstream `rand`): the
        /// durability layer journals the fault RNG mid-stream so a
        /// recovered simulation draws the exact same tail of the fault
        /// sequence as an uninterrupted run.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`Self::state`]. The all-zero state is
        /// a fixed point of xoshiro256++ and is remapped the same way as in
        /// `seed_from_u64`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return Self {
                    s: [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0],
                };
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            // All-zero state would be a fixed point; SplitMix64 never
            // produces four consecutive zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                return Self {
                    s: [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0],
                };
            }
            Self { s }
        }
    }
}

/// A range of values that `Rng::gen_range` can sample uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp just inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        // Map 53 random bits onto [0, 1] inclusively.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo sampling: bias is < 2^-64 for the spans used here.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniformly samples a value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random slice operations.
pub mod seq {
    use super::RngCore;

    /// Extension methods for random selection and permutation of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() as u128 % self.len() as u128) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as u128 % (i as u128 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut live = StdRng::seed_from_u64(77);
        for _ in 0..13 {
            live.gen_range(0.0f64..1.0);
        }
        let mut restored = StdRng::from_state(live.state());
        for _ in 0..50 {
            assert_eq!(
                live.gen_range(0u64..u64::MAX),
                restored.gen_range(0u64..u64::MAX)
            );
        }
    }

    #[test]
    fn zero_state_is_remapped_off_the_fixed_point() {
        let mut rng = StdRng::from_state([0, 0, 0, 0]);
        assert_ne!(rng.gen_range(0u64..u64::MAX), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v), "{v}");
            let w: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive ranges include the upper bound.
        let mut max_seen = false;
        for _ in 0..1000 {
            if rng.gen_range(0u32..=3) == 3 {
                max_seen = true;
            }
        }
        assert!(max_seen);
    }

    #[test]
    fn choose_and_shuffle_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}

//! Minimal offline reimplementation of `serde_derive` for the FTA workspace.
//!
//! The build environment has no registry access, so this proc-macro crate is
//! vendored alongside a matching minimal `serde` (see `vendor/README.md`).
//! It supports exactly the shapes the workspace derives on:
//!
//! * structs with named fields (all field types must implement the vendored
//!   `serde::Serialize` / `serde::Deserialize` traits);
//! * newtype tuple structs (serialised transparently as the inner value);
//! * the field attributes `#[serde(skip_serializing_if = "path")]` and
//!   `#[serde(default)]`;
//! * `Option<T>` fields deserialise to `None` when the key is absent,
//!   matching upstream serde's behaviour.
//!
//! Enums, generics, and the wider serde attribute language are intentionally
//! rejected with a compile-time panic so accidental reliance is loud.
//!
//! No `syn`/`quote`: the input is parsed directly from `proc_macro`
//! token trees and the impls are emitted through `format!` + `.parse()`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field with the serde attributes we honour.
struct Field {
    name: String,
    /// Path from `#[serde(skip_serializing_if = "...")]`, if present.
    skip_serializing_if: Option<String>,
    /// True when `#[serde(default)]` is present.
    default: bool,
    /// First identifier of the type (e.g. `Option` for `Option<T>`).
    type_head: String,
}

/// Parsed derive input.
enum Input {
    Named { name: String, fields: Vec<Field> },
    Newtype { name: String },
}

/// Parses the serde attribute tokens inside `#[serde(...)]`.
fn parse_serde_attr(group: TokenStream, skip: &mut Option<String>, default: &mut bool) {
    let mut iter = group.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            match id.to_string().as_str() {
                "default" => *default = true,
                "skip_serializing_if" => {
                    // Expect `= "path"`.
                    match (iter.next(), iter.next()) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            let raw = lit.to_string();
                            *skip = Some(raw.trim_matches('"').to_string());
                        }
                        _ => panic!("serde_derive: malformed skip_serializing_if attribute"),
                    }
                }
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            }
        }
    }
}

/// Parses the fields of a braced struct body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Collect attributes for this field.
        let mut skip = None;
        let mut default = false;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            let mut inner = g.stream().into_iter();
                            if let Some(TokenTree::Ident(head)) = inner.next() {
                                if head.to_string() == "serde" {
                                    if let Some(TokenTree::Group(args)) = inner.next() {
                                        parse_serde_attr(args.stream(), &mut skip, &mut default);
                                    }
                                }
                                // Non-serde attributes (doc comments, cfg, …)
                                // are skipped silently.
                            }
                        }
                        _ => panic!("serde_derive: expected bracketed attribute after `#`"),
                    }
                }
                _ => break,
            }
        }
        // Skip visibility.
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        // Field name or end of body.
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected field name, found `{other}`"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive: expected `:` after field `{name}`"),
        }
        // Consume the type, tracking angle-bracket depth so commas inside
        // generics (e.g. BTreeMap<K, V>) do not end the field early.
        let mut type_head = String::new();
        let mut depth: i32 = 0;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Ident(id) if type_head.is_empty() => {
                    type_head = id.to_string();
                }
                _ => {}
            }
        }
        fields.push(Field {
            name,
            skip_serializing_if: skip,
            default,
            type_head,
        });
    }
    fields
}

/// Parses the derive input down to the shapes we support.
fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            panic!("serde_derive (vendored): enums are not supported")
        }
        other => panic!("serde_derive: expected `struct`, found {other:?}"),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct name, found {other:?}"),
    };
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Named {
            name,
            fields: parse_named_fields(g.stream()),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            // Count top-level fields: only newtypes are supported.
            let mut depth: i32 = 0;
            let mut commas = 0usize;
            let mut any = false;
            for tt in g.stream() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => commas += 1,
                    _ => any = true,
                }
            }
            if !any || commas > 0 {
                panic!("serde_derive (vendored): only newtype tuple structs are supported");
            }
            Input::Newtype { name }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive (vendored): generic types are not supported")
        }
        other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
    }
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::serialize_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Input::Named { name, fields } => {
            let mut body = String::from(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
            );
            for f in &fields {
                let push = format!(
                    "__fields.push((\"{n}\".to_string(), \
                     ::serde::Serialize::serialize_value(&self.{n})));",
                    n = f.name
                );
                if let Some(cond) = &f.skip_serializing_if {
                    body.push_str(&format!(
                        "if !({cond}(&self.{n})) {{ {push} }}\n",
                        n = f.name
                    ));
                } else {
                    body.push_str(&push);
                    body.push('\n');
                }
            }
            body.push_str("::serde::Value::Object(__fields)");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive: generated impl must parse")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     Ok(Self(::serde::Deserialize::deserialize_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Input::Named { name, fields } => {
            let mut body = String::from("Ok(Self {\n");
            for f in &fields {
                // `#[serde(default)]` and Option<…> fields tolerate absence.
                let missing = if f.default || f.type_head == "Option" {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return Err(::serde::DeError::missing_field(\"{name}\", \"{n}\"))",
                        n = f.name
                    )
                };
                body.push_str(&format!(
                    "{n}: match ::serde::Value::field(__v, \"{n}\") {{\n\
                         Some(__f) => ::serde::Deserialize::deserialize_value(__f)?,\n\
                         None => {missing},\n\
                     }},\n",
                    n = f.name
                ));
            }
            body.push_str("})");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive: generated impl must parse")
}

//! Minimal offline reimplementation of the `proptest` API surface used by
//! the FTA workspace.
//!
//! The build environment has no registry access, so this vendored crate
//! (see `vendor/README.md`) provides the subset the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`, ranges,
//! tuples, [`strategy::Just`], weighted [`prop_oneof!`],
//! [`collection::vec`], `prop::bool::ANY`, a character-class subset of
//! [`string::string_regex`], [`test_runner::ProptestConfig`], and the
//! [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` representation via plain `assert!`; it is not minimised.
//! * **Deterministic seeding.** Cases derive from a fixed seed mixed with
//!   the test's module path and name (FNV-1a), so failures reproduce
//!   across runs — there is no persistence file.
//! * Generation is uniform over the requested range with no bias toward
//!   boundary values.

#![deny(unsafe_code)]

pub use rand;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between type-erased strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must sum to a positive value.
        #[must_use]
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { options, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $i:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "proptest::collection::vec requires a non-empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy yielding `None` or `Some(inner)` with equal probability.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` values in `Option`, generating `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// String strategies: a character-class subset of `string_regex`.
pub mod string {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Error from [`string_regex`] for unsupported or malformed patterns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One parsed atom with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Atom {
        /// The characters this atom may produce.
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching the supported regex subset.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let reps = rng.gen_range(atom.min..=atom.max);
                for _ in 0..reps {
                    let idx = rng.gen_range(0..atom.chars.len());
                    out.push(atom.chars[idx]);
                }
            }
            out
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars
                .next()
                .ok_or_else(|| Error("unterminated character class".into()))?;
            match c {
                ']' => return Ok(set),
                '\\' => {
                    let esc = chars
                        .next()
                        .ok_or_else(|| Error("trailing backslash in class".into()))?;
                    let lit = match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    set.push(lit);
                    prev = Some(lit);
                }
                '-' => {
                    // Range if both endpoints exist; a literal '-' otherwise.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            if lo > hi {
                                return Err(Error(format!("bad range {lo}-{hi}")));
                            }
                            // `lo` is already in the set; add the rest.
                            let mut cur = lo as u32 + 1;
                            while cur <= hi as u32 {
                                set.push(
                                    char::from_u32(cur)
                                        .ok_or_else(|| Error("invalid range".into()))?,
                                );
                                cur += 1;
                            }
                            prev = None;
                        }
                        _ => {
                            set.push('-');
                            prev = Some('-');
                        }
                    }
                }
                lit => {
                    set.push(lit);
                    prev = Some(lit);
                }
            }
        }
    }

    fn parse_bounds(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<(usize, usize), Error> {
        // After '{': digits [ ',' digits ] '}'
        let mut min_s = String::new();
        let mut max_s = String::new();
        let mut in_max = false;
        loop {
            let c = chars
                .next()
                .ok_or_else(|| Error("unterminated repetition bounds".into()))?;
            match c {
                '}' => break,
                ',' => in_max = true,
                d if d.is_ascii_digit() => {
                    if in_max {
                        max_s.push(d);
                    } else {
                        min_s.push(d);
                    }
                }
                other => return Err(Error(format!("bad bounds character `{other}`"))),
            }
        }
        let min: usize = min_s
            .parse()
            .map_err(|_| Error("missing lower bound".into()))?;
        let max: usize = if in_max {
            max_s.parse().map_err(|_| Error("missing upper bound".into()))?
        } else {
            min
        };
        if max < min {
            return Err(Error("upper bound below lower bound".into()));
        }
        Ok((min, max))
    }

    /// Builds a strategy for strings matching `pattern`.
    ///
    /// Supported subset: literal characters, `\`-escapes, character classes
    /// `[...]` with ranges, and repetitions `{m}`, `{m,n}`, `?`, `*`/`+`
    /// (capped at 8 repetitions). Anything else returns an [`Error`].
    ///
    /// # Errors
    /// Returns [`Error`] on malformed or unsupported patterns.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let class = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => {
                    let esc = chars
                        .next()
                        .ok_or_else(|| Error("trailing backslash".into()))?;
                    vec![match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }]
                }
                '(' | ')' | '|' | '^' | '$' | '.' | '{' | '}' | '*' | '+' | '?' => {
                    return Err(Error(format!(
                        "unsupported regex construct `{c}` (vendored subset)"
                    )))
                }
                lit => vec![lit],
            };
            if class.is_empty() {
                return Err(Error("empty character class".into()));
            }
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    parse_bounds(&mut chars)?
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push(Atom {
                chars: class,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// FNV-1a hash of the test path, for stable per-test seeds.
    #[must_use]
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Deterministic per-case RNG.
    #[must_use]
    pub fn rng_for(test_seed: u64, case: u64) -> StdRng {
        StdRng::seed_from_u64(test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn name(binding in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::__rt::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::__rt::rng_for(__seed, __case);
                $(let $pat = $crate::strategy::Strategy::generate(
                    &($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// One-stop imports for property tests.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::string;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::__rt;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = __rt::rng_for(1, 0);
        for case in 0..500u64 {
            let mut rng2 = __rt::rng_for(17, case);
            let (a, b) = (0usize..5, -1.0f64..1.0).generate(&mut rng2);
            assert!(a < 5);
            assert!((-1.0..1.0).contains(&b));
        }
        let v = prop::collection::vec(0u32..10, 2..6).generate(&mut rng);
        assert!((2..6).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 10));
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![8 => Just(0u8), 1 => Just(1u8), 1 => Just(2u8)];
        let mut counts = [0usize; 3];
        for case in 0..2000 {
            let mut rng = __rt::rng_for(3, case);
            counts[s.generate(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1] * 3, "{counts:?}");
        assert!(counts[1] > 0 && counts[2] > 0, "{counts:?}");
    }

    #[test]
    fn string_regex_subset_matches_class() {
        let s = crate::string::string_regex("[a-c0-2 ,\"<>&|-]{0,24}").unwrap();
        for case in 0..200 {
            let mut rng = __rt::rng_for(9, case);
            let out = s.generate(&mut rng);
            assert!(out.len() <= 24);
            assert!(out
                .chars()
                .all(|c| "abc012 ,\"<>&|-".contains(c)), "{out:?}");
        }
        assert!(crate::string::string_regex("a|b").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(mut xs in prop::collection::vec(0i32..100, 0..10), flip in prop::bool::ANY) {
            if flip {
                xs.reverse();
            }
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(xs.len(), xs.iter().count());
        }
    }

    #[test]
    fn macro_generated_test_runs() {
        macro_smoke();
    }
}

//! Command execution for the `fta` binary.

use crate::args::Command;
use fta_algorithms::{solve, SolveConfig};
use fta_core::{CenterId, DeliveryPointId, WorkerId};
use fta_data::io::{load_instance, save_assignment, save_instance};
use fta_data::{generate_gmission, generate_syn, GMissionConfig, SynConfig};
use fta_vdps::{schedule_route, VdpsConfig};
use std::fmt::Write as _;

/// Executes a parsed command, returning the text to print on stdout.
///
/// # Errors
///
/// Returns a human-readable error message (file problems, invalid
/// references, infeasible schedules).
pub fn execute(command: &Command) -> Result<String, String> {
    match command {
        Command::Generate {
            dataset,
            seed,
            workers,
            tasks,
            dps,
            centers,
            expiry,
            max_dp,
            out,
        } => {
            let instance = if dataset == "syn" {
                let mut cfg = SynConfig::bench_scale();
                if let Some(v) = workers {
                    cfg.n_workers = *v;
                }
                if let Some(v) = tasks {
                    cfg.n_tasks = *v;
                }
                if let Some(v) = dps {
                    cfg.n_delivery_points = *v;
                }
                if let Some(v) = centers {
                    cfg.n_centers = *v;
                }
                if let Some(v) = expiry {
                    cfg.expiry = *v;
                }
                if let Some(v) = max_dp {
                    cfg.max_dp = *v;
                }
                generate_syn(&cfg, *seed)
            } else {
                let mut cfg = GMissionConfig::default();
                if let Some(v) = workers {
                    cfg.n_workers = *v;
                }
                if let Some(v) = tasks {
                    cfg.n_tasks = *v;
                }
                if let Some(v) = dps {
                    cfg.n_delivery_points = *v;
                }
                if let Some(v) = expiry {
                    cfg.expiry_max = *v;
                }
                if let Some(v) = max_dp {
                    cfg.max_dp = *v;
                }
                generate_gmission(&cfg, *seed)
            };
            save_instance(out, &instance).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {} ({} centers, {} workers, {} delivery points, {} tasks)\n",
                out.display(),
                instance.centers.len(),
                instance.workers.len(),
                instance.delivery_points.len(),
                instance.tasks.len(),
            ))
        }
        Command::Inspect { instance } => {
            let inst = load_instance(instance).map_err(|e| e.to_string())?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{}: {} centers, {} workers, {} delivery points, {} tasks (total reward {:.1}), speed {} km/h",
                instance.display(),
                inst.centers.len(),
                inst.workers.len(),
                inst.delivery_points.len(),
                inst.tasks.len(),
                inst.total_reward(),
                inst.speed,
            );
            let aggs = inst.dp_aggregates();
            for view in inst.center_views() {
                let tasks: usize = view.dps.iter().map(|dp| aggs[dp.index()].task_count).sum();
                let _ = writeln!(
                    out,
                    "  {}: {} workers, {} task-bearing delivery points, {} tasks",
                    view.center,
                    view.workers.len(),
                    view.dps.len(),
                    tasks,
                );
            }
            Ok(out)
        }
        Command::Solve {
            instance,
            algorithm,
            algorithm_name,
            epsilon,
            max_len,
            engine,
            parallel,
            out,
        } => {
            let inst = load_instance(instance).map_err(|e| e.to_string())?;
            let vdps = VdpsConfig {
                epsilon: *epsilon,
                max_len: *max_len,
                engine: *engine,
            };
            let outcome = solve(
                &inst,
                &SolveConfig {
                    vdps,
                    algorithm: *algorithm,
                    parallel: *parallel,
                },
            );
            outcome
                .assignment
                .validate(&inst)
                .map_err(|e| format!("internal error: invalid assignment: {e}"))?;
            let workers: Vec<WorkerId> = inst.workers.iter().map(|w| w.id).collect();
            let mut text = format!(
                "{algorithm_name} on {} ({:.1?} VDPS + {:.1?} assignment):\n",
                instance.display(),
                outcome.vdps_time,
                outcome.assign_time,
            );
            text.push_str(&outcome.assignment.summary(&inst, &workers));
            if outcome.gen_stats.vdps_count > 0 {
                let g = outcome.gen_stats;
                let _ = writeln!(
                    text,
                    "vdps generation ({} engine): {} sets from {} states, {} extensions ({} distance-pruned, {} deadline-pruned), dp {:.1} ms + routes {:.1} ms, {} chunks, {} steals, {} merge collisions",
                    engine.name(),
                    g.vdps_count,
                    g.states,
                    g.extensions_tried,
                    g.pruned_by_distance,
                    g.pruned_by_deadline,
                    g.dp_nanos as f64 / 1e6,
                    g.route_nanos as f64 / 1e6,
                    g.chunks,
                    g.steals,
                    g.merge_collisions,
                );
            }
            if !outcome.br_stats.is_empty() {
                let s = outcome.br_stats;
                let _ = writeln!(
                    text,
                    "best-response work: {} rounds, {} candidate evals, {} switches ({} to null), {} evaluator builds, {} incremental updates",
                    s.rounds,
                    s.candidate_evaluations,
                    s.switches,
                    s.null_adoptions,
                    s.evaluator_builds,
                    s.evaluator_updates,
                );
            }
            if let Some(path) = out {
                save_assignment(path, &outcome.assignment).map_err(|e| e.to_string())?;
                let _ = writeln!(text, "assignment written to {}", path.display());
            }
            Ok(text)
        }
        Command::Compare {
            instance,
            epsilon,
            max_len,
            engine,
            parallel,
        } => {
            use fta_algorithms::{Algorithm, FgtConfig, IegtConfig, MptaConfig};
            let inst = load_instance(instance).map_err(|e| e.to_string())?;
            let workers: Vec<WorkerId> = inst.workers.iter().map(|w| w.id).collect();
            let vdps = VdpsConfig {
                epsilon: *epsilon,
                max_len: *max_len,
                engine: *engine,
            };
            let mut text = format!(
                "{:<6} {:>10} {:>11} {:>8} {:>10} {:>11}\n",
                "algo", "P_dif", "avg payoff", "jain", "assigned", "time (ms)"
            );
            for (label, algorithm) in [
                ("MPTA", Algorithm::Mpta(MptaConfig::default())),
                ("GTA", Algorithm::Gta),
                ("FGT", Algorithm::Fgt(FgtConfig::default())),
                ("IEGT", Algorithm::Iegt(IegtConfig::default())),
            ] {
                let outcome = solve(
                    &inst,
                    &SolveConfig {
                        vdps,
                        algorithm,
                        parallel: *parallel,
                    },
                );
                let report = outcome.assignment.fairness(&inst, &workers);
                let _ = writeln!(
                    text,
                    "{label:<6} {:>10.4} {:>11.4} {:>8.4} {:>7}/{:<3} {:>10.1}",
                    report.payoff_difference,
                    report.average_payoff,
                    report.jain,
                    outcome.assignment.assigned_workers(),
                    workers.len(),
                    outcome.total_time().as_secs_f64() * 1e3,
                );
            }
            Ok(text)
        }
        Command::Schedule {
            instance,
            center,
            dps,
        } => {
            let inst = load_instance(instance).map_err(|e| e.to_string())?;
            let center = CenterId(*center);
            if center.index() >= inst.centers.len() {
                return Err(format!("{center} does not exist"));
            }
            let dp_ids: Vec<DeliveryPointId> = dps.iter().map(|&d| DeliveryPointId(d)).collect();
            for dp in &dp_ids {
                if dp.index() >= inst.delivery_points.len() {
                    return Err(format!("{dp} does not exist"));
                }
                if inst.delivery_points[dp.index()].center != center {
                    return Err(format!("{dp} belongs to another distribution center"));
                }
            }
            match schedule_route(&inst, center, &dp_ids) {
                Some(route) => {
                    let stops: Vec<String> = route.dps().iter().map(ToString::to_string).collect();
                    Ok(format!(
                        "{} -> {} | travel from center {:.3} h, reward {:.2}, slack {:.3} h\n",
                        center,
                        stops.join(" -> "),
                        route.travel_from_dc(),
                        route.total_reward(),
                        route.slack(),
                    ))
                }
                None => Err("no deadline-feasible visiting order exists for that set".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fta-cli-test-{}-{name}", std::process::id()));
        p
    }

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn generate_inspect_solve_schedule_pipeline() {
        let instance_path = temp("city.json");
        let plan_path = temp("plan.json");

        // generate
        let cmd = parse(&argv(&format!(
            "generate syn --seed 3 --centers 1 --workers 8 --tasks 80 --dps 12 --out {}",
            instance_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("8 workers"));

        // inspect
        let cmd = parse(&argv(&format!("inspect {}", instance_path.display()))).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("dc0"));
        assert!(out.contains("80 tasks"));

        // solve
        let cmd = parse(&argv(&format!(
            "solve {} --algo gta --out {}",
            instance_path.display(),
            plan_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("P_dif"));
        assert!(out.contains("assignment written"));
        assert!(plan_path.exists());

        // schedule: pick two delivery points from the written instance.
        let inst = fta_data::io::load_instance(&instance_path).unwrap();
        let views = inst.center_views();
        let dps = &views[0].dps;
        if dps.len() >= 2 {
            let cmd = parse(&argv(&format!(
                "schedule {} --center 0 --dps {},{}",
                instance_path.display(),
                dps[0].0,
                dps[1].0
            )))
            .unwrap();
            // Feasibility depends on deadlines; either a route or a clear error.
            match execute(&cmd) {
                Ok(out) => assert!(out.contains("->")),
                Err(e) => assert!(e.contains("deadline")),
            }
        }

        let _ = std::fs::remove_file(&instance_path);
        let _ = std::fs::remove_file(&plan_path);
    }

    #[test]
    fn solve_reports_best_response_work_for_game_algorithms() {
        let instance_path = temp("brwork.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 21 --centers 1 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        // FGT surfaces its equilibrium-loop counters…
        let cmd = parse(&argv(&format!(
            "solve {} --algo fgt",
            instance_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(
            out.contains("best-response work:"),
            "missing stats in:\n{out}"
        );
        assert!(out.contains("evaluator builds"));

        // …while the non-iterative baseline stays silent.
        let cmd = parse(&argv(&format!(
            "solve {} --algo gta",
            instance_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(!out.contains("best-response work:"));

        let _ = std::fs::remove_file(&instance_path);
    }

    #[test]
    fn solve_reports_generation_work_for_both_engines() {
        let instance_path = temp("genwork.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 33 --centers 1 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        let mut summaries = Vec::new();
        for engine in ["flat", "hashmap"] {
            let cmd = parse(&argv(&format!(
                "solve {} --algo gta --engine {engine}",
                instance_path.display()
            )))
            .unwrap();
            let out = execute(&cmd).unwrap();
            assert!(
                out.contains(&format!("vdps generation ({engine} engine):")),
                "missing generation stats in:\n{out}"
            );
            // The work-counter prefix of the stats line (everything before
            // the timings) must be engine-independent.
            let line = out
                .lines()
                .find(|l| l.starts_with("vdps generation"))
                .unwrap();
            let work = line
                .split_once(" sets from ")
                .map(|(_, rest)| rest.split_once(", dp ").unwrap().0.to_owned())
                .unwrap();
            summaries.push(work);
        }
        assert_eq!(summaries[0], summaries[1]);
        let _ = std::fs::remove_file(&instance_path);
    }

    #[test]
    fn compare_prints_all_algorithms() {
        let instance_path = temp("compare.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 11 --centers 1 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        let cmd = parse(&argv(&format!("compare {}", instance_path.display()))).unwrap();
        let out = execute(&cmd).unwrap();
        for label in ["MPTA", "GTA", "FGT", "IEGT"] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
        assert!(out.contains("P_dif"));
        let _ = std::fs::remove_file(&instance_path);
    }

    #[test]
    fn missing_instance_file_is_reported() {
        let cmd = parse(&argv("inspect /nonexistent/fta-instance.json")).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("i/o error"));
    }

    #[test]
    fn schedule_rejects_foreign_and_unknown_dps() {
        let instance_path = temp("two-centers.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 5 --centers 2 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        let inst = fta_data::io::load_instance(&instance_path).unwrap();
        // Find a dp belonging to center 1 and ask center 0 to schedule it.
        let foreign = inst
            .delivery_points
            .iter()
            .find(|dp| dp.center == fta_core::CenterId(1))
            .expect("two centers have dps");
        let cmd = parse(&argv(&format!(
            "schedule {} --center 0 --dps {}",
            instance_path.display(),
            foreign.id.0
        )))
        .unwrap();
        assert!(execute(&cmd)
            .unwrap_err()
            .contains("another distribution center"));

        let cmd = parse(&argv(&format!(
            "schedule {} --center 0 --dps 9999",
            instance_path.display()
        )))
        .unwrap();
        assert!(execute(&cmd).unwrap_err().contains("does not exist"));

        let _ = std::fs::remove_file(&instance_path);
    }
}

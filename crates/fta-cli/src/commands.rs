//! Command execution for the `fta` binary.

use crate::args::Command;
use fta_algorithms::{solve, SolveConfig};
use fta_core::{CenterId, DeliveryPointId, SolveBudget, WorkerId};
use fta_data::io::{load_instance, save_assignment, save_instance};
use fta_data::{generate_gmission, generate_syn, GMissionConfig, SynConfig};
use fta_durable::FsyncPolicy;
use fta_vdps::{schedule_route, VdpsConfig};
use std::fmt::Write as _;

/// Milliseconds since the Unix epoch (ledger header timestamps).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Name of the run-description file `simulate --durable-dir` writes next
/// to the journal, so `fta recover <DIR>` is self-contained.
pub const META_FILE: &str = "meta.json";

/// The CLI-level simulation parameters — everything needed to rebuild
/// the exact [`fta_sim::Scenario`] and [`fta_sim::SimConfig`] of a
/// `simulate` invocation. Persisted as `meta.json` in durable
/// directories and read back by `recover`.
struct SimParams {
    policy: String,
    seed: u64,
    hours: f64,
    period_minutes: f64,
    workers: usize,
    dps: usize,
    rate: f64,
    faults: bool,
    fault_seed: Option<u64>,
    budget_ms: Option<u64>,
    incremental: bool,
}

impl SimParams {
    /// Builds the scenario and (non-durable) simulation config. Shared
    /// by `simulate` and `recover` so a recovered day is constructed
    /// through the exact same code path as the original one.
    fn build(&self) -> Result<(fta_sim::Scenario, fta_sim::SimConfig), String> {
        use fta_sim::{DispatchPolicy, FaultPlan, Scenario, ScenarioConfig, SimConfig};
        let scenario = Scenario::generate(
            &ScenarioConfig {
                n_workers: self.workers,
                n_delivery_points: self.dps,
                arrival_rate: self.rate,
                ..ScenarioConfig::default()
            },
            self.hours,
            self.seed,
        );
        let dispatch = if self.policy == "immediate" {
            DispatchPolicy::Immediate
        } else {
            let algorithm = crate::args::algorithm_by_name(&self.policy)
                .ok_or_else(|| format!("unknown policy `{}`", self.policy))?;
            DispatchPolicy::Batch(algorithm)
        };
        let mut config = SimConfig {
            horizon: self.hours,
            assignment_period: self.period_minutes / 60.0,
            policy: dispatch,
            vdps: VdpsConfig::pruned(2.0, 3),
            ..SimConfig::day(fta_algorithms::Algorithm::Gta)
        };
        if let Some(ms) = self.budget_ms {
            config.budget = SolveBudget::wall_ms(ms);
        }
        config.incremental = self.incremental;
        if self.faults {
            config.faults = Some(FaultPlan::stress(self.fault_seed.unwrap_or(self.seed)));
        }
        Ok((scenario, config))
    }

    /// Serialises the parameters (plus the journal knobs) as `meta.json`.
    fn meta_json(&self, fsync: FsyncPolicy, snapshot_every: u64) -> String {
        use serde_json::Value;
        let opt_u64 = |v: Option<u64>| v.map(Value::UInt).unwrap_or(Value::Null);
        let fsync = match fsync {
            FsyncPolicy::Always => "always".to_owned(),
            FsyncPolicy::Never => "never".to_owned(),
            FsyncPolicy::EveryN(n) => n.to_string(),
        };
        let fields = vec![
            ("schema", Value::String("fta-sim-meta".to_owned())),
            ("version", Value::UInt(1)),
            ("policy", Value::String(self.policy.clone())),
            ("seed", Value::UInt(self.seed)),
            ("hours", Value::Float(self.hours)),
            ("period_minutes", Value::Float(self.period_minutes)),
            ("workers", Value::UInt(self.workers as u64)),
            ("dps", Value::UInt(self.dps as u64)),
            ("rate", Value::Float(self.rate)),
            ("faults", Value::Bool(self.faults)),
            ("fault_seed", opt_u64(self.fault_seed)),
            ("budget_ms", opt_u64(self.budget_ms)),
            ("incremental", Value::Bool(self.incremental)),
            ("fsync", Value::String(fsync)),
            ("snapshot_every", Value::UInt(snapshot_every)),
        ];
        let value = Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect());
        serde_json::to_string(&value).expect("meta serialises") + "\n"
    }

    /// Reads `meta.json` back; also returns the journal knobs it recorded.
    fn from_meta(path: &std::path::Path) -> Result<(Self, FsyncPolicy, u64), String> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            format!(
                "{}: {e} (was this directory written by `fta simulate --durable-dir`?)",
                path.display()
            )
        })?;
        let v: serde_json::Value = serde_json::from_str(text.trim())
            .map_err(|e| format!("{}: not valid JSON: {e:?}", path.display()))?;
        if v["schema"] != "fta-sim-meta" {
            return Err(format!("{}: not an fta-sim-meta file", path.display()));
        }
        let version = v["version"].as_u64().unwrap_or(0);
        if version != 1 {
            return Err(format!(
                "{}: unsupported meta version {version} (expected 1)",
                path.display()
            ));
        }
        let num = |name: &str| {
            v[name]
                .as_f64()
                .ok_or_else(|| format!("{}: missing numeric field `{name}`", path.display()))
        };
        let int = |name: &str| {
            v[name]
                .as_u64()
                .ok_or_else(|| format!("{}: missing integer field `{name}`", path.display()))
        };
        let params = SimParams {
            policy: v["policy"]
                .as_str()
                .ok_or_else(|| format!("{}: missing field `policy`", path.display()))?
                .to_owned(),
            seed: int("seed")?,
            hours: num("hours")?,
            period_minutes: num("period_minutes")?,
            workers: int("workers")? as usize,
            dps: int("dps")? as usize,
            rate: num("rate")?,
            faults: v["faults"].as_bool().unwrap_or(false),
            fault_seed: v["fault_seed"].as_u64(),
            budget_ms: v["budget_ms"].as_u64(),
            incremental: v["incremental"].as_bool().unwrap_or(false),
        };
        let fsync_raw = v["fsync"].as_str().unwrap_or("8");
        let fsync = FsyncPolicy::parse(fsync_raw)
            .ok_or_else(|| format!("{}: bad fsync policy `{fsync_raw}`", path.display()))?;
        let snapshot_every = v["snapshot_every"].as_u64().unwrap_or(16).max(1);
        Ok((params, fsync, snapshot_every))
    }
}

/// Renders the longitudinal day summary printed by both `simulate` and
/// `recover` — identical bodies, so a recovered day's output can be
/// compared line-for-line against the uninterrupted one.
fn day_summary(
    params: &SimParams,
    config: &fta_sim::SimConfig,
    metrics: &fta_sim::DayMetrics,
) -> String {
    let mut text = format!(
        "simulated {:.1} h, {} rounds ({}{} every {:.0} min, {} couriers)\n",
        params.hours,
        metrics.rounds,
        params.policy,
        if params.incremental {
            ", incremental"
        } else {
            ""
        },
        params.period_minutes,
        params.workers,
    );
    let _ = writeln!(
        text,
        "tasks: {} arrived, {} completed ({:.1}%), {} expired, {} pending, {} cancelled, {} abandoned",
        metrics.tasks_arrived,
        metrics.tasks_completed,
        100.0 * metrics.completion_rate(),
        metrics.tasks_expired,
        metrics.tasks_pending,
        metrics.tasks_cancelled,
        metrics.tasks_abandoned,
    );
    if config.faults.is_some() {
        let _ = writeln!(
            text,
            "faults: {} no-shows, {} dropouts, {} requeues, {} tasks lost",
            metrics.worker_no_shows,
            metrics.route_dropouts,
            metrics.reassignments,
            metrics.tasks_lost_to_faults(),
        );
    }
    if !config.budget.is_unlimited() {
        let _ = writeln!(
            text,
            "degradation: {} of {} rounds degraded under the {} ms budget",
            metrics.degraded_rounds,
            metrics.rounds,
            config.budget.wall_ms.unwrap_or_default(),
        );
    }
    let fairness = metrics.earnings_fairness();
    let _ = writeln!(
        text,
        "earnings fairness: P_dif {:.4}, gini {:.4}, mean utilization {:.1}%",
        fairness.payoff_difference,
        fairness.gini,
        100.0 * metrics.mean_utilization(),
    );
    text
}

/// One `wal-dump` output row for a journaled payload.
fn frame_line(payload: &[u8]) -> String {
    match fta_sim::frame_info(payload) {
        Ok(info) => {
            let mut flags = String::new();
            if info.has_fault_rng {
                flags.push_str(" +rng");
            }
            if info.has_solver_cache {
                flags.push_str(" +cache");
            }
            if info.has_ledger_record {
                flags.push_str(" +ledger");
            }
            format!(
                "  round {:>5}  t {:>6.2} h  {:>4} pending  {:>5} done  {:>4} expired  {:>4} cancelled  earnings {:>10.2}{}\n",
                info.round,
                info.sim_hours,
                info.pending,
                info.tasks_completed,
                info.tasks_expired,
                info.tasks_cancelled,
                info.earnings_total,
                flags,
            )
        }
        Err(e) => format!("  <frame does not decode: {e}>\n"),
    }
}

/// Load a file for `obs-diff` as a flat metric map, auto-detecting the
/// format: a JSONL solve ledger (first line carries the `fta-ledger`
/// schema header) flattens through [`fta_obs::ledger::Ledger::flatten`];
/// anything else is treated as Prometheus text exposition.
fn load_metric_map(
    path: &std::path::Path,
) -> Result<std::collections::BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let first = text.lines().next().unwrap_or_default();
    if first.trim_start().starts_with('{') && first.contains("fta-ledger") {
        let ledger =
            fta_obs::ledger::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(ledger.flatten())
    } else {
        fta_obs::ledger::flatten_prometheus(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Executes a parsed command, returning the text to print on stdout.
///
/// # Errors
///
/// Returns a human-readable error message (file problems, invalid
/// references, infeasible schedules).
pub fn execute(command: &Command) -> Result<String, String> {
    match command {
        Command::Generate {
            dataset,
            seed,
            workers,
            tasks,
            dps,
            centers,
            expiry,
            max_dp,
            out,
        } => {
            let instance = if dataset == "syn" {
                let mut cfg = SynConfig::bench_scale();
                if let Some(v) = workers {
                    cfg.n_workers = *v;
                }
                if let Some(v) = tasks {
                    cfg.n_tasks = *v;
                }
                if let Some(v) = dps {
                    cfg.n_delivery_points = *v;
                }
                if let Some(v) = centers {
                    cfg.n_centers = *v;
                }
                if let Some(v) = expiry {
                    cfg.expiry = *v;
                }
                if let Some(v) = max_dp {
                    cfg.max_dp = *v;
                }
                generate_syn(&cfg, *seed)
            } else {
                let mut cfg = GMissionConfig::default();
                if let Some(v) = workers {
                    cfg.n_workers = *v;
                }
                if let Some(v) = tasks {
                    cfg.n_tasks = *v;
                }
                if let Some(v) = dps {
                    cfg.n_delivery_points = *v;
                }
                if let Some(v) = expiry {
                    cfg.expiry_max = *v;
                }
                if let Some(v) = max_dp {
                    cfg.max_dp = *v;
                }
                generate_gmission(&cfg, *seed)
            };
            save_instance(out, &instance).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {} ({} centers, {} workers, {} delivery points, {} tasks)\n",
                out.display(),
                instance.centers.len(),
                instance.workers.len(),
                instance.delivery_points.len(),
                instance.tasks.len(),
            ))
        }
        Command::Inspect { instance } => {
            let inst = load_instance(instance).map_err(|e| e.to_string())?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{}: {} centers, {} workers, {} delivery points, {} tasks (total reward {:.1}), speed {} km/h",
                instance.display(),
                inst.centers.len(),
                inst.workers.len(),
                inst.delivery_points.len(),
                inst.tasks.len(),
                inst.total_reward(),
                inst.speed,
            );
            let aggs = inst.dp_aggregates();
            for view in inst.center_views() {
                let tasks: usize = view.dps.iter().map(|dp| aggs[dp.index()].task_count).sum();
                let _ = writeln!(
                    out,
                    "  {}: {} workers, {} task-bearing delivery points, {} tasks",
                    view.center,
                    view.workers.len(),
                    view.dps.len(),
                    tasks,
                );
            }
            Ok(out)
        }
        Command::Solve {
            instance,
            algorithm,
            algorithm_name,
            epsilon,
            max_len,
            engine,
            br_engine,
            parallel,
            budget_ms,
            max_states,
            max_rounds,
            out,
            trace_out,
            metrics_out,
            ledger_out,
            hotpath_profile,
            inject_panic,
            shards,
            shard_by,
        } => {
            use fta_algorithms::{fastpath_sound, solve_sharded, Algorithm, PanicInjection};
            if let Some(path) = hotpath_profile {
                let profile = fta_vdps::hotpath::load(path)
                    .map_err(|e| format!("--hotpath-profile {}: {e}", path.display()))?;
                fta_vdps::hotpath::install(&profile);
            }
            let inst = load_instance(instance).map_err(|e| e.to_string())?;
            // Thread the requested best-response engine into whichever
            // equilibrium loop the algorithm runs (baselines have none),
            // and remember whether the monotone fast path is sound for
            // the configured utilities so the report can echo it.
            let mut algorithm = *algorithm;
            let fastpath_eligible = match &mut algorithm {
                Algorithm::Fgt(cfg) => {
                    cfg.engine = *br_engine;
                    fastpath_sound(cfg.iau)
                }
                Algorithm::Pfgt(cfg) => {
                    cfg.base.engine = *br_engine;
                    fastpath_sound(cfg.base.iau)
                }
                Algorithm::Iegt(cfg) => {
                    cfg.engine = *br_engine;
                    // IEGT utilities are raw payoffs: always monotone.
                    true
                }
                _ => true,
            };
            let vdps = VdpsConfig {
                epsilon: *epsilon,
                max_len: *max_len,
                engine: *engine,
            };
            let budget = SolveBudget {
                wall_ms: *budget_ms,
                max_states: *max_states,
                max_rounds: *max_rounds,
            };
            // Install the telemetry recorder only when a sink was asked
            // for; otherwise the emit paths stay single-atomic-load cheap.
            let recorder =
                (trace_out.is_some() || metrics_out.is_some()).then(fta_obs::Recorder::install);
            let solve_config = SolveConfig {
                vdps,
                parallel: *parallel,
                budget,
                inject_panic: inject_panic.map(|center| PanicInjection {
                    center,
                    also_on_retry: false,
                }),
                ..SolveConfig::new(algorithm)
            };
            let outcome = match shards {
                Some(k) => solve_sharded(&inst, &solve_config, *k, *shard_by),
                None => solve(&inst, &solve_config),
            };
            let snapshot = recorder.map(fta_obs::Recorder::finish);
            outcome
                .assignment
                .validate(&inst)
                .map_err(|e| format!("internal error: invalid assignment: {e}"))?;
            let workers: Vec<WorkerId> = inst.workers.iter().map(|w| w.id).collect();
            let label = format!("{algorithm_name} on {}", instance.display());
            let mut text = String::new();
            let report = fta_algorithms::SolveReport::new(&outcome)
                .label(&label)
                .engine(engine.name())
                .br_engine(br_engine.name(), fastpath_eligible)
                .to_string();
            // Header first, assignment summary, then the stats lines.
            let mut lines = report.splitn(2, '\n');
            text.push_str(lines.next().unwrap_or_default());
            text.push('\n');
            text.push_str(&outcome.assignment.summary(&inst, &workers));
            text.push_str(lines.next().unwrap_or_default());
            if let Some(path) = out {
                save_assignment(path, &outcome.assignment).map_err(|e| e.to_string())?;
                let _ = writeln!(text, "assignment written to {}", path.display());
            }
            if let Some(snapshot) = snapshot {
                if let Some(path) = trace_out {
                    fta_obs::trace::write_file(&snapshot, path).map_err(|e| e.to_string())?;
                    let _ = writeln!(
                        text,
                        "telemetry trace ({} spans, {} round events) written to {}",
                        snapshot.spans.len(),
                        snapshot.rounds.len(),
                        path.display()
                    );
                }
                if let Some(path) = metrics_out {
                    std::fs::write(path, snapshot.to_prometheus()).map_err(|e| e.to_string())?;
                    let _ = writeln!(text, "metrics snapshot written to {}", path.display());
                }
            }
            if let Some(path) = ledger_out {
                let ledger = fta_obs::ledger::Ledger {
                    label,
                    created_unix_ms: unix_ms(),
                    records: vec![fta_algorithms::ledger::solve_record(
                        &inst,
                        &outcome,
                        algorithm_name,
                        engine.name(),
                    )],
                };
                fta_obs::ledger::write_file(&ledger, path).map_err(|e| e.to_string())?;
                let _ = writeln!(
                    text,
                    "solve ledger ({} centers) written to {}",
                    outcome.centers.len(),
                    path.display()
                );
            }
            Ok(text)
        }
        Command::Simulate {
            policy,
            seed,
            hours,
            period_minutes,
            workers,
            dps,
            rate,
            faults,
            fault_seed,
            budget_ms,
            incremental,
            trace_out,
            ledger_out,
            durable_dir,
            fsync,
            snapshot_every,
            crash_after_round,
        } => {
            let params = SimParams {
                policy: policy.clone(),
                seed: *seed,
                hours: *hours,
                period_minutes: *period_minutes,
                workers: *workers,
                dps: *dps,
                rate: *rate,
                faults: *faults,
                fault_seed: *fault_seed,
                budget_ms: *budget_ms,
                incremental: *incremental,
            };
            let (scenario, mut config) = params.build()?;
            if let Some(dir) = durable_dir {
                // meta.json goes in first so even a day that crashes on
                // its very first journaled round is recoverable.
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
                let meta = dir.join(META_FILE);
                std::fs::write(&meta, params.meta_json(*fsync, *snapshot_every))
                    .map_err(|e| format!("{}: {e}", meta.display()))?;
                config.durable = Some(fta_sim::DurableConfig {
                    dir: dir.clone(),
                    fsync: *fsync,
                    snapshot_every: *snapshot_every,
                    crash_after_round: *crash_after_round,
                });
            }
            let recorder = trace_out.is_some().then(fta_obs::Recorder::install);
            let mut ledger_records = Vec::new();
            let metrics = if ledger_out.is_some() {
                fta_sim::run_with_ledger(&scenario, &config, &mut ledger_records)
            } else {
                fta_sim::run(&scenario, &config)
            };
            let snapshot = recorder.map(fta_obs::Recorder::finish);

            let mut text = day_summary(&params, &config, &metrics);
            if let Some(dir) = durable_dir {
                let _ = writeln!(
                    text,
                    "durable journal in {} (fsync {fsync}, snapshot every {snapshot_every} rounds)",
                    dir.display(),
                );
            }
            if let (Some(snapshot), Some(path)) = (snapshot, trace_out.as_ref()) {
                fta_obs::trace::write_file(&snapshot, path).map_err(|e| e.to_string())?;
                let _ = writeln!(
                    text,
                    "telemetry trace ({} spans, {} counters) written to {}",
                    snapshot.spans.len(),
                    snapshot.counters.len(),
                    path.display()
                );
            }
            if let Some(path) = ledger_out {
                let rounds = ledger_records.len();
                let ledger = fta_obs::ledger::Ledger {
                    label: format!("simulate {policy} seed {seed}"),
                    created_unix_ms: unix_ms(),
                    records: ledger_records,
                };
                fta_obs::ledger::write_file(&ledger, path).map_err(|e| e.to_string())?;
                let _ = writeln!(
                    text,
                    "solve ledger ({rounds} rounds) written to {}",
                    path.display()
                );
            }
            Ok(text)
        }
        Command::Recover { dir, ledger_out } => {
            let (params, fsync, snapshot_every) = SimParams::from_meta(&dir.join(META_FILE))?;
            let (scenario, mut config) = params.build()?;
            config.durable = Some(fta_sim::DurableConfig {
                dir: dir.clone(),
                fsync,
                snapshot_every,
                crash_after_round: None,
            });
            let mut ledger_records = Vec::new();
            let (metrics, info) = if ledger_out.is_some() {
                fta_sim::restore_with_ledger(&scenario, &config, &mut ledger_records)
            } else {
                fta_sim::restore(&scenario, &config)
            }
            .map_err(|e| format!("{}: {e}", dir.display()))?;
            let mut text = format!(
                "recovered {}: resumed after round {} ({}, {} log frame(s), torn tail: {})\n",
                dir.display(),
                info.resumed_round,
                info.snapshot_round
                    .map_or("no snapshot".to_owned(), |r| format!("snapshot round {r}")),
                info.frames,
                if info.torn_tail { "yes" } else { "no" },
            );
            if info.cache_rehydrated {
                text.push_str("incremental solver caches re-hydrated from the journal\n");
            }
            text.push_str(&day_summary(&params, &config, &metrics));
            if let Some(path) = ledger_out {
                let rounds = ledger_records.len();
                let ledger = fta_obs::ledger::Ledger {
                    label: format!("simulate {} seed {}", params.policy, params.seed),
                    created_unix_ms: unix_ms(),
                    records: ledger_records,
                };
                fta_obs::ledger::write_file(&ledger, path).map_err(|e| e.to_string())?;
                let _ = writeln!(
                    text,
                    "solve ledger ({rounds} rounds, {} replayed from the journal) written to {}",
                    info.replayed_records,
                    path.display()
                );
            }
            Ok(text)
        }
        Command::WalDump { path } => {
            let (dir, wal) = if path.is_dir() {
                (Some(path.as_path()), path.join(fta_durable::WAL_FILE))
            } else {
                (None, path.clone())
            };
            let log = fta_durable::read_log(&wal).map_err(|e| format!("{}: {e}", wal.display()))?;
            let mut text = format!(
                "{}: fta-wal v1, fingerprint {:#018x}, {} clean frame(s), {} valid bytes{}\n",
                wal.display(),
                log.fingerprint,
                log.frames.len(),
                log.valid_len,
                if log.torn_tail {
                    ", torn tail dropped"
                } else {
                    ""
                },
            );
            if let Some(dir) = dir {
                let (snapshot, skipped) = fta_durable::latest_valid_snapshot(dir)
                    .map_err(|e| format!("{}: {e}", dir.display()))?;
                if let Some(snap) = snapshot {
                    let _ = writeln!(
                        text,
                        "snapshot after round {} ({} payload bytes):",
                        snap.round,
                        snap.payload.len()
                    );
                    text.push_str(&frame_line(&snap.payload));
                }
                if let Some(err) = skipped {
                    let _ = writeln!(text, "  (newest snapshot skipped: {err})");
                }
            }
            for frame in &log.frames {
                text.push_str(&frame_line(frame));
            }
            Ok(text)
        }
        Command::ObsDump {
            trace,
            chrome,
            by_center,
        } => {
            let parsed = fta_obs::trace::parse_file(trace).map_err(|e| e.to_string())?;
            if *chrome {
                return Ok(fta_obs::trace::to_chrome_trace(&parsed) + "\n");
            }
            let mut text = format!(
                "{} v{} trace: {} spans, {} round events, epoch {} ms\n",
                fta_obs::trace::SCHEMA_NAME,
                parsed.version,
                parsed.spans.len(),
                parsed.rounds.len(),
                parsed.epoch_unix_ms,
            );
            // Span totals by name.
            let mut totals: std::collections::BTreeMap<&str, (u64, u64)> =
                std::collections::BTreeMap::new();
            for span in &parsed.spans {
                let entry = totals.entry(span.name.as_str()).or_default();
                entry.0 += 1;
                entry.1 += span.duration_nanos;
            }
            for (name, (count, nanos)) in totals {
                let _ = writeln!(
                    text,
                    "  span {name:<24} {count:>7} x  {:>10.3} ms total",
                    nanos as f64 / 1e6
                );
            }
            for (name, value) in &parsed.counters {
                let _ = writeln!(text, "  counter {name:<24} {value}");
            }
            for (name, value) in &parsed.gauges {
                let _ = writeln!(text, "  gauge {name:<26} {value} (max)");
            }
            for (name, hist) in &parsed.hists {
                let mean = if hist.count > 0 {
                    hist.sum as f64 / hist.count as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    text,
                    "  hist {name:<27} {} samples, mean {mean:.0} ns",
                    hist.count
                );
            }
            let mut algos: Vec<&str> = parsed.rounds.iter().map(|r| r.algo.as_str()).collect();
            algos.sort_unstable();
            algos.dedup();
            for algo in algos {
                let n = parsed.rounds_for(algo).count();
                let last = parsed.rounds_for(algo).last();
                let _ = writeln!(
                    text,
                    "  rounds {algo:<25} {n} events, final P_dif {:.4}",
                    last.map_or(f64::NAN, |r| r.payoff_difference)
                );
            }
            if *by_center {
                // Per-center convergence table: rounds run, strategy
                // moves, and the final payoff difference of each center's
                // equilibrium loop.
                let mut centers: std::collections::BTreeMap<u32, (usize, u64, f64)> =
                    std::collections::BTreeMap::new();
                for round in &parsed.rounds {
                    let entry = centers.entry(round.center).or_insert((0, 0, f64::NAN));
                    entry.0 += 1;
                    entry.1 += round.moves;
                    entry.2 = round.payoff_difference;
                }
                let _ = writeln!(
                    text,
                    "  {:<8} {:>7} {:>8} {:>12}",
                    "center", "rounds", "moves", "final P_dif"
                );
                for (center, (rounds, moves, p_dif)) in centers {
                    let _ = writeln!(text, "  dc{center:<6} {rounds:>7} {moves:>8} {p_dif:>12.4}");
                }
                // Per-shard attribution: `solver.shard` spans carry the
                // shard index in their center attribute — one span per
                // shard per sharded solve.
                let mut shard_spans: std::collections::BTreeMap<u32, (u64, u64)> =
                    std::collections::BTreeMap::new();
                for span in &parsed.spans {
                    if span.name == "solver.shard" {
                        if let Some(shard) = span.center {
                            let entry = shard_spans.entry(shard).or_default();
                            entry.0 += 1;
                            entry.1 += span.duration_nanos;
                        }
                    }
                }
                if !shard_spans.is_empty() {
                    let _ = writeln!(text, "  {:<8} {:>7} {:>14}", "shard", "solves", "total ms");
                    for (shard, (count, nanos)) in shard_spans {
                        let _ = writeln!(
                            text,
                            "  sh{shard:<6} {count:>7} {:>14.3}",
                            nanos as f64 / 1e6
                        );
                    }
                }
            }
            Ok(text)
        }
        Command::FlightDump { snapshot } => {
            let dump = fta_obs::ring::parse_file(snapshot)
                .map_err(|e| format!("{}: {e}", snapshot.display()))?;
            let mut text = format!(
                "{} v{} snapshot: reason `{}`{}, {} threads, {} events, {} dropped\n",
                fta_obs::ring::SCHEMA_NAME,
                dump.version,
                dump.reason,
                dump.center
                    .map(|c| format!(" (center dc{c})"))
                    .unwrap_or_default(),
                dump.threads,
                dump.events.len(),
                dump.dropped,
            );
            let mut last_thread = None;
            for event in &dump.events {
                if last_thread != Some(event.thread) {
                    let _ = writeln!(text, "  thread {}:", event.thread);
                    last_thread = Some(event.thread);
                }
                let _ = writeln!(
                    text,
                    "    #{:<6} +{:>12} ns  {:<8} {:<28} {}{}",
                    event.seq,
                    event.t_nanos,
                    event.kind.name(),
                    event.name,
                    event.value,
                    event.center.map(|c| format!("  dc{c}")).unwrap_or_default(),
                );
            }
            Ok(text)
        }
        Command::ObsDiff {
            a,
            b,
            tolerance_pct,
            ignore,
        } => {
            let mut map_a = load_metric_map(a)?;
            let mut map_b = load_metric_map(b)?;
            if !ignore.is_empty() {
                let ignored = |key: &str| ignore.iter().any(|f| key.split('.').any(|seg| seg == f));
                map_a.retain(|k, _| !ignored(k));
                map_b.retain(|k, _| !ignored(k));
            }
            let report = fta_obs::ledger::diff_maps(&map_a, &map_b, *tolerance_pct);
            let mut text = String::new();
            let out_of_band = report.out_of_band();
            for entry in report.changed() {
                let flag = if entry.within(*tolerance_pct) {
                    ""
                } else {
                    "  OUT OF BAND"
                };
                let _ = writeln!(
                    text,
                    "  {:<40} {:>14.4} -> {:>14.4}  ({:+.4}){flag}",
                    entry.key,
                    entry.a,
                    entry.b,
                    entry.delta(),
                );
            }
            let _ = writeln!(
                text,
                "{} metrics compared, {} changed, {} out of band (tolerance {}%{})",
                report.entries.len(),
                report.changed().len(),
                out_of_band.len(),
                tolerance_pct,
                if ignore.is_empty() {
                    String::new()
                } else {
                    format!(", ignoring: {}", ignore.join(", "))
                },
            );
            if out_of_band.is_empty() {
                Ok(text)
            } else {
                Err(text)
            }
        }
        Command::Compare {
            instance,
            epsilon,
            max_len,
            engine,
            parallel,
        } => {
            use fta_algorithms::{Algorithm, FgtConfig, IegtConfig, MptaConfig};
            let inst = load_instance(instance).map_err(|e| e.to_string())?;
            let workers: Vec<WorkerId> = inst.workers.iter().map(|w| w.id).collect();
            let vdps = VdpsConfig {
                epsilon: *epsilon,
                max_len: *max_len,
                engine: *engine,
            };
            let mut text = format!(
                "{:<6} {:>10} {:>11} {:>8} {:>10} {:>11}\n",
                "algo", "P_dif", "avg payoff", "jain", "assigned", "time (ms)"
            );
            for (label, algorithm) in [
                ("MPTA", Algorithm::Mpta(MptaConfig::default())),
                ("GTA", Algorithm::Gta),
                ("FGT", Algorithm::Fgt(FgtConfig::default())),
                ("IEGT", Algorithm::Iegt(IegtConfig::default())),
            ] {
                let outcome = solve(
                    &inst,
                    &SolveConfig {
                        vdps,
                        parallel: *parallel,
                        ..SolveConfig::new(algorithm)
                    },
                );
                let report = outcome.assignment.fairness(&inst, &workers);
                let _ = writeln!(
                    text,
                    "{label:<6} {:>10.4} {:>11.4} {:>8.4} {:>7}/{:<3} {:>10.1}",
                    report.payoff_difference,
                    report.average_payoff,
                    report.jain,
                    outcome.assignment.assigned_workers(),
                    workers.len(),
                    outcome.total_time().as_secs_f64() * 1e3,
                );
            }
            Ok(text)
        }
        Command::Schedule {
            instance,
            center,
            dps,
        } => {
            let inst = load_instance(instance).map_err(|e| e.to_string())?;
            let center = CenterId(*center);
            if center.index() >= inst.centers.len() {
                return Err(format!("{center} does not exist"));
            }
            let dp_ids: Vec<DeliveryPointId> = dps.iter().map(|&d| DeliveryPointId(d)).collect();
            for dp in &dp_ids {
                if dp.index() >= inst.delivery_points.len() {
                    return Err(format!("{dp} does not exist"));
                }
                if inst.delivery_points[dp.index()].center != center {
                    return Err(format!("{dp} belongs to another distribution center"));
                }
            }
            match schedule_route(&inst, center, &dp_ids) {
                Ok(Some(route)) => {
                    let stops: Vec<String> = route.dps().iter().map(ToString::to_string).collect();
                    Ok(format!(
                        "{} -> {} | travel from center {:.3} h, reward {:.2}, slack {:.3} h\n",
                        center,
                        stops.join(" -> "),
                        route.travel_from_dc(),
                        route.total_reward(),
                        route.slack(),
                    ))
                }
                Ok(None) => Err("no deadline-feasible visiting order exists for that set".into()),
                Err(e) => Err(format!("invalid delivery-point set: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fta-cli-test-{}-{name}", std::process::id()));
        p
    }

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn generate_inspect_solve_schedule_pipeline() {
        let instance_path = temp("city.json");
        let plan_path = temp("plan.json");

        // generate
        let cmd = parse(&argv(&format!(
            "generate syn --seed 3 --centers 1 --workers 8 --tasks 80 --dps 12 --out {}",
            instance_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("8 workers"));

        // inspect
        let cmd = parse(&argv(&format!("inspect {}", instance_path.display()))).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("dc0"));
        assert!(out.contains("80 tasks"));

        // solve
        let cmd = parse(&argv(&format!(
            "solve {} --algo gta --out {}",
            instance_path.display(),
            plan_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("P_dif"));
        assert!(out.contains("assignment written"));
        assert!(plan_path.exists());

        // schedule: pick two delivery points from the written instance.
        let inst = fta_data::io::load_instance(&instance_path).unwrap();
        let views = inst.center_views();
        let dps = &views[0].dps;
        if dps.len() >= 2 {
            let cmd = parse(&argv(&format!(
                "schedule {} --center 0 --dps {},{}",
                instance_path.display(),
                dps[0].0,
                dps[1].0
            )))
            .unwrap();
            // Feasibility depends on deadlines; either a route or a clear error.
            match execute(&cmd) {
                Ok(out) => assert!(out.contains("->")),
                Err(e) => assert!(e.contains("deadline")),
            }
        }

        let _ = std::fs::remove_file(&instance_path);
        let _ = std::fs::remove_file(&plan_path);
    }

    #[test]
    fn solve_reports_best_response_work_for_game_algorithms() {
        let instance_path = temp("brwork.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 21 --centers 1 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        // FGT surfaces its equilibrium-loop counters…
        let cmd = parse(&argv(&format!(
            "solve {} --algo fgt",
            instance_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(
            out.contains("best-response work:"),
            "missing stats in:\n{out}"
        );
        assert!(out.contains("evaluator builds"));
        assert!(out.contains("fast-path rounds"));
        // The default engine is the self-guarding fast path, and the
        // paper's default IAU weights (β = 0.5) make it sound.
        assert!(
            out.contains("best-response engine: fastpath (fast path eligible)"),
            "missing engine echo in:\n{out}"
        );

        // …while the non-iterative baseline stays silent.
        let cmd = parse(&argv(&format!(
            "solve {} --algo gta",
            instance_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(!out.contains("best-response work:"));
        assert!(!out.contains("best-response engine:"));

        let _ = std::fs::remove_file(&instance_path);
    }

    #[test]
    fn br_engine_flag_switches_engines_without_changing_the_equilibrium() {
        let instance_path = temp("brengine.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 27 --centers 1 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        let run = |flag: &str| {
            let cmd = parse(&argv(&format!(
                "solve {} --algo fgt{flag}",
                instance_path.display()
            )))
            .unwrap();
            execute(&cmd).unwrap()
        };
        let fast = run(" --br-engine fastpath");
        let exhaustive = run(" --br-engine exhaustive");
        assert!(fast.contains("best-response engine: fastpath"));
        assert!(exhaustive.contains("best-response engine: exhaustive"));

        // All engines converge to the same equilibrium; the rendered
        // convergence line (P_dif, average payoff) must agree.
        let convergence = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("convergence:"))
                .map(str::to_owned)
                .expect("convergence line present")
        };
        assert_eq!(convergence(&fast), convergence(&exhaustive));

        let _ = std::fs::remove_file(&instance_path);
    }

    #[test]
    fn solve_reports_generation_work_for_both_engines() {
        let instance_path = temp("genwork.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 33 --centers 1 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        let mut summaries = Vec::new();
        for engine in ["flat", "hashmap"] {
            let cmd = parse(&argv(&format!(
                "solve {} --algo gta --engine {engine}",
                instance_path.display()
            )))
            .unwrap();
            let out = execute(&cmd).unwrap();
            assert!(
                out.contains(&format!("vdps generation ({engine} engine):")),
                "missing generation stats in:\n{out}"
            );
            // The work-counter prefix of the stats line (everything before
            // the timings) must be engine-independent.
            let line = out
                .lines()
                .find(|l| l.starts_with("vdps generation"))
                .unwrap();
            let work = line
                .split_once(" sets from ")
                .map(|(_, rest)| rest.split_once(", dp ").unwrap().0.to_owned())
                .unwrap();
            summaries.push(work);
        }
        assert_eq!(summaries[0], summaries[1]);
        let _ = std::fs::remove_file(&instance_path);
    }

    /// End-to-end telemetry: `solve --trace-out --metrics-out` writes a
    /// parseable JSONL trace and a Prometheus snapshot, and `obs-dump` can
    /// summarise / Chrome-convert the trace.
    ///
    /// The observability recorder is process-global, so this must remain
    /// the only recorder-installing test in the `fta-cli` test binary.
    #[test]
    fn solve_writes_trace_and_metrics_and_obs_dump_reads_them() {
        let instance_path = temp("telemetry.json");
        let trace_path = temp("telemetry-trace.jsonl");
        let metrics_path = temp("telemetry-metrics.prom");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 41 --centers 2 --workers 8 --tasks 80 --dps 12 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        let cmd = parse(&argv(&format!(
            "solve {} --algo iegt --trace-out {} --metrics-out {}",
            instance_path.display(),
            trace_path.display(),
            metrics_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(
            out.contains("telemetry trace ("),
            "missing trace line:\n{out}"
        );
        assert!(out.contains("metrics snapshot written to"));

        // The trace parses against the versioned schema and holds one
        // solver span per center plus IEGT round events.
        let parsed = fta_obs::trace::parse_file(&trace_path).unwrap();
        assert_eq!(parsed.version, fta_obs::trace::SCHEMA_VERSION);
        assert!(parsed.spans_named("solver.center").count() >= 2);
        assert!(parsed.spans_named("vdps.generate").next().is_some());
        assert!(parsed.rounds_for("IEGT").next().is_some());
        assert!(parsed.counters.contains_key("vdps.count"));
        assert!(parsed.counters.contains_key("br.rounds"));

        // The metrics file is well-formed Prometheus exposition text.
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        let families = fta_obs::trace::validate_prometheus(&prom).unwrap();
        assert!(families > 0, "expected at least one metric family");

        // obs-dump: human summary and Chrome conversion both work.
        let cmd = parse(&argv(&format!("obs-dump {}", trace_path.display()))).unwrap();
        let summary = execute(&cmd).unwrap();
        assert!(summary.contains("solver.center"));
        assert!(summary.contains("br.rounds"));
        let cmd = parse(&argv(&format!(
            "obs-dump {} --chrome",
            trace_path.display()
        )))
        .unwrap();
        let chrome = execute(&cmd).unwrap();
        assert!(chrome.trim_start().starts_with('{'));
        assert!(chrome.contains("traceEvents"));
        assert!(chrome.contains("\"ph\":\"X\""));

        let _ = std::fs::remove_file(&instance_path);
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn compare_prints_all_algorithms() {
        let instance_path = temp("compare.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 11 --centers 1 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        let cmd = parse(&argv(&format!("compare {}", instance_path.display()))).unwrap();
        let out = execute(&cmd).unwrap();
        for label in ["MPTA", "GTA", "FGT", "IEGT"] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
        assert!(out.contains("P_dif"));
        let _ = std::fs::remove_file(&instance_path);
    }

    #[test]
    fn solve_with_exhausted_budget_degrades_but_succeeds() {
        let instance_path = temp("budget.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 13 --centers 2 --workers 8 --tasks 80 --dps 12 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        // A zero wall-clock budget forces every center onto the bottom
        // rung; the command still exits successfully with a valid plan.
        let cmd = parse(&argv(&format!(
            "solve {} --algo iegt --budget-ms 0",
            instance_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("degradation:"), "missing report in:\n{out}");
        assert!(out.contains("fell back to single-stop routes"));

        // Unbudgeted solves print no degradation line.
        let cmd = parse(&argv(&format!(
            "solve {} --algo iegt",
            instance_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(!out.contains("degradation:"));

        let _ = std::fs::remove_file(&instance_path);
    }

    #[test]
    fn simulate_reports_faults_and_degradation() {
        // No --trace-out here: the recorder is process-global and owned by
        // the telemetry test.
        let cmd = parse(&argv(
            "simulate --algo gta --seed 3 --hours 1 --period-min 15 --workers 6 \
             --dps 12 --rate 40 --faults --fault-seed 5 --budget-ms 0",
        ))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("tasks:"), "missing task line in:\n{out}");
        assert!(out.contains("faults:"), "missing fault line in:\n{out}");
        assert!(
            out.contains("rounds degraded under the 0 ms budget"),
            "missing degradation line in:\n{out}"
        );
        assert!(out.contains("earnings fairness:"));

        // Pristine runs print neither of the robustness lines.
        let cmd = parse(&argv(
            "simulate --algo gta --seed 3 --hours 1 --workers 6 --dps 12 --rate 40",
        ))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(!out.contains("faults:"));
        assert!(!out.contains("degraded under"));
    }

    #[test]
    fn obs_dump_rejects_schema_version_mismatch_with_clear_message() {
        let trace_path = temp("future-trace.jsonl");
        std::fs::write(
            &trace_path,
            "{\"schema\":\"fta-obs-trace\",\"version\":99,\"epoch_unix_ms\":0}\n",
        )
        .unwrap();
        let cmd = parse(&argv(&format!("obs-dump {}", trace_path.display()))).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(
            err.contains("unsupported") && err.contains("99"),
            "unclear version-mismatch message: {err}"
        );
        let _ = std::fs::remove_file(&trace_path);
    }

    #[test]
    fn flight_dump_decodes_a_snapshot() {
        let snapshot_path = temp("flight.jsonl");
        fta_obs::ring::mark("cli-test-mark", Some(7));
        fta_obs::ring::dump_to_file("cli-test", Some(7), &snapshot_path).unwrap();
        let cmd = parse(&argv(&format!("flight-dump {}", snapshot_path.display()))).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(
            out.contains("fta-flight v1 snapshot"),
            "header missing:\n{out}"
        );
        assert!(out.contains("reason `cli-test` (center dc7)"));
        assert!(out.contains("cli-test-mark"));
        assert!(out.contains("thread "));
        // A corrupt snapshot is a clear error, not a panic.
        std::fs::write(&snapshot_path, "not json\n").unwrap();
        let cmd = parse(&argv(&format!("flight-dump {}", snapshot_path.display()))).unwrap();
        assert!(execute(&cmd).is_err());
        let _ = std::fs::remove_file(&snapshot_path);
    }

    #[test]
    fn solve_ledger_out_attributes_injected_panic() {
        let instance_path = temp("ledger-instance.json");
        let ledger_path = temp("ledger-solve.jsonl");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 51 --centers 2 --workers 8 --tasks 80 --dps 12 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        // The injected panic is quarantined: the command still succeeds
        // and the ledger pins the panic on the right center.
        let cmd = parse(&argv(&format!(
            "solve {} --algo gta --inject-panic 1 --ledger-out {}",
            instance_path.display(),
            ledger_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("solve ledger (2 centers) written to"));

        let ledger = fta_obs::ledger::parse_file(&ledger_path).unwrap();
        assert_eq!(ledger.records.len(), 1);
        let record = &ledger.records[0];
        assert!(record.degraded);
        let healthy = record.centers.iter().find(|c| c.center == 0).unwrap();
        assert_eq!(healthy.rung, "full");
        let panicked = record.centers.iter().find(|c| c.center == 1).unwrap();
        assert_ne!(panicked.rung, "full");
        assert_eq!(panicked.budget_axis.as_deref(), Some("panic"));
        assert!(panicked.events.iter().any(|e| e.contains("panic")));

        let _ = std::fs::remove_file(&instance_path);
        let _ = std::fs::remove_file(&ledger_path);
    }

    #[test]
    fn simulate_ledger_out_writes_one_record_per_round() {
        let ledger_path = temp("ledger-sim.jsonl");
        let cmd = parse(&argv(&format!(
            "simulate --algo gta --seed 9 --hours 1 --period-min 15 --workers 6 \
             --dps 12 --rate 40 --faults --budget-ms 0 --ledger-out {}",
            ledger_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(
            out.contains("solve ledger ("),
            "missing ledger line:\n{out}"
        );
        let ledger = fta_obs::ledger::parse_file(&ledger_path).unwrap();
        assert!(!ledger.records.is_empty());
        for record in &ledger.records {
            assert!(record.round.is_some());
            assert!(record.sim_hours.is_some());
            assert!(record.budget_exhausted, "0 ms budget must exhaust");
        }
        let _ = std::fs::remove_file(&ledger_path);
    }

    #[test]
    fn obs_diff_self_is_zero_and_tolerance_bands_deltas() {
        let a_path = temp("diff-a.jsonl");
        let b_path = temp("diff-b.jsonl");
        let instance_path = temp("diff-instance.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 61 --centers 1 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();
        let solve_to = |path: &PathBuf, algo: &str| {
            let cmd = parse(&argv(&format!(
                "solve {} --algo {algo} --ledger-out {}",
                instance_path.display(),
                path.display()
            )))
            .unwrap();
            execute(&cmd).unwrap();
        };
        solve_to(&a_path, "gta");

        // Self-diff: zero deltas, success.
        let cmd = parse(&argv(&format!(
            "obs-diff {} {}",
            a_path.display(),
            a_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(
            out.contains("0 changed, 0 out of band"),
            "not clean:\n{out}"
        );

        // Different algorithms: the work counters differ; zero tolerance
        // fails, a huge tolerance passes.
        solve_to(&b_path, "fgt");
        let cmd = parse(&argv(&format!(
            "obs-diff {} {}",
            a_path.display(),
            b_path.display()
        )))
        .unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("OUT OF BAND"), "no flagged deltas:\n{err}");
        let cmd = parse(&argv(&format!(
            "obs-diff {} {} --tolerance 1000000",
            a_path.display(),
            b_path.display()
        )))
        .unwrap();
        assert!(execute(&cmd).is_ok());

        let _ = std::fs::remove_file(&a_path);
        let _ = std::fs::remove_file(&b_path);
        let _ = std::fs::remove_file(&instance_path);
    }

    #[test]
    fn obs_dump_by_center_prints_the_table() {
        // Reuses the trace written by the telemetry test? No — that test
        // owns the recorder. Build a trace file by hand instead.
        let trace_path = temp("by-center.jsonl");
        let header = "{\"schema\":\"fta-obs-trace\",\"version\":1,\"epoch_unix_ms\":0}";
        let r1 = "{\"type\":\"round\",\"algo\":\"FGT\",\"center\":0,\"round\":1,\"moves\":3,\
                  \"payoff_difference\":0.5,\"average_payoff\":1.0,\"potential\":2.0,\"t_ms\":1}";
        let r2 = "{\"type\":\"round\",\"algo\":\"FGT\",\"center\":0,\"round\":2,\"moves\":1,\
                  \"payoff_difference\":0.25,\"average_payoff\":1.0,\"potential\":2.5,\"t_ms\":2}";
        let r3 = "{\"type\":\"round\",\"algo\":\"FGT\",\"center\":3,\"round\":1,\"moves\":2,\
                  \"payoff_difference\":0.125,\"average_payoff\":1.5,\"potential\":3.0,\"t_ms\":3}";
        std::fs::write(&trace_path, format!("{header}\n{r1}\n{r2}\n{r3}\n")).unwrap();
        let cmd = parse(&argv(&format!(
            "obs-dump {} --by-center",
            trace_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("center"), "missing table header:\n{out}");
        assert!(out.contains("dc0"), "missing center 0 row:\n{out}");
        assert!(out.contains("dc3"), "missing center 3 row:\n{out}");
        assert!(out.contains("0.2500"), "missing final P_dif:\n{out}");
        // Without the flag the table is absent.
        let cmd = parse(&argv(&format!("obs-dump {}", trace_path.display()))).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(!out.contains("final P_dif\n"));
        let _ = std::fs::remove_file(&trace_path);
    }

    #[test]
    fn simulate_durable_then_recover_is_bit_identical() {
        let dir = temp("durable-day");
        let _ = std::fs::remove_dir_all(&dir);

        // Journal a faulted day with an effectively-infinite snapshot
        // cadence so the whole day survives in the log.
        let simulate = format!(
            "simulate --algo gta --seed 4 --hours 1 --period-min 15 --workers 6 --dps 12 \
             --rate 40 --faults --durable-dir {} --fsync never --snapshot-every 100000",
            dir.display()
        );
        let cmd = parse(&argv(&simulate)).unwrap();
        let original = execute(&cmd).unwrap();
        assert!(
            original.contains("durable journal in"),
            "missing journal line:\n{original}"
        );
        assert!(dir.join(META_FILE).exists(), "meta.json must be written");
        let wal = dir.join(fta_durable::WAL_FILE);
        assert!(wal.exists(), "commit log must be written");

        // "Crash": tear the final frame mid-payload.
        let full = std::fs::metadata(&wal).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(full - 5)
            .unwrap();

        // wal-dump reports the torn tail and decodes the clean frames.
        let cmd = parse(&argv(&format!("wal-dump {}", dir.display()))).unwrap();
        let dump = execute(&cmd).unwrap();
        assert!(dump.contains("torn tail dropped"), "no torn tail:\n{dump}");
        assert!(dump.contains("round "), "no frame rows:\n{dump}");
        assert!(
            dump.contains("+rng"),
            "faulted day journals its RNG:\n{dump}"
        );

        // recover finishes the day bit-for-bit: every summary line after
        // the recovery header must equal the uninterrupted output.
        let cmd = parse(&argv(&format!("recover {}", dir.display()))).unwrap();
        let recovered = execute(&cmd).unwrap();
        assert!(
            recovered.contains("torn tail: yes"),
            "missing torn-tail note:\n{recovered}"
        );
        let body = |out: &str| {
            out.lines()
                .filter(|l| {
                    l.starts_with("simulated")
                        || l.starts_with("tasks:")
                        || l.starts_with("faults:")
                        || l.starts_with("earnings fairness:")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body(&recovered), body(&original), "recovered day diverged");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_ledger_matches_uninterrupted_ledger_modulo_nanos() {
        let dir = temp("durable-ledger");
        let a_path = temp("durable-ledger-a.jsonl");
        let b_path = temp("durable-ledger-b.jsonl");
        let _ = std::fs::remove_dir_all(&dir);

        let cmd = parse(&argv(&format!(
            "simulate --algo gta --seed 8 --hours 1 --period-min 15 --workers 6 --dps 12 \
             --rate 40 --faults --budget-ms 0 --ledger-out {} --durable-dir {} --fsync never",
            a_path.display(),
            dir.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        // Recover the (complete) day: the re-materialised ledger must
        // agree with the uninterrupted one on everything deterministic.
        let cmd = parse(&argv(&format!(
            "recover {} --ledger-out {}",
            dir.display(),
            b_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(
            out.contains("replayed from the journal"),
            "missing replay note:\n{out}"
        );

        let cmd = parse(&argv(&format!(
            "obs-diff {} {} --ignore nanos",
            a_path.display(),
            b_path.display()
        )))
        .unwrap();
        let diff = execute(&cmd).unwrap();
        assert!(
            diff.contains("0 out of band"),
            "recovered ledger diverged:\n{diff}"
        );
        assert!(diff.contains("ignoring: nanos"));

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&a_path);
        let _ = std::fs::remove_file(&b_path);
    }

    #[test]
    fn recover_without_meta_is_a_clear_error() {
        let dir = temp("no-meta");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cmd = parse(&argv(&format!("recover {}", dir.display()))).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(
            err.contains("meta.json") && err.contains("--durable-dir"),
            "unclear error: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_instance_file_is_reported() {
        let cmd = parse(&argv("inspect /nonexistent/fta-instance.json")).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("i/o error"));
    }

    #[test]
    fn schedule_rejects_foreign_and_unknown_dps() {
        let instance_path = temp("two-centers.json");
        let cmd = parse(&argv(&format!(
            "generate syn --seed 5 --centers 2 --workers 6 --tasks 60 --dps 10 --out {}",
            instance_path.display()
        )))
        .unwrap();
        execute(&cmd).unwrap();

        let inst = fta_data::io::load_instance(&instance_path).unwrap();
        // Find a dp belonging to center 1 and ask center 0 to schedule it.
        let foreign = inst
            .delivery_points
            .iter()
            .find(|dp| dp.center == fta_core::CenterId(1))
            .expect("two centers have dps");
        let cmd = parse(&argv(&format!(
            "schedule {} --center 0 --dps {}",
            instance_path.display(),
            foreign.id.0
        )))
        .unwrap();
        assert!(execute(&cmd)
            .unwrap_err()
            .contains("another distribution center"));

        let cmd = parse(&argv(&format!(
            "schedule {} --center 0 --dps 9999",
            instance_path.display()
        )))
        .unwrap();
        assert!(execute(&cmd).unwrap_err().contains("does not exist"));

        let _ = std::fs::remove_file(&instance_path);
    }
}

//! Argument parsing for the `fta` binary (hand-rolled, dependency-free).

use fta_algorithms::{Algorithm, BestResponseEngine, FgtConfig, IegtConfig, MptaConfig};
use fta_core::ShardBy;
use fta_durable::FsyncPolicy;
use fta_vdps::VdpsEngine;
use std::path::PathBuf;

/// The usage banner.
pub const USAGE: &str = "\
usage: fta <COMMAND>

COMMANDS
  generate <syn|gm> [--seed S] [--workers N] [--tasks N] [--dps N]
           [--centers N] [--expiry H] [--max-dp N] --out FILE
      Generate a workload instance and write it as JSON.

  inspect <INSTANCE>
      Print an instance's cardinalities and per-center structure.

  solve <INSTANCE> [--algo gta|mpta|fgt|iegt|random] [--epsilon E]
        [--max-len N] [--engine flat|hashmap]
        [--br-engine auto|exhaustive|incremental|fastpath] [--parallel]
        [--out FILE] [--budget-ms MS] [--max-states N] [--max-rounds N]
        [--trace-out FILE] [--metrics-out FILE] [--ledger-out FILE]
        [--hotpath-profile FILE] [--inject-panic CENTER]
        [--shards N] [--shard-by hash|geo]
      Run an assignment algorithm; print the summary, optionally write
      the assignment JSON. With --trace-out / --metrics-out a telemetry
      recorder captures the run and writes a JSONL span/round trace and
      a Prometheus text snapshot. --ledger-out writes the versioned
      solve ledger (per-center rung, budget axis, resolve path, work
      counters, fairness). --budget-ms / --max-states / --max-rounds
      bound the solve; on exhaustion the solver degrades gracefully
      (truncated VDPS, GTA fallback, single-stop routes) and reports
      the degradation events instead of overrunning. --inject-panic
      deliberately panics the given center's solve (forensics testing:
      the panic is quarantined and triggers a flight-recorder dump).
      --shards N partitions the centers into N geo-shards solved
      concurrently with cost-aware (largest-first) scheduling;
      --shard-by picks the partitioner (hash: center-id scatter, geo:
      k-means proximity clustering). Sharding never changes a
      deterministic algorithm's assignment.

  simulate [--algo gta|mpta|fgt|iegt|random|immediate] [--seed S]
           [--hours H] [--period-min M] [--workers N] [--dps N]
           [--rate R] [--faults] [--fault-seed S] [--budget-ms MS]
           [--incremental] [--trace-out FILE] [--ledger-out FILE]
           [--durable-dir DIR] [--fsync always|never|N]
           [--snapshot-every N]
      Run the streaming platform simulator for a working day and print
      the longitudinal metrics. --faults enables the seeded
      fault-injection plan (worker no-shows, mid-route dropouts, task
      cancellations, travel-time inflation) with requeue-on-failure;
      --budget-ms runs every assignment round under a wall-clock budget;
      --incremental re-solves rounds against persistent per-center
      caches (delta VDPS updates + equilibrium warm starts) instead of
      solving each round from scratch; --ledger-out writes one solve
      ledger record per assignment round (causal attribution + fairness
      trajectory over cumulative earnings). --durable-dir journals every
      assignment round into DIR as a checksummed commit log + periodic
      snapshots (plus a meta.json describing the run) so `fta recover`
      can resume a crashed day bit-for-bit; --fsync sets the commit-log
      flush policy (always | never | flush every N frames, default 8);
      --snapshot-every sets the snapshot cadence in journaled rounds
      (default 16). Journaling observes the day, it never changes it.

  recover <DIR> [--ledger-out FILE]
      Resume a crashed `simulate --durable-dir DIR` day from its
      journal and run it to the horizon; the recovered day is
      bit-for-bit identical to the uninterrupted run (each journaled
      frame carries the complete loop state, including the fault-RNG
      stream position and the incremental solver's caches). A torn
      final frame — the signature of a crash mid-append — costs exactly
      that round, which is re-simulated. --ledger-out re-materialises
      the journaled per-round ledger records and appends the resumed
      rounds, so the ledger is continuous.

  wal-dump <DIR|WAL>
      Decode a durable directory's commit log (and newest snapshot, when
      a directory is given): per-frame round, simulated instant, task
      counters, banked earnings, and payload flags. Torn tails and
      checksum failures are reported, never fatal.

  obs-dump <TRACE> [--chrome] [--by-center]
      Summarise a JSONL telemetry trace written by solve --trace-out
      (span totals, counters, round events); --chrome instead emits
      Chrome trace-event JSON for chrome://tracing / Perfetto;
      --by-center prints a per-center round/moves table.

  flight-dump <SNAPSHOT>
      Decode a flight-recorder snapshot (fta-flight-*.jsonl, written
      automatically when a center panics, a budget exhausts, or a solve
      degrades) and print its events grouped by thread.

  obs-diff <A> <B> [--tolerance PCT] [--ignore FIELD]
      Diff two solve ledgers or two Prometheus snapshots (auto-detected
      from the file contents): per-metric deltas, flagged when outside
      the relative tolerance band (default 0%). Exits non-zero when any
      delta is out of band. --ignore drops every metric whose dotted key
      has a FIELD segment before diffing (repeatable) — e.g.
      `--ignore nanos` excludes the wall-clock counters when pinning
      two runs that must agree on everything deterministic.

  schedule <INSTANCE> --center C --dps A,B,C
      Find the minimum-travel deadline-feasible visiting order of the
      given delivery points.

  compare <INSTANCE> [--epsilon E] [--max-len N] [--engine flat|hashmap]
          [--parallel]
      Run every assignment algorithm on the instance and print a
      fairness/payoff/CPU comparison table.

OPTIONS
  --engine flat|hashmap   VDPS generator implementation (default: flat,
      the cache-friendly parallel engine; hashmap is the reference DP —
      both produce identical pools).
  --br-engine auto|exhaustive|incremental|fastpath   Best-response
      engine of the equilibrium loops (fgt/iegt only; default: auto =
      fastpath, which self-falls-back to the exhaustive evaluation when
      the IAU weights make the monotone scan unsound, i.e. β ≥ 1).
  --parallel              Run on a worker pool bounded by the number of
      CPUs (per-center jobs, per-layer DP expansion, and per-worker
      validation all share the pool).
  --hotpath-profile FILE  Load calibrated hot-path knobs (scan/emission
      kernel selection and conflict-index crossover thresholds) from a
      JSON profile, e.g. the `profile` object of BENCH_hotpath.json
      written by the hotpath_snapshot bench. Without it the compiled-in
      defaults apply; every profile produces bit-identical assignments.";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `fta generate`
    Generate {
        /// `syn` or `gm`.
        dataset: String,
        /// Generator seed.
        seed: u64,
        /// Cardinality overrides (`None` = dataset default).
        workers: Option<usize>,
        /// Number of tasks.
        tasks: Option<usize>,
        /// Number of delivery points.
        dps: Option<usize>,
        /// Number of distribution centers (SYN only).
        centers: Option<usize>,
        /// Expiry parameter, hours (SYN only).
        expiry: Option<f64>,
        /// Per-worker maxDP.
        max_dp: Option<usize>,
        /// Output path.
        out: PathBuf,
    },
    /// `fta inspect`
    Inspect {
        /// Instance path.
        instance: PathBuf,
    },
    /// `fta solve`
    Solve {
        /// Instance path.
        instance: PathBuf,
        /// Selected algorithm.
        algorithm: Algorithm,
        /// Display name of the algorithm.
        algorithm_name: String,
        /// ε pruning radius (`None` = unpruned).
        epsilon: Option<f64>,
        /// VDPS length cap.
        max_len: usize,
        /// VDPS generator engine.
        engine: VdpsEngine,
        /// Best-response engine of the equilibrium loops (`--br-engine`;
        /// `auto` resolves to the self-guarding fast path).
        br_engine: BestResponseEngine,
        /// Per-center threading.
        parallel: bool,
        /// Wall-clock budget for the whole solve, milliseconds.
        budget_ms: Option<u64>,
        /// Per-center cap on retained VDPS DP states.
        max_states: Option<usize>,
        /// Cap on best-response rounds per equilibrium loop.
        max_rounds: Option<usize>,
        /// Optional assignment output path.
        out: Option<PathBuf>,
        /// Optional JSONL telemetry trace output path.
        trace_out: Option<PathBuf>,
        /// Optional Prometheus text snapshot output path.
        metrics_out: Option<PathBuf>,
        /// Optional solve ledger output path (JSONL, schema `fta-ledger`).
        ledger_out: Option<PathBuf>,
        /// Optional calibrated hot-path profile to install before solving.
        hotpath_profile: Option<PathBuf>,
        /// Deliberately panic the given center's solve (forensics
        /// testing; the panic is quarantined).
        inject_panic: Option<u32>,
        /// Solve the centers in `N` concurrent geo-shards (`--shards`;
        /// `None` = flat per-center path).
        shards: Option<usize>,
        /// Shard partitioner (`--shard-by hash|geo`).
        shard_by: ShardBy,
    },
    /// `fta simulate`
    Simulate {
        /// Dispatch policy name (`immediate` or an algorithm name).
        policy: String,
        /// Scenario seed.
        seed: u64,
        /// Simulated horizon, hours.
        hours: f64,
        /// Assignment period, minutes.
        period_minutes: f64,
        /// Number of couriers.
        workers: usize,
        /// Number of delivery points.
        dps: usize,
        /// Task arrivals per hour.
        rate: f64,
        /// Enable the stress fault plan.
        faults: bool,
        /// Seed of the fault plan (defaults to the scenario seed).
        fault_seed: Option<u64>,
        /// Per-round wall-clock solve budget, milliseconds.
        budget_ms: Option<u64>,
        /// Solve rounds incrementally (persistent per-center caches,
        /// delta VDPS updates, equilibrium warm starts).
        incremental: bool,
        /// Optional JSONL telemetry trace output path.
        trace_out: Option<PathBuf>,
        /// Optional per-round solve ledger output path (JSONL, schema
        /// `fta-ledger`).
        ledger_out: Option<PathBuf>,
        /// Durable journaling directory (`None` = journaling off).
        durable_dir: Option<PathBuf>,
        /// Commit-log fsync policy (meaningful with `durable_dir`).
        fsync: FsyncPolicy,
        /// Snapshot cadence in journaled rounds (with `durable_dir`).
        snapshot_every: u64,
        /// Crash drill: abort the process right after journaling this
        /// round (undocumented CI hook; requires `durable_dir`).
        crash_after_round: Option<u64>,
    },
    /// `fta recover`
    Recover {
        /// Durable directory written by `simulate --durable-dir`.
        dir: PathBuf,
        /// Optional continuous ledger output (journaled + resumed rounds).
        ledger_out: Option<PathBuf>,
    },
    /// `fta wal-dump`
    WalDump {
        /// Durable directory, or a `wal.fta` commit-log file directly.
        path: PathBuf,
    },
    /// `fta obs-dump`
    ObsDump {
        /// Trace path (JSONL, schema `fta-obs-trace`).
        trace: PathBuf,
        /// Emit Chrome trace-event JSON instead of the summary.
        chrome: bool,
        /// Print a per-center round/moves table after the summary.
        by_center: bool,
    },
    /// `fta flight-dump`
    FlightDump {
        /// Flight snapshot path (JSONL, schema `fta-flight`).
        snapshot: PathBuf,
    },
    /// `fta obs-diff`
    ObsDiff {
        /// First file (ledger or Prometheus snapshot).
        a: PathBuf,
        /// Second file (same kind as the first).
        b: PathBuf,
        /// Relative tolerance band, percent.
        tolerance_pct: f64,
        /// Key segments to drop from both maps before diffing
        /// (`--ignore`, repeatable) — e.g. `nanos` for wall-clock
        /// counters that legitimately differ between identical runs.
        ignore: Vec<String>,
    },
    /// `fta schedule`
    Schedule {
        /// Instance path.
        instance: PathBuf,
        /// Center id.
        center: u32,
        /// Delivery point ids.
        dps: Vec<u32>,
    },
    /// `fta compare`
    Compare {
        /// Instance path.
        instance: PathBuf,
        /// ε pruning radius (`None` = unpruned).
        epsilon: Option<f64>,
        /// VDPS length cap.
        max_len: usize,
        /// VDPS generator engine.
        engine: VdpsEngine,
        /// Per-center threading.
        parallel: bool,
    },
}

/// Resolves an algorithm name.
#[must_use]
pub fn algorithm_by_name(name: &str) -> Option<Algorithm> {
    Some(match name {
        "gta" => Algorithm::Gta,
        "mpta" => Algorithm::Mpta(MptaConfig::default()),
        "fgt" => Algorithm::Fgt(FgtConfig::default()),
        "iegt" => Algorithm::Iegt(IegtConfig::default()),
        "random" => Algorithm::Random { seed: 1 },
        _ => return None,
    })
}

fn parse_engine(raw: &str) -> Result<VdpsEngine, String> {
    VdpsEngine::by_name(raw)
        .ok_or_else(|| format!("unknown engine `{raw}`; expected flat | hashmap"))
}

fn parse_br_engine(raw: &str) -> Result<BestResponseEngine, String> {
    Ok(match raw {
        // `auto` and `fastpath` are the same engine: FastPath guards its
        // own soundness and falls back to the exhaustive evaluation when
        // the IAU weights demand it, so there is nothing extra for the
        // CLI to decide.
        "auto" | "fastpath" => BestResponseEngine::FastPath,
        "incremental" => BestResponseEngine::Incremental,
        "exhaustive" => BestResponseEngine::Rebuild,
        other => {
            return Err(format!(
                "unknown best-response engine `{other}`; expected auto | exhaustive | incremental | fastpath"
            ))
        }
    })
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message (possibly the usage banner) when the
/// arguments do not form a valid invocation.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let command = it.next().ok_or(USAGE)?;
    match command.as_str() {
        "generate" => {
            let dataset = it.next().ok_or("generate needs a dataset: syn | gm")?;
            if dataset != "syn" && dataset != "gm" {
                return Err(format!("unknown dataset `{dataset}`; expected syn | gm"));
            }
            let mut seed = 42u64;
            let (mut workers, mut tasks, mut dps, mut centers) = (None, None, None, None);
            let mut expiry = None;
            let mut max_dp = None;
            let mut out: Option<PathBuf> = None;
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--seed" => seed = parse_num(value("--seed")?, "--seed")?,
                    "--workers" => workers = Some(parse_num(value("--workers")?, "--workers")?),
                    "--tasks" => tasks = Some(parse_num(value("--tasks")?, "--tasks")?),
                    "--dps" => dps = Some(parse_num(value("--dps")?, "--dps")?),
                    "--centers" => centers = Some(parse_num(value("--centers")?, "--centers")?),
                    "--expiry" => expiry = Some(parse_num(value("--expiry")?, "--expiry")?),
                    "--max-dp" => max_dp = Some(parse_num(value("--max-dp")?, "--max-dp")?),
                    "--out" => out = Some(PathBuf::from(value("--out")?)),
                    other => return Err(format!("unknown generate flag `{other}`")),
                }
            }
            Ok(Command::Generate {
                dataset: dataset.clone(),
                seed,
                workers,
                tasks,
                dps,
                centers,
                expiry,
                max_dp,
                out: out.ok_or("generate requires --out FILE")?,
            })
        }
        "inspect" => {
            let instance = it.next().ok_or("inspect needs an instance path")?;
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument `{extra}`"));
            }
            Ok(Command::Inspect {
                instance: PathBuf::from(instance),
            })
        }
        "solve" => {
            let instance = it.next().ok_or("solve needs an instance path")?;
            let mut algorithm_name = "iegt".to_owned();
            let mut epsilon = Some(2.0);
            let mut max_len = 8usize;
            let mut engine = VdpsEngine::default();
            let mut br_engine = BestResponseEngine::default();
            let mut parallel = false;
            let mut budget_ms = None;
            let mut max_states = None;
            let mut max_rounds = None;
            let mut out = None;
            let mut trace_out = None;
            let mut metrics_out = None;
            let mut ledger_out = None;
            let mut hotpath_profile = None;
            let mut inject_panic = None;
            let mut shards = None;
            let mut shard_by = ShardBy::default();
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--algo" => algorithm_name = value("--algo")?.clone(),
                    "--epsilon" => {
                        let raw = value("--epsilon")?;
                        epsilon = if raw == "none" {
                            None
                        } else {
                            Some(parse_num(raw, "--epsilon")?)
                        };
                    }
                    "--max-len" => max_len = parse_num(value("--max-len")?, "--max-len")?,
                    "--engine" => engine = parse_engine(value("--engine")?)?,
                    "--br-engine" => br_engine = parse_br_engine(value("--br-engine")?)?,
                    "--parallel" => parallel = true,
                    "--budget-ms" => {
                        budget_ms = Some(parse_num(value("--budget-ms")?, "--budget-ms")?);
                    }
                    "--max-states" => {
                        max_states = Some(parse_num(value("--max-states")?, "--max-states")?);
                    }
                    "--max-rounds" => {
                        max_rounds = Some(parse_num(value("--max-rounds")?, "--max-rounds")?);
                    }
                    "--out" => out = Some(PathBuf::from(value("--out")?)),
                    "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
                    "--metrics-out" => metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
                    "--ledger-out" => ledger_out = Some(PathBuf::from(value("--ledger-out")?)),
                    "--hotpath-profile" => {
                        hotpath_profile = Some(PathBuf::from(value("--hotpath-profile")?));
                    }
                    "--inject-panic" => {
                        inject_panic = Some(parse_num(value("--inject-panic")?, "--inject-panic")?);
                    }
                    "--shards" => shards = Some(parse_num(value("--shards")?, "--shards")?),
                    "--shard-by" => shard_by = value("--shard-by")?.parse()?,
                    other => return Err(format!("unknown solve flag `{other}`")),
                }
            }
            let algorithm = algorithm_by_name(&algorithm_name)
                .ok_or_else(|| format!("unknown algorithm `{algorithm_name}`"))?;
            Ok(Command::Solve {
                instance: PathBuf::from(instance),
                algorithm,
                algorithm_name,
                epsilon,
                max_len,
                engine,
                br_engine,
                parallel,
                budget_ms,
                max_states,
                max_rounds,
                out,
                trace_out,
                metrics_out,
                ledger_out,
                hotpath_profile,
                inject_panic,
                shards,
                shard_by,
            })
        }
        "simulate" => {
            let mut policy = "iegt".to_owned();
            let mut seed = 42u64;
            let mut hours = 2.0f64;
            let mut period_minutes = 15.0f64;
            let mut workers = 12usize;
            let mut dps = 24usize;
            let mut rate = 80.0f64;
            let mut faults = false;
            let mut fault_seed = None;
            let mut budget_ms = None;
            let mut incremental = false;
            let mut trace_out = None;
            let mut ledger_out = None;
            let mut durable_dir = None;
            let mut fsync = FsyncPolicy::EveryN(8);
            let mut fsync_set = false;
            let mut snapshot_every = 16u64;
            let mut snapshot_set = false;
            let mut crash_after_round = None;
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--algo" => policy = value("--algo")?.clone(),
                    "--seed" => seed = parse_num(value("--seed")?, "--seed")?,
                    "--hours" => hours = parse_num(value("--hours")?, "--hours")?,
                    "--period-min" => {
                        period_minutes = parse_num(value("--period-min")?, "--period-min")?;
                    }
                    "--workers" => workers = parse_num(value("--workers")?, "--workers")?,
                    "--dps" => dps = parse_num(value("--dps")?, "--dps")?,
                    "--rate" => rate = parse_num(value("--rate")?, "--rate")?,
                    "--faults" => faults = true,
                    "--fault-seed" => {
                        fault_seed = Some(parse_num(value("--fault-seed")?, "--fault-seed")?);
                    }
                    "--budget-ms" => {
                        budget_ms = Some(parse_num(value("--budget-ms")?, "--budget-ms")?);
                    }
                    "--incremental" => incremental = true,
                    "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
                    "--ledger-out" => ledger_out = Some(PathBuf::from(value("--ledger-out")?)),
                    "--durable-dir" => {
                        durable_dir = Some(PathBuf::from(value("--durable-dir")?));
                    }
                    "--fsync" => {
                        let raw = value("--fsync")?;
                        fsync = FsyncPolicy::parse(raw).ok_or_else(|| {
                            format!("unknown fsync policy `{raw}`; expected always | never | N")
                        })?;
                        fsync_set = true;
                    }
                    "--snapshot-every" => {
                        snapshot_every = parse_num(value("--snapshot-every")?, "--snapshot-every")?;
                        snapshot_set = true;
                    }
                    "--crash-after-round" => {
                        crash_after_round = Some(parse_num(
                            value("--crash-after-round")?,
                            "--crash-after-round",
                        )?);
                    }
                    other => return Err(format!("unknown simulate flag `{other}`")),
                }
            }
            if durable_dir.is_none() && (fsync_set || snapshot_set || crash_after_round.is_some()) {
                return Err(
                    "--fsync / --snapshot-every / --crash-after-round require --durable-dir".into(),
                );
            }
            if snapshot_set && snapshot_every == 0 {
                return Err("--snapshot-every must be at least 1".into());
            }
            if policy != "immediate" && algorithm_by_name(&policy).is_none() {
                return Err(format!("unknown policy `{policy}`"));
            }
            if incremental && policy == "immediate" {
                return Err("--incremental requires a batch policy (not `immediate`)".into());
            }
            if hours <= 0.0 || period_minutes <= 0.0 {
                return Err("simulate needs positive --hours and --period-min".into());
            }
            Ok(Command::Simulate {
                policy,
                seed,
                hours,
                period_minutes,
                workers,
                dps,
                rate,
                faults,
                fault_seed,
                budget_ms,
                incremental,
                trace_out,
                ledger_out,
                durable_dir,
                fsync,
                snapshot_every,
                crash_after_round,
            })
        }
        "recover" => {
            let dir = it.next().ok_or("recover needs a durable directory")?;
            let mut ledger_out = None;
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--ledger-out" => ledger_out = Some(PathBuf::from(value("--ledger-out")?)),
                    other => return Err(format!("unknown recover flag `{other}`")),
                }
            }
            Ok(Command::Recover {
                dir: PathBuf::from(dir),
                ledger_out,
            })
        }
        "wal-dump" => {
            let path = it
                .next()
                .ok_or("wal-dump needs a durable directory or wal file")?;
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument `{extra}`"));
            }
            Ok(Command::WalDump {
                path: PathBuf::from(path),
            })
        }
        "obs-dump" => {
            let trace = it.next().ok_or("obs-dump needs a trace path")?;
            let mut chrome = false;
            let mut by_center = false;
            for arg in it {
                match arg.as_str() {
                    "--chrome" => chrome = true,
                    "--by-center" => by_center = true,
                    other => return Err(format!("unknown obs-dump flag `{other}`")),
                }
            }
            Ok(Command::ObsDump {
                trace: PathBuf::from(trace),
                chrome,
                by_center,
            })
        }
        "flight-dump" => {
            let snapshot = it.next().ok_or("flight-dump needs a snapshot path")?;
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument `{extra}`"));
            }
            Ok(Command::FlightDump {
                snapshot: PathBuf::from(snapshot),
            })
        }
        "obs-diff" => {
            let a = it.next().ok_or("obs-diff needs two files to compare")?;
            let b = it.next().ok_or("obs-diff needs two files to compare")?;
            let mut tolerance_pct = 0.0f64;
            let mut ignore = Vec::new();
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--tolerance" => {
                        tolerance_pct = parse_num(value("--tolerance")?, "--tolerance")?;
                    }
                    "--ignore" => ignore.push(value("--ignore")?.clone()),
                    other => return Err(format!("unknown obs-diff flag `{other}`")),
                }
            }
            if tolerance_pct.is_nan() || tolerance_pct < 0.0 {
                return Err("--tolerance must be a non-negative percentage".into());
            }
            Ok(Command::ObsDiff {
                a: PathBuf::from(a),
                b: PathBuf::from(b),
                tolerance_pct,
                ignore,
            })
        }
        "schedule" => {
            let instance = it.next().ok_or("schedule needs an instance path")?;
            let mut center = None;
            let mut dps: Vec<u32> = Vec::new();
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--center" => center = Some(parse_num(value("--center")?, "--center")?),
                    "--dps" => {
                        dps = value("--dps")?
                            .split(',')
                            .map(|v| parse_num(v.trim(), "--dps"))
                            .collect::<Result<_, _>>()?;
                    }
                    other => return Err(format!("unknown schedule flag `{other}`")),
                }
            }
            if dps.is_empty() {
                return Err("schedule requires --dps A,B,...".into());
            }
            Ok(Command::Schedule {
                instance: PathBuf::from(instance),
                center: center.ok_or("schedule requires --center C")?,
                dps,
            })
        }
        "compare" => {
            let instance = it.next().ok_or("compare needs an instance path")?;
            let mut epsilon = Some(2.0);
            let mut max_len = 8usize;
            let mut engine = VdpsEngine::default();
            let mut parallel = false;
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--epsilon" => {
                        let raw = value("--epsilon")?;
                        epsilon = if raw == "none" {
                            None
                        } else {
                            Some(parse_num(raw, "--epsilon")?)
                        };
                    }
                    "--max-len" => max_len = parse_num(value("--max-len")?, "--max-len")?,
                    "--engine" => engine = parse_engine(value("--engine")?)?,
                    "--parallel" => parallel = true,
                    other => return Err(format!("unknown compare flag `{other}`")),
                }
            }
            Ok(Command::Compare {
                instance: PathBuf::from(instance),
                epsilon,
                max_len,
                engine,
                parallel,
            })
        }
        "--help" | "-h" | "help" => Err(USAGE.to_owned()),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_generate_with_overrides() {
        let cmd = parse(&argv(
            "generate syn --seed 9 --workers 50 --tasks 500 --out city.json",
        ))
        .unwrap();
        match cmd {
            Command::Generate {
                dataset,
                seed,
                workers,
                tasks,
                out,
                ..
            } => {
                assert_eq!(dataset, "syn");
                assert_eq!(seed, 9);
                assert_eq!(workers, Some(50));
                assert_eq!(tasks, Some(500));
                assert_eq!(out, PathBuf::from("city.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn generate_requires_out_and_known_dataset() {
        assert!(parse(&argv("generate syn")).is_err());
        assert!(parse(&argv("generate nope --out x.json")).is_err());
    }

    #[test]
    fn parses_solve_defaults() {
        let cmd = parse(&argv("solve city.json")).unwrap();
        match cmd {
            Command::Solve {
                algorithm_name,
                epsilon,
                max_len,
                parallel,
                out,
                ..
            } => {
                assert_eq!(algorithm_name, "iegt");
                assert_eq!(epsilon, Some(2.0));
                assert_eq!(max_len, 8);
                assert!(!parallel);
                assert!(out.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn solve_epsilon_none_disables_pruning() {
        let cmd = parse(&argv(
            "solve city.json --algo gta --epsilon none --parallel",
        ))
        .unwrap();
        match cmd {
            Command::Solve {
                epsilon, parallel, ..
            } => {
                assert_eq!(epsilon, None);
                assert!(parallel);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn solve_rejects_unknown_algorithm() {
        let err = parse(&argv("solve city.json --algo nope")).unwrap_err();
        assert!(err.contains("unknown algorithm"));
    }

    #[test]
    fn solve_shard_flags_parse() {
        match parse(&argv("solve city.json")).unwrap() {
            Command::Solve {
                shards, shard_by, ..
            } => {
                assert_eq!(shards, None);
                assert_eq!(shard_by, ShardBy::Hash);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("solve city.json --shards 4 --shard-by geo")).unwrap() {
            Command::Solve {
                shards, shard_by, ..
            } => {
                assert_eq!(shards, Some(4));
                assert_eq!(shard_by, ShardBy::Geo);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn solve_rejects_unknown_shard_partitioner() {
        let err = parse(&argv("solve city.json --shard-by nope")).unwrap_err();
        assert!(err.contains("unknown shard partitioner"), "{err}");
    }

    #[test]
    fn engine_flag_selects_generator_engine() {
        match parse(&argv("solve city.json")).unwrap() {
            Command::Solve { engine, .. } => assert_eq!(engine, VdpsEngine::Flat),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("solve city.json --engine hashmap")).unwrap() {
            Command::Solve { engine, .. } => assert_eq!(engine, VdpsEngine::Hashmap),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("compare city.json --engine flat")).unwrap() {
            Command::Compare { engine, .. } => assert_eq!(engine, VdpsEngine::Flat),
            other => panic!("wrong command {other:?}"),
        }
        let err = parse(&argv("solve city.json --engine turbo")).unwrap_err();
        assert!(err.contains("unknown engine"));
    }

    #[test]
    fn br_engine_flag_selects_best_response_engine() {
        // Default is `auto` = the self-guarding fast path.
        match parse(&argv("solve city.json")).unwrap() {
            Command::Solve { br_engine, .. } => {
                assert_eq!(br_engine, BestResponseEngine::FastPath);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cases = [
            ("auto", BestResponseEngine::FastPath),
            ("fastpath", BestResponseEngine::FastPath),
            ("incremental", BestResponseEngine::Incremental),
            ("exhaustive", BestResponseEngine::Rebuild),
        ];
        for (name, expected) in cases {
            match parse(&argv(&format!("solve city.json --br-engine {name}"))).unwrap() {
                Command::Solve { br_engine, .. } => assert_eq!(br_engine, expected, "{name}"),
                other => panic!("wrong command {other:?}"),
            }
        }
        let err = parse(&argv("solve city.json --br-engine turbo")).unwrap_err();
        assert!(err.contains("unknown best-response engine"));
    }

    #[test]
    fn solve_accepts_telemetry_outputs() {
        let cmd = parse(&argv(
            "solve city.json --algo gta --trace-out t.jsonl --metrics-out m.prom",
        ))
        .unwrap();
        match cmd {
            Command::Solve {
                trace_out,
                metrics_out,
                ..
            } => {
                assert_eq!(trace_out, Some(PathBuf::from("t.jsonl")));
                assert_eq!(metrics_out, Some(PathBuf::from("m.prom")));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Both default to off.
        match parse(&argv("solve city.json")).unwrap() {
            Command::Solve {
                trace_out,
                metrics_out,
                ..
            } => {
                assert!(trace_out.is_none());
                assert!(metrics_out.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn solve_accepts_hotpath_profile() {
        match parse(&argv("solve city.json --hotpath-profile hp.json")).unwrap() {
            Command::Solve {
                hotpath_profile, ..
            } => assert_eq!(hotpath_profile, Some(PathBuf::from("hp.json"))),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("solve city.json")).unwrap() {
            Command::Solve {
                hotpath_profile, ..
            } => assert!(hotpath_profile.is_none()),
            other => panic!("wrong command {other:?}"),
        }
        let err = parse(&argv("solve city.json --hotpath-profile")).unwrap_err();
        assert!(err.contains("--hotpath-profile needs a value"));
    }

    #[test]
    fn parses_obs_dump() {
        assert_eq!(
            parse(&argv("obs-dump trace.jsonl")).unwrap(),
            Command::ObsDump {
                trace: PathBuf::from("trace.jsonl"),
                chrome: false,
                by_center: false,
            }
        );
        assert_eq!(
            parse(&argv("obs-dump trace.jsonl --chrome --by-center")).unwrap(),
            Command::ObsDump {
                trace: PathBuf::from("trace.jsonl"),
                chrome: true,
                by_center: true,
            }
        );
        assert!(parse(&argv("obs-dump")).is_err());
        assert!(parse(&argv("obs-dump t.jsonl --nope")).is_err());
    }

    #[test]
    fn parses_flight_dump() {
        assert_eq!(
            parse(&argv("flight-dump fta-flight-1-1.jsonl")).unwrap(),
            Command::FlightDump {
                snapshot: PathBuf::from("fta-flight-1-1.jsonl"),
            }
        );
        assert!(parse(&argv("flight-dump")).is_err());
        assert!(parse(&argv("flight-dump a.jsonl extra")).is_err());
    }

    #[test]
    fn parses_obs_diff_with_tolerance() {
        assert_eq!(
            parse(&argv("obs-diff a.jsonl b.jsonl")).unwrap(),
            Command::ObsDiff {
                a: PathBuf::from("a.jsonl"),
                b: PathBuf::from("b.jsonl"),
                tolerance_pct: 0.0,
                ignore: vec![],
            }
        );
        match parse(&argv("obs-diff a.prom b.prom --tolerance 2.5")).unwrap() {
            Command::ObsDiff { tolerance_pct, .. } => {
                assert!((tolerance_pct - 2.5).abs() < 1e-12);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("obs-diff a.jsonl")).is_err());
        assert!(parse(&argv("obs-diff a b --tolerance -1")).is_err());
        assert!(parse(&argv("obs-diff a b --nope")).is_err());
    }

    #[test]
    fn obs_diff_ignore_is_repeatable() {
        match parse(&argv(
            "obs-diff a.jsonl b.jsonl --ignore nanos --ignore rung",
        ))
        .unwrap()
        {
            Command::ObsDiff { ignore, .. } => {
                assert_eq!(ignore, vec!["nanos".to_owned(), "rung".to_owned()]);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("obs-diff a b --ignore")).is_err());
    }

    #[test]
    fn simulate_parses_durable_flags() {
        let cmd = parse(&argv(
            "simulate --algo gta --durable-dir /tmp/day --fsync always --snapshot-every 4 \
             --crash-after-round 3",
        ))
        .unwrap();
        match cmd {
            Command::Simulate {
                durable_dir,
                fsync,
                snapshot_every,
                crash_after_round,
                ..
            } => {
                assert_eq!(durable_dir, Some(PathBuf::from("/tmp/day")));
                assert_eq!(fsync, FsyncPolicy::Always);
                assert_eq!(snapshot_every, 4);
                assert_eq!(crash_after_round, Some(3));
            }
            other => panic!("wrong command {other:?}"),
        }
        // The numeric fsync spelling selects every-N.
        match parse(&argv("simulate --durable-dir d --fsync 32")).unwrap() {
            Command::Simulate { fsync, .. } => assert_eq!(fsync, FsyncPolicy::EveryN(32)),
            other => panic!("wrong command {other:?}"),
        }
        // Durable knobs without the directory are a configuration error…
        assert!(parse(&argv("simulate --fsync always")).is_err());
        assert!(parse(&argv("simulate --snapshot-every 8")).is_err());
        assert!(parse(&argv("simulate --durable-dir d --crash-after-round 1")).is_ok());
        // …and so are nonsense values.
        assert!(parse(&argv("simulate --durable-dir d --fsync sometimes")).is_err());
        assert!(parse(&argv("simulate --durable-dir d --snapshot-every 0")).is_err());
    }

    #[test]
    fn parses_recover_and_wal_dump() {
        assert_eq!(
            parse(&argv("recover /tmp/day")).unwrap(),
            Command::Recover {
                dir: PathBuf::from("/tmp/day"),
                ledger_out: None,
            }
        );
        match parse(&argv("recover /tmp/day --ledger-out l.jsonl")).unwrap() {
            Command::Recover { ledger_out, .. } => {
                assert_eq!(ledger_out, Some(PathBuf::from("l.jsonl")));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("recover")).is_err());
        assert!(parse(&argv("recover d --nope")).is_err());

        assert_eq!(
            parse(&argv("wal-dump /tmp/day")).unwrap(),
            Command::WalDump {
                path: PathBuf::from("/tmp/day"),
            }
        );
        assert!(parse(&argv("wal-dump")).is_err());
        assert!(parse(&argv("wal-dump a b")).is_err());
    }

    #[test]
    fn solve_accepts_ledger_out_and_inject_panic() {
        match parse(&argv(
            "solve city.json --algo gta --ledger-out l.jsonl --inject-panic 2",
        ))
        .unwrap()
        {
            Command::Solve {
                ledger_out,
                inject_panic,
                ..
            } => {
                assert_eq!(ledger_out, Some(PathBuf::from("l.jsonl")));
                assert_eq!(inject_panic, Some(2));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("solve city.json")).unwrap() {
            Command::Solve {
                ledger_out,
                inject_panic,
                ..
            } => {
                assert!(ledger_out.is_none());
                assert!(inject_panic.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_schedule_dp_list() {
        let cmd = parse(&argv("schedule city.json --center 2 --dps 4,7,11")).unwrap();
        assert_eq!(
            cmd,
            Command::Schedule {
                instance: PathBuf::from("city.json"),
                center: 2,
                dps: vec![4, 7, 11],
            }
        );
    }

    #[test]
    fn schedule_requires_center_and_dps() {
        assert!(parse(&argv("schedule city.json --dps 1")).is_err());
        assert!(parse(&argv("schedule city.json --center 0")).is_err());
    }

    #[test]
    fn solve_parses_budget_flags() {
        let cmd = parse(&argv(
            "solve city.json --algo fgt --budget-ms 250 --max-states 5000 --max-rounds 20",
        ))
        .unwrap();
        match cmd {
            Command::Solve {
                budget_ms,
                max_states,
                max_rounds,
                ..
            } => {
                assert_eq!(budget_ms, Some(250));
                assert_eq!(max_states, Some(5000));
                assert_eq!(max_rounds, Some(20));
            }
            other => panic!("wrong command {other:?}"),
        }
        // All default to unlimited.
        match parse(&argv("solve city.json")).unwrap() {
            Command::Solve {
                budget_ms,
                max_states,
                max_rounds,
                ..
            } => {
                assert!(budget_ms.is_none());
                assert!(max_states.is_none());
                assert!(max_rounds.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_simulate_with_faults_and_budget() {
        let cmd = parse(&argv(
            "simulate --algo gta --seed 7 --hours 1.5 --period-min 10 --workers 9 \
             --dps 18 --rate 50 --faults --fault-seed 99 --budget-ms 5 --trace-out t.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Simulate {
                policy,
                seed,
                hours,
                period_minutes,
                workers,
                dps,
                rate,
                faults,
                fault_seed,
                budget_ms,
                incremental,
                trace_out,
                ledger_out,
                durable_dir,
                fsync,
                snapshot_every,
                crash_after_round,
            } => {
                assert_eq!(policy, "gta");
                assert!(!incremental);
                assert!(ledger_out.is_none());
                assert!(durable_dir.is_none());
                assert_eq!(fsync, FsyncPolicy::EveryN(8));
                assert_eq!(snapshot_every, 16);
                assert!(crash_after_round.is_none());
                assert_eq!(seed, 7);
                assert!((hours - 1.5).abs() < 1e-12);
                assert!((period_minutes - 10.0).abs() < 1e-12);
                assert_eq!(workers, 9);
                assert_eq!(dps, 18);
                assert!((rate - 50.0).abs() < 1e-12);
                assert!(faults);
                assert_eq!(fault_seed, Some(99));
                assert_eq!(budget_ms, Some(5));
                assert_eq!(trace_out, Some(PathBuf::from("t.jsonl")));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn simulate_defaults_and_rejections() {
        match parse(&argv("simulate")).unwrap() {
            Command::Simulate {
                policy,
                faults,
                fault_seed,
                budget_ms,
                ..
            } => {
                assert_eq!(policy, "iegt");
                assert!(!faults);
                assert!(fault_seed.is_none());
                assert!(budget_ms.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("simulate --algo immediate")).is_ok());
        assert!(parse(&argv("simulate --algo nope")).is_err());
        assert!(parse(&argv("simulate --hours 0")).is_err());
        match parse(&argv("simulate --algo fgt --incremental")).unwrap() {
            Command::Simulate { incremental, .. } => assert!(incremental),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("simulate --algo gta --ledger-out day.jsonl")).unwrap() {
            Command::Simulate { ledger_out, .. } => {
                assert_eq!(ledger_out, Some(PathBuf::from("day.jsonl")));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(
            parse(&argv("simulate --algo immediate --incremental")).is_err(),
            "--incremental must require a batch policy"
        );
    }

    #[test]
    fn help_and_unknown_commands_return_usage() {
        assert!(parse(&argv("--help")).unwrap_err().contains("usage: fta"));
        assert!(parse(&argv("frobnicate"))
            .unwrap_err()
            .contains("usage: fta"));
        assert!(parse(&[]).unwrap_err().contains("usage: fta"));
    }
}

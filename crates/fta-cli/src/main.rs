//! Thin shim over [`fta_cli`]: parse, execute, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fta_cli::parse(&args) {
        Ok(command) => match fta_cli::execute(&command) {
            Ok(output) => {
                print!("{output}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                fta_obs::error!("{message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

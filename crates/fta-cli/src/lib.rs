//! # fta-cli — command-line front end for the FTA library
//!
//! The `fta` binary exposes the workflow a dispatcher would run:
//!
//! ```text
//! fta generate syn --seed 7 --out city.json      # write a workload
//! fta inspect city.json                          # look at it
//! fta solve city.json --algo iegt --out plan.json
//! fta schedule city.json --center 0 --dps 3,7,12 # sequence a dp set
//! fta compare city.json                          # all algorithms side by side
//! fta simulate --algo iegt --faults --budget-ms 5 # a bad day, survived
//! ```
//!
//! All argument parsing and command logic lives in this library crate so it
//! is unit-testable; `src/main.rs` is a thin shim.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{parse, Command};
pub use commands::execute;

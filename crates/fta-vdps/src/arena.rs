//! Generation arenas: recycled per-generation buffer storage.
//!
//! One C-VDPS generation churns through a family of short-lived `Vec`s —
//! dedup-table key/value arrays, frontier mask/slot storage, per-worker
//! validation scratch — whose sizes repeat almost exactly from generation
//! to generation (the workload is the same centers round after round).
//! Allocating them fresh each time costs a malloc/free pair per buffer
//! per layer; under a daemon serving one solve per tick that is pure
//! overhead.
//!
//! This module provides a tiny recycling arena instead: a per-thread
//! free-list of typed buffers. A generation *takes* buffers at the start
//! of each layer and *puts* them back once the layer (or the emission
//! pass) is done, so in steady state every take is served from the free
//! list and the hot path performs **zero heap allocations** — the arena
//! is "reset per generation" simply by every buffer returning to the
//! list. Buffers keep their capacity across cycles, so the retained
//! footprint climbs for the first generation and then stabilizes; the
//! high-water mark is observable through [`stats`] and asserted stable
//! by the steady-state proptests.
//!
//! The arena is thread-local on purpose: flat-engine expansion chunks
//! run on [`crate::pool::WorkerPool`] threads, and a per-thread free
//! list gives each of them lock-free recycling without any sharing.
//! Buffers that migrate across threads (sorted shards consumed by merge
//! jobs) are simply dropped where they land — recycling is best-effort
//! on the parallel path and exact on the sequential one, which is also
//! the path the zero-allocation tests pin.

use std::cell::RefCell;

/// A free-list of reusable `Vec<T>` buffers of one element type.
#[derive(Debug)]
pub struct Recycler<T> {
    free: Vec<Vec<T>>,
    /// Elements of capacity currently retained across free buffers.
    retained: usize,
    /// Peak of `retained` ever observed (elements).
    high_water: usize,
    /// Takes that could not be served from the free list.
    misses: u64,
}

impl<T> Default for Recycler<T> {
    fn default() -> Self {
        Self {
            free: Vec::new(),
            retained: 0,
            high_water: 0,
            misses: 0,
        }
    }
}

impl<T> Recycler<T> {
    /// Takes a cleared buffer with at least `min_capacity` capacity,
    /// preferring a recycled one. Falls back to a fresh allocation (a
    /// *miss*) only when the free list is empty.
    #[must_use]
    pub fn take(&mut self, min_capacity: usize) -> Vec<T> {
        // Prefer the most recently returned buffer that already fits;
        // deterministic call sequences then map buffers consistently
        // from generation to generation and capacities stop growing.
        let pick = self
            .free
            .iter()
            .rposition(|b| b.capacity() >= min_capacity)
            .or(if self.free.is_empty() {
                None
            } else {
                Some(self.free.len() - 1)
            });
        match pick {
            Some(i) => {
                let mut buf = self.free.swap_remove(i);
                self.retained -= buf.capacity();
                buf.clear();
                buf.reserve(min_capacity);
                buf
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(min_capacity)
            }
        }
    }

    /// Returns a buffer to the free list for the next generation.
    pub fn put(&mut self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        self.retained += buf.capacity();
        self.high_water = self.high_water.max(self.retained);
        self.free.push(buf);
    }
}

/// The per-thread generation arena: one [`Recycler`] per buffer type the
/// hot paths use. Fields are crate-internal; observability goes through
/// [`stats`].
#[derive(Debug, Default)]
pub(crate) struct GenArena {
    pub(crate) masks: Recycler<u128>,
    pub(crate) folds: Recycler<u64>,
    pub(crate) indices: Recycler<u32>,
    pub(crate) floats: Recycler<f64>,
    pub(crate) flags: Recycler<bool>,
    pub(crate) slots: Recycler<crate::dedup::Slot>,
}

/// A snapshot of one thread's arena accounting, in bytes / counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Peak retained capacity across all free lists, in bytes.
    pub high_water_bytes: usize,
    /// Capacity currently parked on the free lists, in bytes.
    pub retained_bytes: usize,
    /// Takes that had to allocate because the free list was empty.
    pub misses: u64,
}

impl GenArena {
    fn stats(&self) -> ArenaStats {
        use std::mem::size_of;
        fn acc<T>(r: &Recycler<T>) -> (usize, usize, u64) {
            (
                r.high_water * size_of::<T>(),
                r.retained * size_of::<T>(),
                r.misses,
            )
        }
        let parts = [
            acc(&self.masks),
            acc(&self.folds),
            acc(&self.indices),
            acc(&self.floats),
            acc(&self.flags),
            acc(&self.slots),
        ];
        let mut s = ArenaStats::default();
        for (hw, ret, miss) in parts {
            s.high_water_bytes += hw;
            s.retained_bytes += ret;
            s.misses += miss;
        }
        s
    }
}

thread_local! {
    static ARENA: RefCell<GenArena> = RefCell::new(GenArena::default());
}

/// Runs `f` with this thread's arena. Borrows are short and never nested:
/// callers take buffers, release the borrow, work, and put them back in a
/// separate call.
pub(crate) fn with<R>(f: impl FnOnce(&mut GenArena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Accounting snapshot of the *current thread's* arena. Sequential
/// generation (no [`crate::pool::TaskScope`]) runs entirely on the
/// calling thread, so tests can observe the steady state here.
#[must_use]
pub fn stats() -> ArenaStats {
    with(|a| a.stats())
}

/// Drops every recycled buffer of the current thread's arena and resets
/// the accounting. Test isolation hook.
pub fn clear() {
    with(|a| *a = GenArena::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle_reuses_capacity() {
        let mut r: Recycler<u64> = Recycler::default();
        let mut buf = r.take(100);
        assert_eq!(r.misses, 1);
        buf.extend(0..100u64);
        let cap = buf.capacity();
        r.put(buf);
        assert_eq!(r.retained, cap);
        let again = r.take(50);
        assert_eq!(r.misses, 1, "second take must be served from the list");
        assert!(again.capacity() >= cap);
        assert!(again.is_empty());
        assert_eq!(r.retained, 0);
    }

    #[test]
    fn take_prefers_fitting_buffer() {
        let mut r: Recycler<u64> = Recycler::default();
        let small = r.take(8);
        let big = r.take(1024);
        let big_cap = big.capacity();
        r.put(big);
        r.put(small);
        // LIFO would hand back `small`; the fit scan must find `big`.
        let got = r.take(512);
        assert!(got.capacity() >= big_cap.min(512));
        assert_eq!(r.misses, 2);
    }

    #[test]
    fn high_water_tracks_peak_retention() {
        let mut r: Recycler<u8> = Recycler::default();
        r.put(Vec::with_capacity(64));
        r.put(Vec::with_capacity(32));
        assert_eq!(r.high_water, 96);
        let _ = r.take(1);
        let _ = r.take(1);
        assert_eq!(r.retained, 0);
        assert_eq!(r.high_water, 96, "high water never decreases");
    }

    #[test]
    fn thread_local_stats_roundtrip() {
        clear();
        assert_eq!(stats(), ArenaStats::default());
        with(|a| {
            let b = a.masks.take(16);
            a.masks.put(b);
        });
        let s = stats();
        assert!(s.high_water_bytes >= 16 * 16);
        assert_eq!(s.misses, 1);
        clear();
    }
}

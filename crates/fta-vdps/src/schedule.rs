//! Scheduling a *given* delivery point set: the paper's Definition 6/7
//! sequencing problem as a standalone API.
//!
//! [`generate_c_vdps`](crate::generator::generate_c_vdps) enumerates all
//! valid sets, but downstream users (dispatch UIs, the simulator, what-if
//! tooling) often hold a specific set of delivery points and just need the
//! minimum-travel-time deadline-feasible visiting order. [`schedule_route`]
//! answers that with a Held–Karp restricted to the given set.

use fta_core::instance::Instance;
use fta_core::route::Route;
use fta_core::{CenterId, DeliveryPointId, FtaError};
use std::collections::HashMap;

/// Finds the minimum-travel-time deadline-feasible visiting order of
/// `dps`, starting from `center`. Returns `Ok(None)` if no ordering meets
/// every delivery point's earliest task expiry (i.e. the set is not a
/// C-VDPS).
///
/// The returned [`Route`] is the same representative the paper keeps per
/// VDPS: the sequence with the lowest total travel time, which maximises
/// worker payoff (Definition 7).
///
/// # Errors
///
/// Returns [`FtaError`] if `dps` is empty, contains duplicates, exceeds
/// 20 delivery points (the exact DP is exponential in the set size; the
/// paper's `maxDP` is at most 4), references an unknown center or
/// delivery point, or references another center's delivery points.
/// These used to be panics; a dispatcher feeding operator input should
/// get a report, not a crash.
pub fn schedule_route(
    instance: &Instance,
    center: CenterId,
    dps: &[DeliveryPointId],
) -> Result<Option<Route>, FtaError> {
    let n = dps.len();
    if n == 0 {
        return Err(FtaError::InvalidField {
            field: "dps",
            message: "cannot schedule an empty delivery point set".to_string(),
        });
    }
    if n > 20 {
        return Err(FtaError::InvalidField {
            field: "dps",
            message: format!("schedule_route supports at most 20 delivery points, got {n}"),
        });
    }
    {
        let mut sorted = dps.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != n {
            return Err(FtaError::InvalidField {
                field: "dps",
                message: "delivery point set contains duplicates".to_string(),
            });
        }
    }
    if center.index() >= instance.centers.len() {
        return Err(FtaError::UnknownCenter(center));
    }
    let aggregates = instance.dp_aggregates();
    let dc = instance.centers[center.index()].location;
    let speed = instance.speed;
    let mut locs = Vec::with_capacity(n);
    for dp in dps {
        let Some(d) = instance.delivery_points.get(dp.index()) else {
            return Err(FtaError::UnknownDeliveryPoint(*dp));
        };
        if d.center != center {
            return Err(FtaError::InvalidField {
                field: "dps",
                message: format!("{dp} belongs to {}, not {center}", d.center),
            });
        }
        locs.push(d.location);
    }
    let expiry: Vec<f64> = dps
        .iter()
        .map(|dp| aggregates[dp.index()].earliest_expiry)
        .collect();

    // Held–Karp over the subset: state (visited mask, last) → minimal
    // feasible arrival, with parent pointers for reconstruction.
    let full: u32 = (1u32 << n) - 1;
    let mut best: HashMap<(u32, u8), (f64, u8)> = HashMap::new();
    for j in 0..n {
        let t = dc.travel_time(locs[j], speed);
        if t <= expiry[j] {
            best.insert((1 << j, j as u8), (t, u8::MAX));
        }
    }
    for mask in 1..=full {
        for last in 0..n {
            let Some(&(arrival, _)) = best.get(&(mask, last as u8)) else {
                continue;
            };
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let t = arrival + locs[last].travel_time(locs[next], speed);
                if t > expiry[next] {
                    continue;
                }
                let key = (mask | (1 << next), next as u8);
                let candidate = (t, last as u8);
                best.entry(key)
                    .and_modify(|cur| {
                        if candidate.0 < cur.0 {
                            *cur = candidate;
                        }
                    })
                    .or_insert(candidate);
            }
        }
    }

    // Best complete tour and path reconstruction. `total_cmp` instead of
    // `partial_cmp(..).expect(..)`: arrival times are finite by
    // construction (validated instances have finite coordinates and
    // positive speed), but scheduling must never panic on a comparison.
    let Some((&(_, mut last), _)) = best
        .iter()
        .filter(|&(&(mask, _), _)| mask == full)
        .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
    else {
        return Ok(None);
    };
    let mut order_rev = Vec::with_capacity(n);
    let mut mask = full;
    loop {
        order_rev.push(last as usize);
        let &(_, parent) = &best[&(mask, last)];
        if parent == u8::MAX {
            break;
        }
        mask &= !(1 << last);
        last = parent;
    }
    order_rev.reverse();
    let sequence: Vec<DeliveryPointId> = order_rev.into_iter().map(|i| dps[i]).collect();
    let route = Route::build(instance, &aggregates, center, sequence)?;
    debug_assert!(route.is_center_origin_valid());
    Ok(Some(route))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_c_vdps;
    use crate::VdpsConfig;
    use fta_data::{generate_syn, SynConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 4,
                n_tasks: 60,
                n_delivery_points: 8,
                extent: 2.5,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    #[test]
    fn matches_the_generator_representative_for_every_vdps() {
        for seed in [1, 2, 3] {
            let inst = instance(seed);
            let aggs = inst.dp_aggregates();
            let views = inst.center_views();
            let (pool, _) = generate_c_vdps(&inst, &aggs, &views[0], &VdpsConfig::unpruned(4));
            for vdps in &pool {
                let mut dps: Vec<DeliveryPointId> = vdps.route.dps().to_vec();
                // Shuffle the order: scheduling must not depend on it.
                dps.reverse();
                let scheduled = schedule_route(&inst, views[0].center, &dps)
                    .expect("well-formed input")
                    .expect("generator-emitted sets are schedulable");
                assert!(
                    (scheduled.travel_from_dc() - vdps.route.travel_from_dc()).abs() < 1e-9,
                    "seed {seed}, mask {:#b}: {} vs {}",
                    vdps.mask,
                    scheduled.travel_from_dc(),
                    vdps.route.travel_from_dc()
                );
            }
        }
    }

    #[test]
    fn infeasible_sets_return_none() {
        let mut inst = instance(4);
        for t in &mut inst.tasks {
            t.expiry = 1e-6;
        }
        let views = inst.center_views();
        let dps: Vec<DeliveryPointId> = views[0].dps[..2].to_vec();
        assert!(schedule_route(&inst, views[0].center, &dps)
            .expect("well-formed input")
            .is_none());
    }

    #[test]
    fn single_point_schedules_trivially() {
        let inst = instance(5);
        let views = inst.center_views();
        let dp = views[0].dps[0];
        let route = schedule_route(&inst, views[0].center, &[dp])
            .unwrap()
            .unwrap();
        assert_eq!(route.dps(), &[dp]);
    }

    #[test]
    fn rejects_duplicate_delivery_points() {
        let inst = instance(6);
        let views = inst.center_views();
        let dp = views[0].dps[0];
        let err = schedule_route(&inst, views[0].center, &[dp, dp])
            .expect_err("duplicates must be rejected, not scheduled");
        assert!(err.to_string().contains("duplicates"), "{err}");
    }

    #[test]
    fn rejects_empty_sets() {
        let inst = instance(7);
        let views = inst.center_views();
        let err = schedule_route(&inst, views[0].center, &[])
            .expect_err("empty sets must be rejected, not scheduled");
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn rejects_unknown_and_foreign_references() {
        let inst = instance(8);
        let views = inst.center_views();
        // Unknown delivery point id.
        let bogus = DeliveryPointId(u32::MAX);
        assert!(matches!(
            schedule_route(&inst, views[0].center, &[bogus]),
            Err(FtaError::UnknownDeliveryPoint(_))
        ));
        // Unknown center id.
        let dp = views[0].dps[0];
        assert!(matches!(
            schedule_route(&inst, CenterId(99), &[dp]),
            Err(FtaError::UnknownCenter(_))
        ));
        // Oversized set.
        let many: Vec<DeliveryPointId> = (0..21).map(DeliveryPointId::from_index).collect();
        assert!(matches!(
            schedule_route(&inst, views[0].center, &many),
            Err(FtaError::InvalidField { field: "dps", .. })
        ));
    }
}

//! Scheduling a *given* delivery point set: the paper's Definition 6/7
//! sequencing problem as a standalone API.
//!
//! [`generate_c_vdps`](crate::generator::generate_c_vdps) enumerates all
//! valid sets, but downstream users (dispatch UIs, the simulator, what-if
//! tooling) often hold a specific set of delivery points and just need the
//! minimum-travel-time deadline-feasible visiting order. [`schedule_route`]
//! answers that with a Held–Karp restricted to the given set.

use fta_core::instance::Instance;
use fta_core::route::Route;
use fta_core::{CenterId, DeliveryPointId};
use std::collections::HashMap;

/// Finds the minimum-travel-time deadline-feasible visiting order of
/// `dps`, starting from `center`, or `None` if no ordering meets every
/// delivery point's earliest task expiry (i.e. the set is not a C-VDPS).
///
/// The returned [`Route`] is the same representative the paper keeps per
/// VDPS: the sequence with the lowest total travel time, which maximises
/// worker payoff (Definition 7).
///
/// # Panics
///
/// Panics if `dps` is empty, contains duplicates, exceeds 20 delivery
/// points (the exact DP is exponential in the set size; the paper's
/// `maxDP` is at most 4), or references another center's delivery points.
#[must_use]
pub fn schedule_route(
    instance: &Instance,
    center: CenterId,
    dps: &[DeliveryPointId],
) -> Option<Route> {
    let n = dps.len();
    assert!(n > 0, "cannot schedule an empty delivery point set");
    assert!(
        n <= 20,
        "schedule_route supports at most 20 delivery points"
    );
    {
        let mut sorted = dps.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "delivery point set contains duplicates");
    }
    let aggregates = instance.dp_aggregates();
    let dc = instance.centers[center.index()].location;
    let speed = instance.speed;
    let locs: Vec<_> = dps
        .iter()
        .map(|dp| {
            let d = &instance.delivery_points[dp.index()];
            assert_eq!(d.center, center, "{dp} belongs to another center");
            d.location
        })
        .collect();
    let expiry: Vec<f64> = dps
        .iter()
        .map(|dp| aggregates[dp.index()].earliest_expiry)
        .collect();

    // Held–Karp over the subset: state (visited mask, last) → minimal
    // feasible arrival, with parent pointers for reconstruction.
    let full: u32 = (1u32 << n) - 1;
    let mut best: HashMap<(u32, u8), (f64, u8)> = HashMap::new();
    for j in 0..n {
        let t = dc.travel_time(locs[j], speed);
        if t <= expiry[j] {
            best.insert((1 << j, j as u8), (t, u8::MAX));
        }
    }
    for mask in 1..=full {
        for last in 0..n {
            let Some(&(arrival, _)) = best.get(&(mask, last as u8)) else {
                continue;
            };
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let t = arrival + locs[last].travel_time(locs[next], speed);
                if t > expiry[next] {
                    continue;
                }
                let key = (mask | (1 << next), next as u8);
                let candidate = (t, last as u8);
                best.entry(key)
                    .and_modify(|cur| {
                        if candidate.0 < cur.0 {
                            *cur = candidate;
                        }
                    })
                    .or_insert(candidate);
            }
        }
    }

    // Best complete tour and path reconstruction.
    let (&(_, mut last), _) = best
        .iter()
        .filter(|&(&(mask, _), _)| mask == full)
        .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("times are not NaN"))?;
    let mut order_rev = Vec::with_capacity(n);
    let mut mask = full;
    loop {
        order_rev.push(last as usize);
        let &(_, parent) = &best[&(mask, last)];
        if parent == u8::MAX {
            break;
        }
        mask &= !(1 << last);
        last = parent;
    }
    order_rev.reverse();
    let sequence: Vec<DeliveryPointId> = order_rev.into_iter().map(|i| dps[i]).collect();
    let route = Route::build(instance, &aggregates, center, sequence)
        .expect("scheduled sequences reference valid delivery points");
    debug_assert!(route.is_center_origin_valid());
    Some(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_c_vdps;
    use crate::VdpsConfig;
    use fta_data::{generate_syn, SynConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 4,
                n_tasks: 60,
                n_delivery_points: 8,
                extent: 2.5,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    #[test]
    fn matches_the_generator_representative_for_every_vdps() {
        for seed in [1, 2, 3] {
            let inst = instance(seed);
            let aggs = inst.dp_aggregates();
            let views = inst.center_views();
            let (pool, _) = generate_c_vdps(&inst, &aggs, &views[0], &VdpsConfig::unpruned(4));
            for vdps in &pool {
                let mut dps: Vec<DeliveryPointId> = vdps.route.dps().to_vec();
                // Shuffle the order: scheduling must not depend on it.
                dps.reverse();
                let scheduled = schedule_route(&inst, views[0].center, &dps)
                    .expect("generator-emitted sets are schedulable");
                assert!(
                    (scheduled.travel_from_dc() - vdps.route.travel_from_dc()).abs() < 1e-9,
                    "seed {seed}, mask {:#b}: {} vs {}",
                    vdps.mask,
                    scheduled.travel_from_dc(),
                    vdps.route.travel_from_dc()
                );
            }
        }
    }

    #[test]
    fn infeasible_sets_return_none() {
        let mut inst = instance(4);
        for t in &mut inst.tasks {
            t.expiry = 1e-6;
        }
        let views = inst.center_views();
        let dps: Vec<DeliveryPointId> = views[0].dps[..2].to_vec();
        assert!(schedule_route(&inst, views[0].center, &dps).is_none());
    }

    #[test]
    fn single_point_schedules_trivially() {
        let inst = instance(5);
        let views = inst.center_views();
        let dp = views[0].dps[0];
        let route = schedule_route(&inst, views[0].center, &[dp]).unwrap();
        assert_eq!(route.dps(), &[dp]);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicate_delivery_points() {
        let inst = instance(6);
        let views = inst.center_views();
        let dp = views[0].dps[0];
        let _ = schedule_route(&inst, views[0].center, &[dp, dp]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_sets() {
        let inst = instance(7);
        let views = inst.center_views();
        let _ = schedule_route(&inst, views[0].center, &[]);
    }
}

//! Brute-force reference C-VDPS generator.
//!
//! Enumerates every subset (up to the length cap) and every permutation of
//! each subset, checking deadline feasibility directly against Definition 6.
//! Exponential in both subset size and count — usable only for tiny centers
//! — but trivially correct, so the tests validate the dynamic program of
//! [`crate::generator`] against it.

use crate::config::VdpsConfig;
use crate::generator::Vdps;
use fta_core::instance::{CenterView, DpAggregate, Instance};
use fta_core::route::Route;
use fta_core::DeliveryPointId;

/// Generates all C-VDPSs by exhaustive enumeration.
///
/// Applies the same ε-pruning rule as the dynamic program (hops longer than
/// ε disqualify a *permutation*, and a subset survives only if some
/// unpruned feasible permutation exists), so outputs are comparable
/// one-to-one with [`crate::generator::generate_c_vdps`].
///
/// # Panics
///
/// Panics if the center has more than 20 delivery points; the reference
/// implementation exists for validation and as a benchmark baseline, and
/// enumerates all `2^n` masks before filtering by length.
#[must_use]
pub fn generate_naive(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
) -> Vec<Vdps> {
    let n = view.dps.len();
    assert!(n <= 20, "naive generation is restricted to tiny centers");
    let dc = instance.centers[view.center.index()].location;
    let speed = instance.speed;
    let locs: Vec<_> = view
        .dps
        .iter()
        .map(|dp| instance.delivery_points[dp.index()].location)
        .collect();
    let expiry: Vec<f64> = view
        .dps
        .iter()
        .map(|dp| aggregates[dp.index()].earliest_expiry)
        .collect();

    let mut result = Vec::new();
    let mut masks: Vec<u128> = (1u128..(1u128 << n))
        .filter(|m| (m.count_ones() as usize) <= config.max_len)
        .collect();
    masks.sort_by_key(|m| (m.count_ones(), *m));

    for mask in masks {
        let members: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        let mut best: Option<(f64, Vec<usize>)> = None;
        permutations(&members, &mut |perm| {
            let mut t = 0.0;
            let mut prev = dc;
            for &i in perm {
                let hop = prev.distance(locs[i]);
                // ε applies only to dp→dp hops, matching the DP.
                if prev != dc && !config.allows_hop(hop) {
                    return;
                }
                t += hop / speed;
                if t > expiry[i] {
                    return;
                }
                prev = locs[i];
            }
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, perm.to_vec()));
            }
        });
        if let Some((_, order)) = best {
            let dps: Vec<DeliveryPointId> = order.iter().map(|&i| view.dps[i]).collect();
            let route = Route::build(instance, aggregates, view.center, dps)
                .expect("enumerated delivery points are valid");
            result.push(Vdps {
                mask,
                route: std::sync::Arc::new(route),
            });
        }
    }
    result
}

/// Calls `f` with every permutation of `items` (Heap's algorithm, iterative
/// buffer variant).
fn permutations(items: &[usize], f: &mut impl FnMut(&[usize])) {
    fn go(buf: &mut Vec<usize>, rest: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if rest.is_empty() {
            f(buf);
            return;
        }
        for i in 0..rest.len() {
            let item = rest.remove(i);
            buf.push(item);
            go(buf, rest, f);
            buf.pop();
            rest.insert(i, item);
        }
    }
    go(&mut Vec::with_capacity(items.len()), &mut items.to_vec(), f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_c_vdps;
    use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use fta_core::geometry::Point;
    use fta_core::ids::{CenterId, TaskId, WorkerId};

    fn scatter_instance(points: &[(f64, f64, f64)]) -> Instance {
        // (x, y, expiry) per dp; dc at origin, speed 1.
        let dps: Vec<DeliveryPoint> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y, _))| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new(x, y),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = points
            .iter()
            .enumerate()
            .map(|(i, &(_, _, e))| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: e,
                reward: 1.0,
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(0.0, 0.0),
                max_dp: 5,
                center: CenterId(0),
            }],
            dps,
            tasks,
            1.0,
        )
        .unwrap()
    }

    fn check_equivalence(points: &[(f64, f64, f64)], cfg: &VdpsConfig) {
        let inst = scatter_instance(points);
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let naive = generate_naive(&inst, &aggs, &views[0], cfg);
        let (dp, _) = generate_c_vdps(&inst, &aggs, &views[0], cfg);
        let naive_masks: Vec<u128> = naive.iter().map(|v| v.mask).collect();
        let dp_masks: Vec<u128> = dp.iter().map(|v| v.mask).collect();
        assert_eq!(naive_masks, dp_masks, "feasible subsets differ");
        for (a, b) in naive.iter().zip(dp.iter()) {
            assert!(
                (a.route.travel_from_dc() - b.route.travel_from_dc()).abs() < 1e-9,
                "travel times differ on mask {:#b}: naive {} vs dp {}",
                a.mask,
                a.route.travel_from_dc(),
                b.route.travel_from_dc()
            );
        }
    }

    #[test]
    fn dp_matches_naive_on_scattered_points() {
        let pts = [
            (1.0, 0.5, 10.0),
            (2.0, -0.5, 10.0),
            (0.5, 1.5, 10.0),
            (-1.0, -1.0, 10.0),
        ];
        check_equivalence(&pts, &VdpsConfig::unpruned(4));
    }

    #[test]
    fn dp_matches_naive_with_tight_deadlines() {
        let pts = [
            (1.0, 0.0, 1.2),
            (2.0, 0.0, 2.4),
            (1.5, 1.0, 3.0),
            (0.0, 2.0, 2.0),
        ];
        check_equivalence(&pts, &VdpsConfig::unpruned(4));
    }

    #[test]
    fn dp_matches_naive_with_pruning() {
        let pts = [
            (1.0, 0.0, 10.0),
            (1.8, 0.2, 10.0),
            (3.0, 0.0, 10.0),
            (1.2, 1.1, 10.0),
        ];
        check_equivalence(&pts, &VdpsConfig::pruned(1.3, 4));
    }

    #[test]
    fn dp_matches_naive_with_cap() {
        let pts = [
            (0.7, 0.7, 6.0),
            (1.5, 0.0, 6.0),
            (0.0, 1.5, 6.0),
            (2.0, 2.0, 6.0),
            (1.0, 2.0, 6.0),
        ];
        check_equivalence(&pts, &VdpsConfig::unpruned(2));
        check_equivalence(&pts, &VdpsConfig::pruned(1.6, 3));
    }
}

//! Configuration of the VDPS generator.

/// Tuning knobs of the C-VDPS dynamic program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdpsConfig {
    /// Distance threshold `ε` (km) of the paper's distance-constrained
    /// pruning strategy: a delivery point `dp_j` is only appended after
    /// `dp_i` when `d(dp_i, dp_j) ≤ ε`. `None` disables pruning (the
    /// paper's `-W` algorithm variants).
    pub epsilon: Option<f64>,
    /// Maximum subset size to generate. Callers normally pass the largest
    /// `maxDP` among the center's workers — larger sets can never be
    /// assigned to anyone.
    pub max_len: usize,
}

impl VdpsConfig {
    /// A config with pruning radius `epsilon` (km) and length cap `max_len`.
    #[must_use]
    pub fn pruned(epsilon: f64, max_len: usize) -> Self {
        Self {
            epsilon: Some(epsilon),
            max_len,
        }
    }

    /// A config without distance pruning (the `-W` variants).
    #[must_use]
    pub fn unpruned(max_len: usize) -> Self {
        Self {
            epsilon: None,
            max_len,
        }
    }

    /// Whether the extension `dp_i → dp_j` at distance `d` survives pruning.
    #[must_use]
    pub fn allows_hop(&self, d: f64) -> bool {
        match self.epsilon {
            Some(eps) => d <= eps,
            None => true,
        }
    }
}

impl Default for VdpsConfig {
    /// The paper's SYN defaults: `ε = 2 km`, `maxDP = 3` (Table I).
    fn default() -> Self {
        Self::pruned(2.0, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_config_limits_hops() {
        let cfg = VdpsConfig::pruned(1.5, 3);
        assert!(cfg.allows_hop(1.5));
        assert!(!cfg.allows_hop(1.5000001));
    }

    #[test]
    fn unpruned_config_allows_everything() {
        let cfg = VdpsConfig::unpruned(4);
        assert!(cfg.allows_hop(f64::MAX));
    }

    #[test]
    fn default_matches_table_one() {
        let cfg = VdpsConfig::default();
        assert_eq!(cfg.epsilon, Some(2.0));
        assert_eq!(cfg.max_len, 3);
    }
}

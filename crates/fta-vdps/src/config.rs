//! Configuration of the VDPS generator.

/// Which implementation of Algorithm 1 generates the C-VDPS pool.
///
/// Both engines produce bit-identical pools (same masks, same routes, same
/// ordering by subset size then mask) and identical pruning counters; they
/// differ only in speed. The flat engine is the default; the hash-map
/// engine is retained as a correctness oracle next to the brute-force
/// reference in [`crate::naive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VdpsEngine {
    /// Cache-friendly mask-bucketed flat-frontier engine with a
    /// precomputed travel-time matrix, open-addressed dedup tables, and
    /// optional intra-center parallelism on a bounded worker pool
    /// (see [`crate::flat`]).
    #[default]
    Flat,
    /// The original per-layer `HashMap<(mask, last), State>` dynamic
    /// program (see [`crate::generator::generate_c_vdps_hashmap`]).
    Hashmap,
}

impl VdpsEngine {
    /// Parses an engine name as used by the CLI (`flat` | `hashmap`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "flat" => Some(Self::Flat),
            "hashmap" => Some(Self::Hashmap),
            _ => None,
        }
    }

    /// Short display name (`"flat"` | `"hashmap"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Flat => "flat",
            Self::Hashmap => "hashmap",
        }
    }
}

/// Tuning knobs of the C-VDPS dynamic program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdpsConfig {
    /// Distance threshold `ε` (km) of the paper's distance-constrained
    /// pruning strategy: a delivery point `dp_j` is only appended after
    /// `dp_i` when `d(dp_i, dp_j) ≤ ε`. `None` disables pruning (the
    /// paper's `-W` algorithm variants).
    pub epsilon: Option<f64>,
    /// Maximum subset size to generate. Callers normally pass the largest
    /// `maxDP` among the center's workers — larger sets can never be
    /// assigned to anyone.
    pub max_len: usize,
    /// Which generator implementation to run (flat engine by default).
    pub engine: VdpsEngine,
}

impl VdpsConfig {
    /// A config with pruning radius `epsilon` (km) and length cap `max_len`.
    #[must_use]
    pub fn pruned(epsilon: f64, max_len: usize) -> Self {
        Self {
            epsilon: Some(epsilon),
            max_len,
            engine: VdpsEngine::default(),
        }
    }

    /// A config without distance pruning (the `-W` variants).
    #[must_use]
    pub fn unpruned(max_len: usize) -> Self {
        Self {
            epsilon: None,
            max_len,
            engine: VdpsEngine::default(),
        }
    }

    /// Returns a copy running on the given engine.
    #[must_use]
    pub fn with_engine(self, engine: VdpsEngine) -> Self {
        Self { engine, ..self }
    }

    /// Whether the extension `dp_i → dp_j` at distance `d` survives pruning.
    #[must_use]
    pub fn allows_hop(&self, d: f64) -> bool {
        match self.epsilon {
            Some(eps) => d <= eps,
            None => true,
        }
    }
}

impl Default for VdpsConfig {
    /// The paper's SYN defaults: `ε = 2 km`, `maxDP = 3` (Table I).
    fn default() -> Self {
        Self::pruned(2.0, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_config_limits_hops() {
        let cfg = VdpsConfig::pruned(1.5, 3);
        assert!(cfg.allows_hop(1.5));
        assert!(!cfg.allows_hop(1.5000001));
    }

    #[test]
    fn unpruned_config_allows_everything() {
        let cfg = VdpsConfig::unpruned(4);
        assert!(cfg.allows_hop(f64::MAX));
    }

    #[test]
    fn default_matches_table_one() {
        let cfg = VdpsConfig::default();
        assert_eq!(cfg.epsilon, Some(2.0));
        assert_eq!(cfg.max_len, 3);
        assert_eq!(cfg.engine, VdpsEngine::Flat);
    }

    #[test]
    fn engine_names_round_trip() {
        for engine in [VdpsEngine::Flat, VdpsEngine::Hashmap] {
            assert_eq!(VdpsEngine::by_name(engine.name()), Some(engine));
        }
        assert_eq!(VdpsEngine::by_name("nope"), None);
        let cfg = VdpsConfig::default().with_engine(VdpsEngine::Hashmap);
        assert_eq!(cfg.engine, VdpsEngine::Hashmap);
        assert_eq!(cfg.epsilon, Some(2.0), "with_engine keeps other knobs");
    }
}

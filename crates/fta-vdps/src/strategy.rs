//! Per-worker strategy spaces (Section V-B).
//!
//! After C-VDPS generation, each worker's strategy set `ST_i` consists of
//! the C-VDPSs that are valid *for that worker* — the worker can reach the
//! distribution center early enough that every deadline on the route still
//! holds, and the set is no larger than the worker's `maxDP` — plus the
//! `null` strategy. [`StrategySpace`] materialises this once per center and
//! precomputes each worker's payoff for each of its strategies, which the
//! game-theoretic algorithms then consume.

use crate::config::VdpsConfig;
use crate::generator::{generate_c_vdps_budgeted, GenControl, GenerationStats, Vdps};
use crate::pool::TaskScope;
use fta_core::instance::{CenterView, DpAggregate, Instance};
use fta_core::payoff::payoff_for_travel;
use fta_core::WorkerId;
use std::sync::Arc;

/// Minimum `workers × pool entries` product before per-worker validation
/// is worth farming out to the worker pool.
const PAR_MIN_VALIDATION_WORK: usize = 1 << 12;

/// The strategy spaces of all workers of one distribution center.
#[derive(Debug, Clone)]
pub struct StrategySpace {
    /// The center view this space was built from.
    pub view: CenterView,
    /// The shared C-VDPS pool (deterministically ordered).
    pub pool: Vec<Vdps>,
    /// Travel time from each local worker to the distribution center.
    pub worker_to_dc: Vec<f64>,
    /// Per local worker: indices into `pool` of the strategies valid for
    /// that worker (ascending).
    pub valid: Vec<Vec<u32>>,
    /// Per local worker: payoff of each valid strategy, parallel to
    /// `valid`.
    pub payoffs: Vec<Vec<f64>>,
    /// Statistics from the underlying C-VDPS generation run.
    pub gen_stats: GenerationStats,
}

impl StrategySpace {
    /// Generates the C-VDPS pool for `view` and validates it per worker.
    ///
    /// Convenience wrapper over [`StrategySpace::build_in`] that computes
    /// the delivery-point aggregates itself and runs sequentially.
    #[must_use]
    pub fn build(instance: &Instance, view: &CenterView, config: &VdpsConfig) -> Self {
        let aggregates = instance.dp_aggregates();
        Self::build_in(instance, &aggregates, view.clone(), config, None)
    }

    /// Generates the C-VDPS pool for `view` and validates it per worker,
    /// re-using pre-computed delivery-point `aggregates` (computed once per
    /// *instance*, not once per center) and optionally running generation
    /// and validation on an active worker-pool scope.
    ///
    /// Takes `view` by value: the solver hands each center job its owned
    /// view, so no clone happens on this path.
    #[must_use]
    pub fn build_in(
        instance: &Instance,
        aggregates: &[DpAggregate],
        view: CenterView,
        config: &VdpsConfig,
        scope: Option<&TaskScope<'_>>,
    ) -> Self {
        Self::build_budgeted(instance, aggregates, view, config, scope, GenControl::NONE)
    }

    /// [`StrategySpace::build_in`] with a [`GenControl`] threaded into the
    /// C-VDPS generation: when the control trips, the pool is truncated at
    /// a layer boundary and validation proceeds over the smaller pool.
    /// `GenControl::NONE` is bit-identical to [`StrategySpace::build_in`].
    #[must_use]
    pub fn build_budgeted(
        instance: &Instance,
        aggregates: &[DpAggregate],
        view: CenterView,
        config: &VdpsConfig,
        scope: Option<&TaskScope<'_>>,
        control: GenControl<'_>,
    ) -> Self {
        let (pool, gen_stats) =
            generate_c_vdps_budgeted(instance, aggregates, &view, config, scope, control);
        Self::from_pool_in(instance, view, pool, gen_stats, scope)
    }

    /// Validates a pre-generated pool per worker (used by tests and by the
    /// experiment harness when re-using one pool for several sweeps).
    #[must_use]
    pub fn from_pool(
        instance: &Instance,
        view: &CenterView,
        pool: Vec<Vdps>,
        gen_stats: GenerationStats,
    ) -> Self {
        Self::from_pool_in(instance, view.clone(), pool, gen_stats, None)
    }

    /// Validates a pre-generated pool per worker, optionally fanning the
    /// per-worker validation/payoff precompute out over an active
    /// worker-pool scope. Results are identical to the sequential path:
    /// workers are processed in index chunks and reassembled in order.
    #[must_use]
    pub fn from_pool_in(
        instance: &Instance,
        view: CenterView,
        pool: Vec<Vdps>,
        gen_stats: GenerationStats,
        scope: Option<&TaskScope<'_>>,
    ) -> Self {
        let _span = fta_obs::span_center("vdps.strategy_space", view.center.index() as u32);
        let dc = instance.centers[view.center.index()].location;
        let worker_to_dc: Vec<f64> = view
            .workers
            .iter()
            .map(|&w| instance.travel_time(instance.workers[w.index()].location, dc))
            .collect();
        let n_workers = view.workers.len();

        let parallel = scope.is_some_and(|s| s.threads() > 1)
            && n_workers > 1
            && n_workers.saturating_mul(pool.len()) >= PAR_MIN_VALIDATION_WORK;

        let (pool, per_worker) = if parallel {
            let scope = scope.expect("parallel implies an active scope");
            // Per-worker parameters are tiny copies; the pool is shared
            // read-only via `Arc` so chunk jobs satisfy the scope's `'env`
            // bound without cloning any `Vdps`.
            let params: Vec<(usize, f64)> = view
                .workers
                .iter()
                .enumerate()
                .map(|(local, &w)| (instance.workers[w.index()].max_dp, worker_to_dc[local]))
                .collect();
            let shared = Arc::new(pool);
            let chunk = n_workers.div_ceil(scope.threads() * 2).max(1);
            let jobs: Vec<_> = params
                .chunks(chunk)
                .map(|chunk_params| {
                    let shared = Arc::clone(&shared);
                    let chunk_params = chunk_params.to_vec();
                    move |_: &TaskScope<'_>| {
                        chunk_params
                            .into_iter()
                            .map(|(max_dp, to_dc)| validate_worker(&shared, max_dp, to_dc))
                            .collect::<Vec<_>>()
                    }
                })
                .collect();
            let per_worker: Vec<(Vec<u32>, Vec<f64>)> =
                scope.map(jobs).into_iter().flatten().collect();
            let pool = Arc::try_unwrap(shared)
                .expect("all chunk jobs completed, so the pool has one owner again");
            (pool, per_worker)
        } else {
            let per_worker: Vec<(Vec<u32>, Vec<f64>)> = view
                .workers
                .iter()
                .enumerate()
                .map(|(local, &w)| {
                    validate_worker(
                        &pool,
                        instance.workers[w.index()].max_dp,
                        worker_to_dc[local],
                    )
                })
                .collect();
            (pool, per_worker)
        };

        let mut valid = Vec::with_capacity(n_workers);
        let mut payoffs = Vec::with_capacity(n_workers);
        for (v, p) in per_worker {
            valid.push(v);
            payoffs.push(p);
        }
        Self {
            view,
            pool,
            worker_to_dc,
            valid,
            payoffs,
            gen_stats,
        }
    }

    /// Number of workers in this center's population.
    #[must_use]
    pub fn n_workers(&self) -> usize {
        self.view.workers.len()
    }

    /// The global id of the `local`-th worker.
    #[must_use]
    pub fn worker_id(&self, local: usize) -> WorkerId {
        self.view.workers[local]
    }

    /// Number of non-null strategies available to the `local`-th worker.
    #[must_use]
    pub fn strategy_count(&self, local: usize) -> usize {
        self.valid[local].len()
    }

    /// The largest strategy-set size across workers (`|maxVDPS|` in the
    /// paper's complexity analyses).
    #[must_use]
    pub fn max_strategies(&self) -> usize {
        self.valid.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The payoff the `local`-th worker obtains from pool entry
    /// `pool_idx`, if that strategy is valid for the worker.
    #[must_use]
    pub fn payoff_of(&self, local: usize, pool_idx: u32) -> Option<f64> {
        let pos = self.valid[local].binary_search(&pool_idx).ok()?;
        Some(self.payoffs[local][pos])
    }
}

/// One worker's validation pass over the shared pool: which strategies the
/// worker can execute within every deadline (given its travel time to the
/// center and its `maxDP`), and the payoff of each.
fn validate_worker(pool: &[Vdps], max_dp: usize, to_dc: f64) -> (Vec<u32>, Vec<f64>) {
    let mut v = Vec::new();
    let mut p = Vec::new();
    for (idx, vdps) in pool.iter().enumerate() {
        if vdps.len() <= max_dp && vdps.route.is_valid_for_travel(to_dc) {
            v.push(idx as u32);
            p.push(payoff_for_travel(&vdps.route, to_dc));
        }
    }
    (v, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use fta_core::geometry::Point;
    use fta_core::ids::{CenterId, DeliveryPointId, TaskId};

    /// dc at origin; two dps at (1,0) and (2,0), expiries 2.5 and 100;
    /// worker 0 adjacent to dc, worker 1 far away; speed 1.
    fn instance() -> Instance {
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![
                Worker {
                    id: WorkerId(0),
                    location: Point::new(0.5, 0.0),
                    max_dp: 2,
                    center: CenterId(0),
                },
                Worker {
                    id: WorkerId(1),
                    location: Point::new(-5.0, 0.0),
                    max_dp: 1,
                    center: CenterId(0),
                },
            ],
            vec![
                DeliveryPoint {
                    id: DeliveryPointId(0),
                    location: Point::new(1.0, 0.0),
                    center: CenterId(0),
                },
                DeliveryPoint {
                    id: DeliveryPointId(1),
                    location: Point::new(2.0, 0.0),
                    center: CenterId(0),
                },
            ],
            vec![
                SpatialTask {
                    id: TaskId(0),
                    delivery_point: DeliveryPointId(0),
                    expiry: 2.5,
                    reward: 1.0,
                },
                SpatialTask {
                    id: TaskId(1),
                    delivery_point: DeliveryPointId(1),
                    expiry: 100.0,
                    reward: 3.0,
                },
            ],
            1.0,
        )
        .unwrap()
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn close_worker_sees_all_strategies() {
        let inst = instance();
        let s = space(&inst);
        // Pool: {dp0}, {dp1}, {dp0,dp1} (all feasible from dc).
        assert_eq!(s.pool.len(), 3);
        // Worker 0 (0.5 from dc, maxDP 2): all three valid.
        assert_eq!(s.strategy_count(0), 3);
    }

    #[test]
    fn far_worker_loses_deadline_bound_strategies() {
        let inst = instance();
        let s = space(&inst);
        // Worker 1 is 5.0 from dc; {dp0} has slack 2.5-1.0 = 1.5 < 5 →
        // invalid; {dp1} has slack 98 → valid; {dp0,dp1} exceeds maxDP=1.
        assert_eq!(s.strategy_count(1), 1);
        let idx = s.valid[1][0];
        assert_eq!(s.pool[idx as usize].mask, 0b10);
    }

    #[test]
    fn payoffs_match_direct_computation() {
        let inst = instance();
        let s = space(&inst);
        // Worker 0 taking {dp1}: reward 3, travel 0.5 + 2.0 = 2.5 → 1.2.
        let idx = s.valid[0]
            .iter()
            .position(|&i| s.pool[i as usize].mask == 0b10)
            .unwrap();
        assert!((s.payoffs[0][idx] - 1.2).abs() < 1e-12);
        assert_eq!(s.payoff_of(0, s.valid[0][idx]), Some(s.payoffs[0][idx]));
    }

    #[test]
    fn payoff_of_rejects_invalid_strategy() {
        let inst = instance();
        let s = space(&inst);
        // Worker 1 cannot take pool entry for {dp0} (mask 0b01).
        let dp0_idx = s.pool.iter().position(|v| v.mask == 0b01).unwrap() as u32;
        assert_eq!(s.payoff_of(1, dp0_idx), None);
    }

    #[test]
    fn max_strategies_reports_largest_set() {
        let inst = instance();
        let s = space(&inst);
        assert_eq!(s.max_strategies(), 3);
        assert_eq!(s.n_workers(), 2);
        assert_eq!(s.worker_id(1), WorkerId(1));
    }
}

//! Per-worker strategy spaces (Section V-B).
//!
//! After C-VDPS generation, each worker's strategy set `ST_i` consists of
//! the C-VDPSs that are valid *for that worker* — the worker can reach the
//! distribution center early enough that every deadline on the route still
//! holds, and the set is no larger than the worker's `maxDP` — plus the
//! `null` strategy. [`StrategySpace`] materialises this once per center and
//! precomputes each worker's payoff for each of its strategies, which the
//! game-theoretic algorithms then consume.

use crate::arena;
use crate::config::VdpsConfig;
use crate::generator::{generate_c_vdps_budgeted, GenControl, GenerationStats, Vdps};
use crate::pool::TaskScope;
use fta_core::instance::{CenterView, DpAggregate, Instance};
use fta_core::payoff::payoff_from_parts;
use fta_core::WorkerId;
use std::sync::Arc;

/// Minimum `workers × pool entries` product before per-worker validation
/// is worth farming out to the worker pool.
const PAR_MIN_VALIDATION_WORK: usize = 1 << 12;

/// Crossover heuristic for the incremental conflict index: below this many
/// total (worker, strategy) slots the plain `mask & other_taken` scan is
/// already cache-resident and cheaper than maintaining per-slot conflict
/// counters, so no index is built and `GameContext` falls back to the mask
/// scan. At or above it, availability flips are propagated in O(affected
/// slots) through the inverted DP-bit → slot lists instead of re-deriving
/// availability from scratch per probe.
///
/// This is the compiled-in *default*; the effective value is the
/// installed [`crate::hotpath::HotpathProfile`]'s
/// `conflict_index_min_slots`, which the calibration bench derives from
/// measured scan/maintenance costs on the current machine.
pub const CONFLICT_INDEX_MIN_SLOTS: usize = 1 << 12;

/// Density half of the crossover heuristic: the conflict index is only
/// built when each delivery-point bit appears in at most this many slots
/// on average. An availability probe through the index (one `u32` load)
/// costs about the same as the `u128` mask AND it replaces, so the index's
/// value is bounded — while its maintenance cost on every strategy switch
/// is O(Σ posting-list length over the affected bits). In dense spaces
/// (few DPs shared by tens of thousands of strategy slots, the typical
/// shape of an FTA center at paper scale) that per-switch walk dwarfs any
/// probe savings and the mask scan wins outright, so the index is reserved
/// for sparse spaces where posting lists stay short.
///
/// Like [`CONFLICT_INDEX_MIN_SLOTS`], this is the compiled-in default
/// behind the installed [`crate::hotpath::HotpathProfile`].
pub const CONFLICT_INDEX_MAX_SLOTS_PER_BIT: usize = 64;

/// Immutable inverted index from delivery-point bit to the strategy slots
/// whose masks contain that bit, in CSR layout over the center-local bit
/// space. Built once per [`StrategySpace`] (when the space is large enough
/// to clear [`CONFLICT_INDEX_MIN_SLOTS`]); the *mutable* per-slot conflict
/// counters live in the game context that plays over the space.
#[derive(Debug, Clone, Default)]
pub struct ConflictSets {
    /// CSR row starts: bit `b`'s slots are
    /// `slots[starts[b] as usize..starts[b + 1] as usize]`.
    starts: Vec<u32>,
    /// Concatenated global slot ids, ascending within each bit row.
    slots: Vec<u32>,
}

impl ConflictSets {
    /// The global slot ids whose masks contain delivery-point bit `bit`.
    #[must_use]
    pub fn slots_of(&self, bit: u32) -> &[u32] {
        let b = bit as usize;
        &self.slots[self.starts[b] as usize..self.starts[b + 1] as usize]
    }

    /// Number of delivery-point bits indexed.
    #[must_use]
    pub fn n_bits(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Total number of (bit, slot) incidences.
    #[must_use]
    pub fn n_entries(&self) -> usize {
        self.slots.len()
    }

    fn build(n_bits: usize, slot_masks: &[u128]) -> Self {
        let mut counts = vec![0u32; n_bits + 1];
        for &mask in slot_masks {
            let mut m = mask;
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                counts[bit + 1] += 1;
                m &= m - 1;
            }
        }
        for b in 0..n_bits {
            counts[b + 1] += counts[b];
        }
        let starts = counts;
        let mut cursor = starts.clone();
        let mut slots = vec![0u32; *starts.last().unwrap_or(&0) as usize];
        for (slot, &mask) in slot_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                slots[cursor[bit] as usize] = slot as u32;
                cursor[bit] += 1;
                m &= m - 1;
            }
        }
        Self { starts, slots }
    }
}

/// The strategy spaces of all workers of one distribution center.
///
/// Per-worker strategy data lives in a structure-of-arrays layout: one
/// flat, contiguous vector per attribute (pool index, payoff, delivery-point
/// mask) with `offsets` delimiting each worker's *slot range*. Within a
/// worker's range the slots are ordered by ascending pool index — the
/// canonical iteration order every algorithm observes — and a second,
/// payoff-descending permutation (ties broken by ascending pool index) is
/// precomputed for the monotone best-response fast path. Both the
/// exhaustive fallback scan and the fast path therefore stream cache-linear
/// memory instead of chasing `pool[idx].mask` indirections.
#[derive(Debug, Clone)]
pub struct StrategySpace {
    /// The center view this space was built from.
    pub view: CenterView,
    /// The shared C-VDPS pool (deterministically ordered).
    pub pool: Vec<Vdps>,
    /// Travel time from each local worker to the distribution center.
    pub worker_to_dc: Vec<f64>,
    /// Slot ranges: worker `local` owns slots
    /// `offsets[local]..offsets[local + 1]` in every flat vector below.
    offsets: Vec<u32>,
    /// Flat pool indices, ascending within each worker's range.
    slot_pool: Vec<u32>,
    /// Flat payoffs, parallel to `slot_pool`.
    slot_payoffs: Vec<f64>,
    /// Flat delivery-point masks (`pool[slot_pool[s]].mask` memoised),
    /// parallel to `slot_pool`.
    slot_masks: Vec<u128>,
    /// Payoff-descending permutation of each worker's slots: pool indices,
    /// ties broken by ascending pool index.
    desc_pool: Vec<u32>,
    /// Payoffs parallel to `desc_pool` (non-increasing per worker).
    desc_payoffs: Vec<f64>,
    /// Masks parallel to `desc_pool`.
    desc_masks: Vec<u128>,
    /// Canonical slot ids parallel to `desc_pool` (maps a descending-scan
    /// position back to its conflict-counter slot).
    desc_slots: Vec<u32>,
    /// Inverted DP-bit → slot index; `None` below the
    /// [`CONFLICT_INDEX_MIN_SLOTS`] crossover.
    conflict_sets: Option<ConflictSets>,
    /// Statistics from the underlying C-VDPS generation run.
    pub gen_stats: GenerationStats,
}

impl StrategySpace {
    /// Generates the C-VDPS pool for `view` and validates it per worker.
    ///
    /// Convenience wrapper over [`StrategySpace::build_in`] that computes
    /// the delivery-point aggregates itself and runs sequentially.
    #[must_use]
    pub fn build(instance: &Instance, view: &CenterView, config: &VdpsConfig) -> Self {
        let aggregates = instance.dp_aggregates();
        Self::build_in(instance, &aggregates, view.clone(), config, None)
    }

    /// Generates the C-VDPS pool for `view` and validates it per worker,
    /// re-using pre-computed delivery-point `aggregates` (computed once per
    /// *instance*, not once per center) and optionally running generation
    /// and validation on an active worker-pool scope.
    ///
    /// Takes `view` by value: the solver hands each center job its owned
    /// view, so no clone happens on this path.
    #[must_use]
    pub fn build_in(
        instance: &Instance,
        aggregates: &[DpAggregate],
        view: CenterView,
        config: &VdpsConfig,
        scope: Option<&TaskScope<'_>>,
    ) -> Self {
        Self::build_budgeted(instance, aggregates, view, config, scope, GenControl::NONE)
    }

    /// [`StrategySpace::build_in`] with a [`GenControl`] threaded into the
    /// C-VDPS generation: when the control trips, the pool is truncated at
    /// a layer boundary and validation proceeds over the smaller pool.
    /// `GenControl::NONE` is bit-identical to [`StrategySpace::build_in`].
    #[must_use]
    pub fn build_budgeted(
        instance: &Instance,
        aggregates: &[DpAggregate],
        view: CenterView,
        config: &VdpsConfig,
        scope: Option<&TaskScope<'_>>,
        control: GenControl<'_>,
    ) -> Self {
        let (pool, gen_stats) =
            generate_c_vdps_budgeted(instance, aggregates, &view, config, scope, control);
        Self::from_pool_in(instance, view, pool, gen_stats, scope)
    }

    /// Validates a pre-generated pool per worker (used by tests and by the
    /// experiment harness when re-using one pool for several sweeps).
    #[must_use]
    pub fn from_pool(
        instance: &Instance,
        view: &CenterView,
        pool: Vec<Vdps>,
        gen_stats: GenerationStats,
    ) -> Self {
        Self::from_pool_in(instance, view.clone(), pool, gen_stats, None)
    }

    /// Validates a pre-generated pool per worker, optionally fanning the
    /// per-worker validation/payoff precompute out over an active
    /// worker-pool scope. Results are identical to the sequential path:
    /// workers are processed in index chunks and reassembled in order.
    #[must_use]
    pub fn from_pool_in(
        instance: &Instance,
        view: CenterView,
        pool: Vec<Vdps>,
        gen_stats: GenerationStats,
        scope: Option<&TaskScope<'_>>,
    ) -> Self {
        let _span = fta_obs::span_center("vdps.strategy_space", view.center.index() as u32);
        let dc = instance.centers[view.center.index()].location;
        let worker_to_dc: Vec<f64> = view
            .workers
            .iter()
            .map(|&w| instance.travel_time(instance.workers[w.index()].location, dc))
            .collect();
        let n_workers = view.workers.len();

        let parallel = scope.is_some_and(|s| s.threads() > 1)
            && n_workers > 1
            && n_workers.saturating_mul(pool.len()) >= PAR_MIN_VALIDATION_WORK;

        let per_worker = if parallel {
            let scope = scope.expect("parallel implies an active scope");
            // Per-worker parameters are tiny copies; the columnar pool
            // extract is shared read-only via `Arc` so chunk jobs satisfy
            // the scope's `'env` bound without cloning any `Vdps` (the
            // pool itself never leaves this thread).
            let params: Vec<(usize, f64)> = view
                .workers
                .iter()
                .enumerate()
                .map(|(local, &w)| (instance.workers[w.index()].max_dp, worker_to_dc[local]))
                .collect();
            let soa = Arc::new(PoolSoa::extract(&pool));
            let chunk = n_workers.div_ceil(scope.threads() * 2).max(1);
            let jobs: Vec<_> = params
                .chunks(chunk)
                .map(|chunk_params| {
                    let soa = Arc::clone(&soa);
                    let chunk_params = chunk_params.to_vec();
                    move |_: &TaskScope<'_>| {
                        chunk_params
                            .into_iter()
                            .map(|(max_dp, to_dc)| {
                                let mut v = Vec::new();
                                let mut p = Vec::new();
                                validate_worker(&soa, max_dp, to_dc, &mut v, &mut p);
                                (v, p)
                            })
                            .collect::<Vec<_>>()
                    }
                })
                .collect();
            let per_worker: Vec<(Vec<u32>, Vec<f64>)> =
                scope.map(jobs).into_iter().flatten().collect();
            if let Ok(soa) = Arc::try_unwrap(soa) {
                soa.recycle();
            }
            per_worker
        } else {
            let soa = PoolSoa::extract(&pool);
            let per_worker: Vec<(Vec<u32>, Vec<f64>)> = view
                .workers
                .iter()
                .enumerate()
                .map(|(local, &w)| {
                    let (mut v, mut p) = arena::with(|a| (a.indices.take(0), a.floats.take(0)));
                    validate_worker(
                        &soa,
                        instance.workers[w.index()].max_dp,
                        worker_to_dc[local],
                        &mut v,
                        &mut p,
                    );
                    (v, p)
                })
                .collect();
            soa.recycle();
            per_worker
        };
        let space = Self::assemble(view, pool, worker_to_dc, &per_worker, gen_stats);
        if !parallel {
            // Sequential validation took its scratch from this thread's
            // arena; hand it back so the next generation allocates nothing.
            // Parallel chunk jobs allocated on pool threads — parking their
            // buffers here would grow the free lists without bound, so
            // those simply drop.
            arena::with(|a| {
                for (v, p) in per_worker {
                    a.indices.put(v);
                    a.floats.put(p);
                }
            });
        }
        space
    }

    /// Rebuilds the space around a delta-updated `pool`, reusing each
    /// worker's cached (validity, payoff) pair for every entry the delta
    /// update carried over verbatim (`provenance[j] = Some(old_index)`,
    /// see [`crate::delta_update_with_provenance`]); only entries with a
    /// rebuilt [`Route`] payload go through per-worker validation again.
    ///
    /// Bit-identical to [`StrategySpace::from_pool_in`] on the same
    /// `(instance, view, pool)` **provided the worker side is unchanged**
    /// from the space `prev` was captured from: same workers in the same
    /// local order, each with bitwise-equal location, `maxDP`, and travel
    /// time to the (unchanged) center. The caller asserts this — the
    /// typical caller is the incremental solver, which compares worker
    /// identity bits before taking this path and falls back to
    /// [`StrategySpace::from_pool_in`] otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `provenance` is not parallel to `pool` or `prev` was
    /// captured over a different worker population size.
    #[must_use]
    pub fn from_pool_delta(
        instance: &Instance,
        view: CenterView,
        pool: Vec<Vdps>,
        provenance: &[Option<u32>],
        prev: &SlotCache,
        gen_stats: GenerationStats,
    ) -> Self {
        let _span = fta_obs::span_center("vdps.strategy_space_delta", view.center.index() as u32);
        assert_eq!(
            provenance.len(),
            pool.len(),
            "provenance not parallel to pool"
        );
        assert_eq!(
            prev.per_worker.len(),
            view.workers.len(),
            "slot cache captured over a different worker population"
        );
        let dc = instance.centers[view.center.index()].location;
        let worker_to_dc: Vec<f64> = view
            .workers
            .iter()
            .map(|&w| instance.travel_time(instance.workers[w.index()].location, dc))
            .collect();

        // Dense (validity, payoff) lookup over the *previous* pool,
        // refilled per worker and wiped through the same valid list so
        // the reset is O(previous valid slots), not O(previous pool).
        // All scratch — the dense arrays, the columnar pool extract, and
        // the per-worker output buffers — comes from the generation arena,
        // so steady-state re-solves under churn revalidate slots without
        // touching the allocator.
        let (mut dense_valid, mut dense_payoff) =
            arena::with(|a| (a.flags.take(prev.pool_len), a.floats.take(prev.pool_len)));
        dense_valid.resize(prev.pool_len, false);
        dense_payoff.resize(prev.pool_len, 0.0);
        let soa = PoolSoa::extract(&pool);
        let mut reused_slots = 0u64;
        let per_worker: Vec<(Vec<u32>, Vec<f64>)> = view
            .workers
            .iter()
            .enumerate()
            .map(|(local, &w)| {
                let (prev_valid, prev_payoffs) = &prev.per_worker[local];
                for (&idx, &payoff) in prev_valid.iter().zip(prev_payoffs) {
                    dense_valid[idx as usize] = true;
                    dense_payoff[idx as usize] = payoff;
                }
                let max_dp = instance.workers[w.index()].max_dp;
                let to_dc = worker_to_dc[local];
                let (mut v, mut p) = arena::with(|a| (a.indices.take(0), a.floats.take(0)));
                for (j, &prov) in provenance.iter().enumerate() {
                    match prov {
                        Some(old) => {
                            // Verbatim-reused entry: same route payload,
                            // same worker parameters — the cached verdict
                            // and payoff are bit-identical to recomputing.
                            if dense_valid[old as usize] {
                                v.push(j as u32);
                                p.push(dense_payoff[old as usize]);
                                reused_slots += 1;
                            }
                        }
                        None => {
                            if soa.lens[j] as usize <= max_dp && to_dc <= soa.slacks[j] {
                                v.push(j as u32);
                                p.push(payoff_from_parts(soa.rewards[j], soa.travels[j], to_dc));
                            }
                        }
                    }
                }
                for &idx in prev_valid.iter() {
                    dense_valid[idx as usize] = false;
                }
                (v, p)
            })
            .collect();
        soa.recycle();
        arena::with(|a| {
            a.flags.put(dense_valid);
            a.floats.put(dense_payoff);
        });
        if fta_obs::enabled() {
            fta_obs::counter("vdps.slots_reused", reused_slots);
        }
        let space = Self::assemble(view, pool, worker_to_dc, &per_worker, gen_stats);
        arena::with(|a| {
            for (v, p) in per_worker {
                a.indices.put(v);
                a.floats.put(p);
            }
        });
        space
    }

    /// Assembles the flat SoA layout from per-worker validation results:
    /// ascending-pool-index slots per worker plus the payoff-descending
    /// permutation for the monotone fast path.
    fn assemble(
        view: CenterView,
        pool: Vec<Vdps>,
        worker_to_dc: Vec<f64>,
        per_worker: &[(Vec<u32>, Vec<f64>)],
        gen_stats: GenerationStats,
    ) -> Self {
        let n_workers = view.workers.len();
        let total: usize = per_worker.iter().map(|(v, _)| v.len()).sum();
        let mut offsets = Vec::with_capacity(n_workers + 1);
        let mut slot_pool = Vec::with_capacity(total);
        let mut slot_payoffs = Vec::with_capacity(total);
        let mut slot_masks = Vec::with_capacity(total);
        let mut desc_pool = Vec::with_capacity(total);
        let mut desc_payoffs = Vec::with_capacity(total);
        let mut desc_masks = Vec::with_capacity(total);
        let mut desc_slots = Vec::with_capacity(total);
        offsets.push(0u32);
        let mut order: Vec<u32> = arena::with(|a| a.indices.take(0));
        for (v, p) in per_worker {
            let base = slot_pool.len();
            slot_pool.extend_from_slice(v);
            slot_payoffs.extend_from_slice(p);
            slot_masks.extend(v.iter().map(|&idx| pool[idx as usize].mask));
            // Payoff-descending permutation; the base order is ascending
            // pool index, so a stable sort by descending payoff breaks
            // payoff ties by ascending pool index.
            order.clear();
            order.extend(0..v.len() as u32);
            order.sort_by(|&a, &b| p[b as usize].total_cmp(&p[a as usize]));
            desc_pool.extend(order.iter().map(|&i| v[i as usize]));
            desc_payoffs.extend(order.iter().map(|&i| p[i as usize]));
            desc_masks.extend(order.iter().map(|&i| slot_masks[base + i as usize]));
            desc_slots.extend(order.iter().map(|&i| (base + i as usize) as u32));
            offsets.push(slot_pool.len() as u32);
        }
        arena::with(|a| a.indices.put(order));
        // Two-sided crossover: the index must be big enough to beat the
        // cache-resident mask scan, yet sparse enough that per-switch
        // maintenance (a walk of every affected bit's posting list) stays
        // cheap relative to the probes it accelerates. Thresholds come
        // from the installed hotpath profile; its defaults are the
        // [`CONFLICT_INDEX_MIN_SLOTS`] / [`CONFLICT_INDEX_MAX_SLOTS_PER_BIT`]
        // constants, so an uncalibrated process behaves exactly as before.
        let profile = crate::hotpath::current();
        let entries: usize = slot_masks.iter().map(|m| m.count_ones() as usize).sum();
        let sparse = entries <= view.dps.len().max(1) * profile.conflict_index_max_slots_per_bit;
        let conflict_sets = (total >= profile.conflict_index_min_slots && sparse)
            .then(|| ConflictSets::build(view.dps.len(), &slot_masks));
        Self {
            view,
            pool,
            worker_to_dc,
            offsets,
            slot_pool,
            slot_payoffs,
            slot_masks,
            desc_pool,
            desc_payoffs,
            desc_masks,
            desc_slots,
            conflict_sets,
            gen_stats,
        }
    }

    /// Number of workers in this center's population.
    #[must_use]
    pub fn n_workers(&self) -> usize {
        self.view.workers.len()
    }

    /// The global id of the `local`-th worker.
    #[must_use]
    pub fn worker_id(&self, local: usize) -> WorkerId {
        self.view.workers[local]
    }

    /// The slot range (indices into the flat vectors) owned by the
    /// `local`-th worker.
    #[must_use]
    pub fn slot_range(&self, local: usize) -> std::ops::Range<usize> {
        self.offsets[local] as usize..self.offsets[local + 1] as usize
    }

    /// Total number of (worker, strategy) slots across all workers.
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.slot_pool.len()
    }

    /// The pool indices of the `local`-th worker's valid strategies,
    /// ascending (the canonical iteration order).
    #[must_use]
    pub fn valid_of(&self, local: usize) -> &[u32] {
        &self.slot_pool[self.slot_range(local)]
    }

    /// Payoffs parallel to [`StrategySpace::valid_of`].
    #[must_use]
    pub fn payoffs_of(&self, local: usize) -> &[f64] {
        &self.slot_payoffs[self.slot_range(local)]
    }

    /// Delivery-point masks parallel to [`StrategySpace::valid_of`].
    #[must_use]
    pub fn masks_of(&self, local: usize) -> &[u128] {
        &self.slot_masks[self.slot_range(local)]
    }

    /// The full flat mask vector (all workers' slots, ascending pool index
    /// within each worker's [`StrategySpace::slot_range`]).
    #[must_use]
    pub fn slot_masks(&self) -> &[u128] {
        &self.slot_masks
    }

    /// The full flat pool-index vector, parallel to
    /// [`StrategySpace::slot_masks`].
    #[must_use]
    pub fn slot_pool(&self) -> &[u32] {
        &self.slot_pool
    }

    /// Pool indices of the `local`-th worker's valid strategies in
    /// payoff-descending order, ties broken by ascending pool index (the
    /// monotone fast-path scan order).
    #[must_use]
    pub fn desc_pool_of(&self, local: usize) -> &[u32] {
        &self.desc_pool[self.slot_range(local)]
    }

    /// Payoffs parallel to [`StrategySpace::desc_pool_of`]
    /// (non-increasing).
    #[must_use]
    pub fn desc_payoffs_of(&self, local: usize) -> &[f64] {
        &self.desc_payoffs[self.slot_range(local)]
    }

    /// Global (canonical, ascending-order) slot ids parallel to
    /// [`StrategySpace::desc_pool_of`]: the conflict-counter slot backing
    /// each descending-scan position.
    #[must_use]
    pub fn desc_slots_of(&self, local: usize) -> &[u32] {
        &self.desc_slots[self.slot_range(local)]
    }

    /// The inverted DP-bit → slot index, present when the space is large
    /// enough that incremental conflict maintenance beats the mask scan
    /// (the [`CONFLICT_INDEX_MIN_SLOTS`] crossover heuristic).
    #[must_use]
    pub fn conflict_sets(&self) -> Option<&ConflictSets> {
        self.conflict_sets.as_ref()
    }

    /// Delivery-point masks parallel to [`StrategySpace::desc_pool_of`].
    #[must_use]
    pub fn desc_masks_of(&self, local: usize) -> &[u128] {
        &self.desc_masks[self.slot_range(local)]
    }

    /// Number of non-null strategies available to the `local`-th worker.
    #[must_use]
    pub fn strategy_count(&self, local: usize) -> usize {
        (self.offsets[local + 1] - self.offsets[local]) as usize
    }

    /// The largest strategy-set size across workers (`|maxVDPS|` in the
    /// paper's complexity analyses).
    #[must_use]
    pub fn max_strategies(&self) -> usize {
        (0..self.n_workers())
            .map(|local| self.strategy_count(local))
            .max()
            .unwrap_or(0)
    }

    /// The payoff the `local`-th worker obtains from pool entry
    /// `pool_idx`, if that strategy is valid for the worker.
    #[must_use]
    pub fn payoff_of(&self, local: usize, pool_idx: u32) -> Option<f64> {
        let valid = self.valid_of(local);
        let pos = valid.binary_search(&pool_idx).ok()?;
        Some(self.payoffs_of(local)[pos])
    }

    /// The mask of the `local`-th worker's strategy at `pool_idx`, looked
    /// up through the flat slot layout (avoids the `pool` indirection).
    #[must_use]
    pub fn mask_of_pool(&self, pool_idx: u32) -> u128 {
        self.pool[pool_idx as usize].mask
    }
}

/// Per-worker validation results captured from a built [`StrategySpace`],
/// keyed by the pool indices of the space they were captured from. Feeds
/// [`StrategySpace::from_pool_delta`], which maps them through a delta
/// update's provenance so verbatim-reused pool entries skip per-worker
/// revalidation entirely.
#[derive(Debug, Clone, Default)]
pub struct SlotCache {
    /// Length of the pool the cached space was built over (the index
    /// space `per_worker`'s valid lists live in).
    pool_len: usize,
    /// Per local worker: valid pool indices (ascending) and payoffs,
    /// parallel.
    per_worker: Vec<(Vec<u32>, Vec<f64>)>,
}

impl SlotCache {
    /// Captures the per-worker slot data of `space`.
    #[must_use]
    pub fn capture(space: &StrategySpace) -> Self {
        Self {
            pool_len: space.pool.len(),
            per_worker: (0..space.n_workers())
                .map(|local| {
                    (
                        space.valid_of(local).to_vec(),
                        space.payoffs_of(local).to_vec(),
                    )
                })
                .collect(),
        }
    }

    /// Number of local workers the cache covers.
    #[must_use]
    pub fn n_workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Total cached (worker, strategy) slots.
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.per_worker.iter().map(|(v, _)| v.len()).sum()
    }
}

/// Columnar (struct-of-arrays) copy of the pool fields per-worker
/// validation reads: entry length, route slack, total reward, and travel
/// time from the distribution center. Extracted once per space build, so
/// the O(workers × pool) validation pass streams four flat arrays instead
/// of dereferencing one heap `Route` per entry per worker. The arrays are
/// borrowed from the generation arena and returned via
/// [`PoolSoa::recycle`] once every worker is validated.
struct PoolSoa {
    lens: Vec<u32>,
    slacks: Vec<f64>,
    rewards: Vec<f64>,
    travels: Vec<f64>,
}

impl PoolSoa {
    fn extract(pool: &[Vdps]) -> Self {
        let n = pool.len();
        let (lens, slacks, rewards, travels) = arena::with(|a| {
            (
                a.indices.take(n),
                a.floats.take(n),
                a.floats.take(n),
                a.floats.take(n),
            )
        });
        let mut soa = Self {
            lens,
            slacks,
            rewards,
            travels,
        };
        for vdps in pool {
            soa.lens.push(vdps.len() as u32);
            soa.slacks.push(vdps.route.slack());
            soa.rewards.push(vdps.route.total_reward());
            soa.travels.push(vdps.route.travel_from_dc());
        }
        soa
    }

    fn recycle(self) {
        arena::with(|a| {
            a.indices.put(self.lens);
            a.floats.put(self.slacks);
            a.floats.put(self.rewards);
            a.floats.put(self.travels);
        });
    }
}

/// One worker's validation pass over the shared pool: which strategies the
/// worker can execute within every deadline (given its travel time to the
/// center and its `maxDP`), and the payoff of each, appended to `v`/`p`.
///
/// Scans the columnar [`PoolSoa`] — `lens[idx] <= max_dp` and
/// `to_dc <= slacks[idx]` are exactly `Vdps::len` and
/// [`fta_core::route::Route::is_valid_for_travel`] over the extracted
/// scalars, and [`payoff_from_parts`] is the same expression as
/// [`fta_core::payoff::payoff_for_travel`] — so the results are
/// bit-identical to walking the `Vdps` entries themselves.
fn validate_worker(soa: &PoolSoa, max_dp: usize, to_dc: f64, v: &mut Vec<u32>, p: &mut Vec<f64>) {
    for idx in 0..soa.lens.len() {
        if soa.lens[idx] as usize <= max_dp && to_dc <= soa.slacks[idx] {
            v.push(idx as u32);
            p.push(payoff_from_parts(soa.rewards[idx], soa.travels[idx], to_dc));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use fta_core::geometry::Point;
    use fta_core::ids::{CenterId, DeliveryPointId, TaskId};

    /// dc at origin; two dps at (1,0) and (2,0), expiries 2.5 and 100;
    /// worker 0 adjacent to dc, worker 1 far away; speed 1.
    fn instance() -> Instance {
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![
                Worker {
                    id: WorkerId(0),
                    location: Point::new(0.5, 0.0),
                    max_dp: 2,
                    center: CenterId(0),
                },
                Worker {
                    id: WorkerId(1),
                    location: Point::new(-5.0, 0.0),
                    max_dp: 1,
                    center: CenterId(0),
                },
            ],
            vec![
                DeliveryPoint {
                    id: DeliveryPointId(0),
                    location: Point::new(1.0, 0.0),
                    center: CenterId(0),
                },
                DeliveryPoint {
                    id: DeliveryPointId(1),
                    location: Point::new(2.0, 0.0),
                    center: CenterId(0),
                },
            ],
            vec![
                SpatialTask {
                    id: TaskId(0),
                    delivery_point: DeliveryPointId(0),
                    expiry: 2.5,
                    reward: 1.0,
                },
                SpatialTask {
                    id: TaskId(1),
                    delivery_point: DeliveryPointId(1),
                    expiry: 100.0,
                    reward: 3.0,
                },
            ],
            1.0,
        )
        .unwrap()
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn close_worker_sees_all_strategies() {
        let inst = instance();
        let s = space(&inst);
        // Pool: {dp0}, {dp1}, {dp0,dp1} (all feasible from dc).
        assert_eq!(s.pool.len(), 3);
        // Worker 0 (0.5 from dc, maxDP 2): all three valid.
        assert_eq!(s.strategy_count(0), 3);
    }

    #[test]
    fn far_worker_loses_deadline_bound_strategies() {
        let inst = instance();
        let s = space(&inst);
        // Worker 1 is 5.0 from dc; {dp0} has slack 2.5-1.0 = 1.5 < 5 →
        // invalid; {dp1} has slack 98 → valid; {dp0,dp1} exceeds maxDP=1.
        assert_eq!(s.strategy_count(1), 1);
        let idx = s.valid_of(1)[0];
        assert_eq!(s.pool[idx as usize].mask, 0b10);
        assert_eq!(s.masks_of(1)[0], 0b10);
    }

    #[test]
    fn payoffs_match_direct_computation() {
        let inst = instance();
        let s = space(&inst);
        // Worker 0 taking {dp1}: reward 3, travel 0.5 + 2.0 = 2.5 → 1.2.
        let idx = s
            .valid_of(0)
            .iter()
            .position(|&i| s.pool[i as usize].mask == 0b10)
            .unwrap();
        assert!((s.payoffs_of(0)[idx] - 1.2).abs() < 1e-12);
        assert_eq!(
            s.payoff_of(0, s.valid_of(0)[idx]),
            Some(s.payoffs_of(0)[idx])
        );
    }

    #[test]
    fn payoff_of_rejects_invalid_strategy() {
        let inst = instance();
        let s = space(&inst);
        // Worker 1 cannot take pool entry for {dp0} (mask 0b01).
        let dp0_idx = s.pool.iter().position(|v| v.mask == 0b01).unwrap() as u32;
        assert_eq!(s.payoff_of(1, dp0_idx), None);
    }

    #[test]
    fn max_strategies_reports_largest_set() {
        let inst = instance();
        let s = space(&inst);
        assert_eq!(s.max_strategies(), 3);
        assert_eq!(s.n_workers(), 2);
        assert_eq!(s.worker_id(1), WorkerId(1));
    }

    #[test]
    fn soa_layout_is_consistent_and_desc_is_sorted() {
        let inst = instance();
        let s = space(&inst);
        assert_eq!(s.total_slots(), s.strategy_count(0) + s.strategy_count(1));
        for local in 0..s.n_workers() {
            let valid = s.valid_of(local);
            let payoffs = s.payoffs_of(local);
            let masks = s.masks_of(local);
            assert_eq!(valid.len(), s.strategy_count(local));
            assert_eq!(payoffs.len(), valid.len());
            assert_eq!(masks.len(), valid.len());
            // Ascending pool index in the canonical order; masks memoised.
            assert!(valid.windows(2).all(|w| w[0] < w[1]));
            for (pos, &idx) in valid.iter().enumerate() {
                assert_eq!(masks[pos], s.pool[idx as usize].mask);
            }
            // Descending permutation: same multiset, payoff-descending,
            // payoff ties broken by ascending pool index.
            let dp = s.desc_pool_of(local);
            let dpay = s.desc_payoffs_of(local);
            let dmask = s.desc_masks_of(local);
            let mut sorted: Vec<u32> = dp.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, valid);
            for w in 0..dp.len().saturating_sub(1) {
                assert!(
                    dpay[w] > dpay[w + 1] || (dpay[w] == dpay[w + 1] && dp[w] < dp[w + 1]),
                    "desc order violated at {w}"
                );
            }
            for (pos, &idx) in dp.iter().enumerate() {
                assert_eq!(dmask[pos], s.pool[idx as usize].mask);
                assert_eq!(s.payoff_of(local, idx), Some(dpay[pos]));
            }
        }
    }
}

//! The flat-frontier C-VDPS engine: a cache-friendly, optionally parallel
//! rewrite of Algorithm 1's subset dynamic program.
//!
//! The original engine ([`crate::generator::generate_c_vdps_hashmap`])
//! keeps each DP layer in a `HashMap<(u128, u8), State>`: every candidate
//! extension pays a SipHash of a 17-byte key plus entry-API churn, the
//! inner loop recomputes `locs[i].distance(locs[j])` (a `hypot`) per
//! extension, and a second full pass over all layers builds a
//! `best_per_mask` HashMap before routes are reconstructed. This module
//! removes all three costs while producing a **bit-identical pool** (same
//! masks, same routes, same size-then-mask ordering) and identical work
//! counters:
//!
//! * **Precomputed travel-time matrix.** An `n × n` row-major matrix of
//!   `d(dp_i, dp_j) / speed` (plus per-point expiry and from-center
//!   arrays) is built once; the inner loop is then one add, one compare,
//!   and a table relax. Since the matrix stores exactly the expression
//!   the hash-map engine evaluates, arrivals are bit-identical.
//!
//! * **Mask-bucketed flat frontier.** A layer of subset size `L` is a
//!   sorted `Vec<u128>` of masks plus a dense slot array with `L` slots
//!   per mask — slot `rank(mask, j)` (the popcount of `mask` below bit
//!   `j`, via the compile-time prefix-mask table of [`crate::dedup`])
//!   holds the minimal arrival ending at member `j` and its `pre`
//!   pointer. Deduplication during expansion goes through the
//!   limb-split, batched-probe [`DedupTable`] — no SipHash, no per-state
//!   allocation. The per-mask best ending (the old second-pass
//!   `best_per_mask` map) falls out of the slot array for free during
//!   emission.
//!
//! * **Generation arenas.** Frontier mask/slot storage and every dedup
//!   table buffer are taken from the per-thread [`crate::arena`]
//!   recycler and returned when the generation ends, so steady-state
//!   sequential generation performs no heap allocation on the DP side —
//!   only the emitted `Route` payloads (which outlive the generation
//!   inside `Arc`s) are individually allocated. On the pooled path,
//!   recycling is best-effort: buffers return to the arena of whichever
//!   pool thread last owned them.
//!
//! * **Trusted-offsets emission.** The DP's arrival at `(mask, j)` *is*
//!   the route's center-origin arrival offset at the member `j`, so the
//!   backwalk collects arrivals alongside the visiting order and emits
//!   through [`Route::from_trusted_offsets`] — no per-leg `hypot`
//!   re-derivation, bit-identical by construction (and asserted against
//!   a full [`Route::build`] in debug builds). The rebuild path stays
//!   selectable via [`crate::hotpath::EmissionKernel`] as the measured
//!   reference.
//!
//! * **Intra-center parallelism.** On a [`crate::pool::TaskScope`] with
//!   more than one thread, each layer's frontier is expanded in
//!   contiguous group chunks; every chunk fills a private shard table,
//!   shards are sorted by mask, and mask-range partitions are merged by
//!   parallel k-way merge jobs with min-relaxation. Because minimum (with
//!   the deterministic `(arrival, parent)` tie-break) is associative and
//!   commutative, the merged frontier is independent of chunking and
//!   thread count — pooled and sequential runs produce the same pool.
//!   The go-parallel floor and chunks-per-thread come from the installed
//!   [`crate::hotpath::HotpathProfile`].
//!
//! Ties deserve a note: on *exactly* equal arrivals the hash-map engine
//! keeps whichever predecessor its nondeterministic iteration order saw
//! first, while this engine always keeps the smallest predecessor index.
//! Both choices yield the same travel time; generated instances
//! (continuous coordinates) make exact ties measure-zero.

use crate::arena;
use crate::config::VdpsConfig;
use crate::dedup::{rank, DedupTable, Slot, BIT, EMPTY};
use crate::generator::{GenControl, GenerationStats, Vdps};
use crate::grid::NeighborIndex;
use crate::hotpath::{EmissionKernel, HotpathProfile};
use crate::pool::TaskScope;
use fta_core::instance::{CenterView, DpAggregate, Instance};
use fta_core::route::Route;
use fta_core::DeliveryPointId;
use std::sync::Arc;
use std::time::Instant;

/// One finished DP layer: all feasible subsets of size `size`, sorted by
/// mask, with `size` slots per mask.
struct Frontier {
    size: usize,
    masks: Vec<u128>,
    slots: Vec<Slot>,
}

impl Frontier {
    fn lookup(&self, mask: u128, j: usize) -> Slot {
        let group = self
            .masks
            .binary_search(&mask)
            .expect("parent pointers only reference existing masks");
        self.slots[group * self.size + rank(mask, j)]
    }

    fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.arrival.is_finite()).count()
    }

    /// Returns the frontier's storage to the calling thread's arena.
    fn recycle(self) {
        arena::with(|a| {
            a.masks.put(self.masks);
            a.slots.put(self.slots);
        });
    }
}

/// Fully owned per-center context shared (via `Arc`) with expansion
/// chunks, so parallel jobs never borrow generator-local state.
struct Ctx {
    n: usize,
    /// Row-major `n × n` travel-time matrix: `tt[last * n + j]`.
    tt: Vec<f64>,
    expiry: Vec<f64>,
    neighbors: Option<NeighborIndex>,
    full_mask: u128,
}

/// Work counters produced by one expansion chunk (summed deterministically).
///
/// `probes` and `rehashes` are observability-only diagnostics (dedup-table
/// probe steps and capacity doublings): they depend on sharding and
/// therefore on chunking/thread count, so they are published to the
/// telemetry recorder but deliberately kept out of [`GenerationStats`],
/// whose work counters are engine- and thread-invariant.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkCounters {
    extensions_tried: usize,
    pruned_by_distance: usize,
    pruned_by_deadline: usize,
    probes: u64,
    rehashes: u64,
}

impl ChunkCounters {
    fn add(&mut self, other: &ChunkCounters) {
        self.extensions_tried += other.extensions_tried;
        self.pruned_by_distance += other.pruned_by_distance;
        self.pruned_by_deadline += other.pruned_by_deadline;
        self.probes += other.probes;
        self.rehashes += other.rehashes;
    }

    fn absorb_table(&mut self, table: &DedupTable) {
        self.probes += table.probes();
        self.rehashes += table.rehashes();
    }
}

/// Expands the source groups `range` of `layer` into `table`, applying
/// deadline and ε pruning exactly as the hash-map engine does.
fn expand_range(
    ctx: &Ctx,
    layer: &Frontier,
    range: std::ops::Range<usize>,
    table: &mut DedupTable,
    counters: &mut ChunkCounters,
) {
    let n = ctx.n;
    for g in range {
        let mask = layer.masks[g];
        let base = g * layer.size;
        // Iterate the mask's members in ascending bit order; the slot
        // rank advances in lockstep.
        let mut members = mask;
        let mut slot_idx = base;
        while members != 0 {
            let last = members.trailing_zeros() as usize;
            members &= members - 1;
            let state = layer.slots[slot_idx];
            slot_idx += 1;
            if !state.arrival.is_finite() {
                continue;
            }
            let tt_row = &ctx.tt[last * n..(last + 1) * n];
            match &ctx.neighbors {
                Some(index) => {
                    let free = n - mask.count_ones() as usize;
                    let mut considered = 0usize;
                    for &j in index.neighbors(last) {
                        let j = usize::from(j);
                        if mask & BIT[j] != 0 {
                            continue;
                        }
                        considered += 1;
                        let arrival = state.arrival + tt_row[j];
                        if arrival > ctx.expiry[j] {
                            counters.pruned_by_deadline += 1;
                            continue;
                        }
                        table.relax(
                            mask | BIT[j],
                            rank(mask, j),
                            Slot {
                                arrival,
                                parent: last as u8,
                            },
                        );
                    }
                    counters.extensions_tried += free;
                    counters.pruned_by_distance += free - considered;
                }
                None => {
                    let mut rem = ctx.full_mask & !mask;
                    while rem != 0 {
                        let j = rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        counters.extensions_tried += 1;
                        let arrival = state.arrival + tt_row[j];
                        if arrival > ctx.expiry[j] {
                            counters.pruned_by_deadline += 1;
                            continue;
                        }
                        table.relax(
                            mask | BIT[j],
                            rank(mask, j),
                            Slot {
                                arrival,
                                parent: last as u8,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// A sorted expansion shard: `(masks ascending, slots)`.
type Shard = (Vec<u128>, Vec<Slot>);

/// Merges the `[lo, hi)` mask range of every shard by k-way merge with
/// min-relaxation, returning the merged groups (sorted) and the number of
/// cross-shard mask collisions folded.
fn merge_partition(shards: &[Shard], size: usize, lo: u128, hi: u128) -> (Shard, usize) {
    let ranges: Vec<(usize, usize)> = shards
        .iter()
        .map(|(masks, _)| {
            (
                masks.partition_point(|&m| m < lo),
                masks.partition_point(|&m| m < hi),
            )
        })
        .collect();
    let mut heads: Vec<usize> = ranges.iter().map(|&(start, _)| start).collect();
    let expected: usize = ranges.iter().map(|&(s, e)| e - s).sum();
    let mut out_masks: Vec<u128> = Vec::with_capacity(expected);
    let mut out_slots: Vec<Slot> = Vec::with_capacity(expected * size);
    let mut collisions = 0usize;
    loop {
        // Smallest mask among the shard heads still in range.
        let mut min_mask = u128::MAX;
        for (s, shard) in shards.iter().enumerate() {
            if heads[s] < ranges[s].1 {
                min_mask = min_mask.min(shard.0[heads[s]]);
            }
        }
        if min_mask == u128::MAX {
            break;
        }
        let group_base = out_slots.len();
        out_masks.push(min_mask);
        out_slots.resize(group_base + size, EMPTY);
        let mut occurrences = 0usize;
        for (s, shard) in shards.iter().enumerate() {
            if heads[s] < ranges[s].1 && shard.0[heads[s]] == min_mask {
                let src = heads[s] * size;
                for k in 0..size {
                    let cand = shard.1[src + k];
                    if cand.beats(&out_slots[group_base + k]) {
                        out_slots[group_base + k] = cand;
                    }
                }
                heads[s] += 1;
                occurrences += 1;
            }
        }
        collisions += occurrences - 1;
    }
    ((out_masks, out_slots), collisions)
}

/// Deterministic mask-range partition pivots: sample every shard's sorted
/// mask list, sort the samples, and pick `parts - 1` evenly spaced pivots.
fn partition_pivots(shards: &[Shard], parts: usize) -> Vec<u128> {
    let mut samples: Vec<u128> = Vec::new();
    for (masks, _) in shards {
        let step = (masks.len() / (parts * 8).max(1)).max(1);
        samples.extend(masks.iter().step_by(step).copied());
    }
    samples.sort_unstable();
    samples.dedup();
    let mut pivots = Vec::with_capacity(parts.saturating_sub(1));
    for p in 1..parts {
        let idx = p * samples.len() / parts;
        if let Some(&pivot) = samples.get(idx) {
            pivots.push(pivot);
        }
    }
    pivots.dedup();
    pivots
}

/// Builds the next layer from `layer` on the pool scope: chunked
/// expansion into per-thread shard tables, then mask-partitioned merge.
fn next_layer_pooled(
    ctx: &Arc<Ctx>,
    layer: Arc<Frontier>,
    out_size: usize,
    scope: &TaskScope<'_>,
    chunks_per_thread: usize,
    stats: &mut GenerationStats,
) -> Frontier {
    let groups = layer.masks.len();
    let threads = scope.threads();
    let chunk_size = (groups / (threads * chunks_per_thread)).max(32);
    let chunk_count = groups.div_ceil(chunk_size);
    let expected_per_chunk = (chunk_size * out_size).min(1 << 16);

    // Phase 1: expand chunks into private shard tables (parallel). Each
    // job's table buffers come from (and its sorted shard returns to)
    // the arena of the pool thread that happens to run it.
    let jobs: Vec<_> = (0..chunk_count)
        .map(|c| {
            let ctx = Arc::clone(ctx);
            let layer = Arc::clone(&layer);
            move |_: &TaskScope<'_>| {
                let range = c * chunk_size..((c + 1) * chunk_size).min(groups);
                let mut table = DedupTable::from_arena(expected_per_chunk, out_size);
                let mut counters = ChunkCounters::default();
                expand_range(&ctx, &layer, range, &mut table, &mut counters);
                counters.absorb_table(&table);
                let mut masks = arena::with(|a| a.masks.take(table.len()));
                let mut slots = arena::with(|a| a.slots.take(table.len() * out_size));
                table.drain_sorted_recycle(&mut masks, &mut slots);
                ((masks, slots), counters)
            }
        })
        .collect();
    let (chunk_results, steals) = scope.map_with_steals(jobs);
    stats.chunks += chunk_count;
    stats.steals += steals;
    let mut shards: Vec<Shard> = Vec::with_capacity(chunk_results.len());
    let mut totals = ChunkCounters::default();
    for (shard, counters) in chunk_results {
        totals.add(&counters);
        if !shard.0.is_empty() {
            shards.push(shard);
        } else {
            arena::with(|a| {
                a.masks.put(shard.0);
                a.slots.put(shard.1);
            });
        }
    }
    stats.extensions_tried += totals.extensions_tried;
    stats.pruned_by_distance += totals.pruned_by_distance;
    stats.pruned_by_deadline += totals.pruned_by_deadline;
    fta_obs::counter("vdps.dedup_probes", totals.probes);
    fta_obs::counter("vdps.dedup_rehashes", totals.rehashes);

    // Phase 2: merge shards by mask partition (parallel k-way merges).
    let _merge_span = fta_obs::span("vdps.merge");
    let merge_start = Instant::now();
    let mut bounds: Vec<u128> = vec![0];
    bounds.extend(partition_pivots(&shards, threads.max(1)));
    bounds.push(u128::MAX);
    let shards = Arc::new(shards);
    let merge_jobs: Vec<_> = bounds
        .windows(2)
        .map(|w| {
            let shards = Arc::clone(&shards);
            let (lo, hi) = (w[0], w[1]);
            move |_: &TaskScope<'_>| merge_partition(&shards, out_size, lo, hi)
        })
        .collect();
    let (merged, merge_steals) = scope.map_with_steals(merge_jobs);
    stats.steals += merge_steals;

    let expected: usize = merged.iter().map(|((m, _), _)| m.len()).sum();
    let (mut masks, mut slots) =
        arena::with(|a| (a.masks.take(expected), a.slots.take(expected * out_size)));
    for ((part_masks, part_slots), collisions) in merged {
        stats.merge_collisions += collisions;
        masks.extend_from_slice(&part_masks);
        slots.extend_from_slice(&part_slots);
    }
    // The consumed shards return to this thread's arena for the next layer.
    if let Ok(shards) = Arc::try_unwrap(shards) {
        arena::with(|a| {
            for (m, s) in shards {
                a.masks.put(m);
                a.slots.put(s);
            }
        });
    }
    stats.merge_nanos += u64::try_from(merge_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Frontier {
        size: out_size,
        masks,
        slots,
    }
}

/// Builds the next layer sequentially: a single arena-backed dedup
/// table, drained sorted into arena-backed frontier storage.
fn next_layer_sequential(
    ctx: &Ctx,
    layer: &Frontier,
    out_size: usize,
    stats: &mut GenerationStats,
) -> Frontier {
    let mut table = DedupTable::from_arena(layer.masks.len().max(8), out_size);
    let mut counters = ChunkCounters::default();
    expand_range(ctx, layer, 0..layer.masks.len(), &mut table, &mut counters);
    stats.chunks += 1;
    stats.extensions_tried += counters.extensions_tried;
    stats.pruned_by_distance += counters.pruned_by_distance;
    stats.pruned_by_deadline += counters.pruned_by_deadline;
    fta_obs::counter("vdps.dedup_probes", table.probes());
    fta_obs::counter("vdps.dedup_rehashes", table.rehashes());
    let (mut masks, mut slots) = arena::with(|a| {
        (
            a.masks.take(table.len()),
            a.slots.take(table.len() * out_size),
        )
    });
    table.drain_sorted_recycle(&mut masks, &mut slots);
    Frontier {
        size: out_size,
        masks,
        slots,
    }
}

/// Generates all C-VDPSs of one distribution center with the
/// flat-frontier engine, optionally parallelising layer expansion on
/// `scope` (see the module docs for the data layout).
///
/// The pool is ordered by subset size, then by mask — bit-identical to
/// [`crate::generator::generate_c_vdps_hashmap`] — and the work counters
/// of [`GenerationStats`] match the hash-map engine's exactly.
///
/// # Panics
///
/// Panics if the center has more than 128 task-bearing delivery points.
#[must_use]
pub fn generate_c_vdps_flat(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
    scope: Option<&TaskScope<'_>>,
) -> (Vec<Vdps>, GenerationStats) {
    generate_c_vdps_flat_budgeted(instance, aggregates, view, config, scope, GenControl::NONE)
}

/// [`generate_c_vdps_flat`] with a [`GenControl`] checked between DP
/// layers: once the control trips (state cap reached or the cancellation
/// token fired), no further layer is expanded and the completed layers
/// emit as a valid, truncated pool.
///
/// The run is steered by the process-wide installed
/// [`HotpathProfile`] (parallelism floor, chunking, emission kernel),
/// read once per generation.
///
/// # Panics
///
/// Panics if the center has more than 128 task-bearing delivery points.
#[must_use]
pub fn generate_c_vdps_flat_budgeted(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
    scope: Option<&TaskScope<'_>>,
    control: GenControl<'_>,
) -> (Vec<Vdps>, GenerationStats) {
    let profile = crate::hotpath::current();
    generate_c_vdps_flat_with_profile(instance, aggregates, view, config, scope, control, &profile)
}

/// [`generate_c_vdps_flat_budgeted`] against an explicit profile instead
/// of the installed one. Calibration and equivalence tests use this to
/// compare kernels without mutating process-wide state.
#[doc(hidden)]
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn generate_c_vdps_flat_with_profile(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
    scope: Option<&TaskScope<'_>>,
    control: GenControl<'_>,
    profile: &HotpathProfile,
) -> (Vec<Vdps>, GenerationStats) {
    let n = view.dps.len();
    assert!(
        n <= 128,
        "center {} has {n} delivery points; the bitmask DP supports at most 128",
        view.center
    );
    let mut stats = GenerationStats::default();
    if n == 0 || config.max_len == 0 {
        return (Vec::new(), stats);
    }
    let center_u32 = view.center.index() as u32;
    let _generate_span = fta_obs::span_center("vdps.generate", center_u32);
    let dp_span = fta_obs::span_center("vdps.dp", center_u32);
    let dp_start = Instant::now();

    let dc = instance.centers[view.center.index()].location;
    let speed = instance.speed;
    let locs: Vec<_> = view
        .dps
        .iter()
        .map(|dp| instance.delivery_points[dp.index()].location)
        .collect();
    let expiry: Vec<f64> = view
        .dps
        .iter()
        .map(|dp| aggregates[dp.index()].earliest_expiry)
        .collect();
    let from_dc: Vec<f64> = locs.iter().map(|&l| dc.travel_time(l, speed)).collect();

    // Flat n×n travel-time matrix. Stored as the exact expression the
    // hash-map engine evaluates per extension (distance / speed), so
    // arrivals stay bit-identical. n ≤ 128 keeps this ≤ 128 KiB.
    let mut tt = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            tt[i * n + j] = locs[i].distance(locs[j]) / speed;
        }
    }
    let neighbors = config.epsilon.map(|eps| NeighborIndex::build(&locs, eps));
    let full_mask = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let ctx = Arc::new(Ctx {
        n,
        tt,
        expiry,
        neighbors,
        full_mask,
    });

    // Layer 1 (Algorithm 1, lines 2–5): reachable singletons, ascending.
    let (mut masks, mut slots) = arena::with(|a| (a.masks.take(n), a.slots.take(n)));
    for (j, &arrival) in from_dc.iter().enumerate() {
        stats.extensions_tried += 1;
        if arrival <= ctx.expiry[j] {
            masks.push(BIT[j]);
            slots.push(Slot {
                arrival,
                parent: u8::MAX,
            });
        } else {
            stats.pruned_by_deadline += 1;
        }
    }
    let mut layers: Vec<Arc<Frontier>> = vec![Arc::new(Frontier {
        size: 1,
        masks,
        slots,
    })];

    // Layers 2..=max_len (Algorithm 1, lines 6–12). The budget control is
    // checked between layers: completed layers always emit, so a
    // truncated run still yields a valid (smaller) pool.
    let mut states_so_far = layers[0].occupied();
    for len in 2..=config.max_len.min(n) {
        if control.should_stop(states_so_far) {
            stats.truncations = 1;
            break;
        }
        let _layer_span = fta_obs::span_layer("vdps.layer", center_u32, len as u32);
        let layer = Arc::clone(&layers[len - 2]);
        let parallel = scope
            .filter(|s| s.threads() > 1 && layer.masks.len() >= profile.flat_par_min_groups)
            .is_some();
        let next = if parallel {
            let scope = scope.expect("parallel implies a scope");
            next_layer_pooled(
                &ctx,
                layer,
                len,
                scope,
                profile.flat_chunks_per_thread,
                &mut stats,
            )
        } else {
            next_layer_sequential(&ctx, &layer, len, &mut stats)
        };
        if next.masks.is_empty() {
            next.recycle();
            break;
        }
        states_so_far += next.occupied();
        layers.push(Arc::new(next));
    }
    stats.states = layers.iter().map(|l| l.occupied()).sum();
    stats.dp_nanos = u64::try_from(dp_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    drop(dp_span);
    let route_span = fta_obs::span_center("vdps.routes", center_u32);

    // Emission: layers are already in subset-size order and each layer is
    // mask-sorted, so the pool order (size, then mask) needs no sort. The
    // per-mask best ending is the lexicographic minimum over the group's
    // occupied slots, folding the old `best_per_mask` pass into the walk.
    let route_start = Instant::now();
    let emit_offsets = profile.emission_kernel == EmissionKernel::Offsets;
    let mut pool = Vec::with_capacity(layers.iter().map(|l| l.masks.len()).sum());
    // Reused backwalk scratch (last → first); routes are ≤ `max_len` long.
    let mut order_rev: Vec<u8> = Vec::with_capacity(config.max_len);
    let mut arrivals_rev: Vec<f64> = Vec::with_capacity(config.max_len);
    for layer in &layers {
        for g in 0..layer.masks.len() {
            let mask = layer.masks[g];
            let base = g * layer.size;
            let mut best: Option<(f64, usize)> = None;
            let mut members = mask;
            let mut k = 0usize;
            while members != 0 {
                let j = members.trailing_zeros() as usize;
                members &= members - 1;
                let slot = layer.slots[base + k];
                k += 1;
                if slot.arrival.is_finite()
                    && best.is_none_or(|(arrival, _)| slot.arrival < arrival)
                {
                    best = Some((slot.arrival, j));
                }
            }
            let (_, mut last) =
                best.expect("every frontier group holds at least one feasible state");
            // Walk `pre` pointers backwards through the layers. The first
            // hop reads this group's slots directly; only ancestors need
            // the binary-search `lookup` into their (smaller) layers. The
            // DP arrival at each hop is the center-origin arrival offset
            // of that member, collected for trusted-offsets emission.
            order_rev.clear();
            arrivals_rev.clear();
            let mut cur_mask = mask;
            let mut state = layer.slots[base + rank(mask, last)];
            loop {
                order_rev.push(last as u8);
                arrivals_rev.push(state.arrival);
                if state.parent == u8::MAX {
                    break;
                }
                cur_mask &= !BIT[last];
                last = usize::from(state.parent);
                state = layers[cur_mask.count_ones() as usize - 1].lookup(cur_mask, last);
            }
            let dps: Vec<DeliveryPointId> = order_rev
                .iter()
                .rev()
                .map(|&local| view.dps[usize::from(local)])
                .collect();
            let route = if emit_offsets {
                let offsets: Vec<f64> = arrivals_rev.iter().rev().copied().collect();
                let route = Route::from_trusted_offsets(view.center, dps, offsets, aggregates);
                #[cfg(debug_assertions)]
                {
                    let rebuilt =
                        Route::build(instance, aggregates, view.center, route.dps().to_vec())
                            .expect("DP states only reference valid delivery points");
                    debug_assert_eq!(
                        route, rebuilt,
                        "trusted-offsets emission must be bit-identical to a rebuild"
                    );
                }
                route
            } else {
                Route::build(instance, aggregates, view.center, dps)
                    .expect("DP states only reference valid delivery points")
            };
            debug_assert!(
                route.is_center_origin_valid(),
                "the DP must only emit deadline-feasible sequences"
            );
            pool.push(Vdps {
                mask,
                route: std::sync::Arc::new(route),
            });
        }
    }
    stats.route_nanos = u64::try_from(route_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    drop(route_span);
    stats.vdps_count = pool.len();
    crate::generator::emit_generation_counters(&stats);
    // Generation over: every frontier returns its storage to the arena.
    for layer in layers {
        if let Ok(frontier) = Arc::try_unwrap(layer) {
            frontier.recycle();
        }
    }
    (pool, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_c_vdps_hashmap;
    use crate::hotpath::ScanKernel;
    use crate::pool::WorkerPool;
    use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use fta_core::geometry::Point;
    use fta_core::ids::{CenterId, TaskId, WorkerId};

    /// A deterministic pseudo-random scatter of `n` delivery points.
    fn scatter_instance(n: usize, seed: u64) -> Instance {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let dps: Vec<DeliveryPoint> = (0..n)
            .map(|i| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new(next() * 6.0, next() * 6.0),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = (0..n)
            .map(|i| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: 0.5 + next() * 12.0,
                reward: 1.0,
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(3.0, 3.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(3.0, 3.0),
                max_dp: 4,
                center: CenterId(0),
            }],
            dps,
            tasks,
            1.0,
        )
        .unwrap()
    }

    fn assert_pools_identical(a: &[Vdps], b: &[Vdps], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: pool sizes differ");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.mask, y.mask, "{label}: masks differ");
            assert_eq!(x.route.dps(), y.route.dps(), "{label}: routes differ");
            assert!(
                (x.route.travel_from_dc() - y.route.travel_from_dc()).abs() == 0.0,
                "{label}: travel times not bit-identical on mask {:#b}",
                x.mask
            );
        }
    }

    #[test]
    fn flat_matches_hashmap_bit_identically() {
        for seed in [1u64, 7, 42] {
            for n in [5usize, 12, 24] {
                for config in [
                    VdpsConfig::unpruned(3),
                    VdpsConfig::unpruned(4),
                    VdpsConfig::pruned(2.0, 3),
                    VdpsConfig::pruned(0.8, 4),
                ] {
                    let inst = scatter_instance(n, seed);
                    let aggs = inst.dp_aggregates();
                    let views = inst.center_views();
                    let (flat, fs) = generate_c_vdps_flat(&inst, &aggs, &views[0], &config, None);
                    let (hash, hs) = generate_c_vdps_hashmap(&inst, &aggs, &views[0], &config);
                    let label = format!("seed {seed}, n {n}, cfg {config:?}");
                    assert_pools_identical(&flat, &hash, &label);
                    assert_eq!(
                        fs.work_counters(),
                        hs.work_counters(),
                        "{label}: work counters differ"
                    );
                }
            }
        }
    }

    #[test]
    fn emission_kernels_are_bit_identical() {
        let offsets_profile = HotpathProfile::default();
        let rebuild_profile = HotpathProfile {
            emission_kernel: EmissionKernel::Rebuild,
            scan_kernel: ScanKernel::Scalar,
            ..HotpathProfile::default()
        };
        for seed in [3u64, 11] {
            for n in [6usize, 18] {
                let inst = scatter_instance(n, seed);
                let aggs = inst.dp_aggregates();
                let views = inst.center_views();
                let config = VdpsConfig::pruned(2.5, 4);
                let run = |p: &HotpathProfile| {
                    generate_c_vdps_flat_with_profile(
                        &inst,
                        &aggs,
                        &views[0],
                        &config,
                        None,
                        GenControl::NONE,
                        p,
                    )
                };
                let (fast, fast_stats) = run(&offsets_profile);
                let (slow, slow_stats) = run(&rebuild_profile);
                let label = format!("seed {seed}, n {n}");
                assert_pools_identical(&fast, &slow, &label);
                for (a, b) in fast.iter().zip(slow.iter()) {
                    assert_eq!(a.route, b.route, "{label}: route payloads differ");
                }
                assert_eq!(fast_stats.work_counters(), slow_stats.work_counters());
            }
        }
    }

    #[test]
    fn steady_state_generation_is_allocation_free() {
        arena::clear();
        let inst = scatter_instance(22, 13);
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let config = VdpsConfig::pruned(2.5, 4);
        // Two warm-up generations: the first populates the arena, the
        // second lets recycled capacities settle to their fixed point.
        let (warm, _) = generate_c_vdps_flat(&inst, &aggs, &views[0], &config, None);
        let (warm2, _) = generate_c_vdps_flat(&inst, &aggs, &views[0], &config, None);
        assert_eq!(warm.len(), warm2.len());
        let after_warm = arena::stats();
        for round in 0..3 {
            let (pool, _) = generate_c_vdps_flat(&inst, &aggs, &views[0], &config, None);
            assert_eq!(pool.len(), warm.len());
            let s = arena::stats();
            assert_eq!(
                s.misses, after_warm.misses,
                "round {round}: steady-state generation hit the allocator"
            );
            assert_eq!(
                s.high_water_bytes, after_warm.high_water_bytes,
                "round {round}: arena high-water mark did not stabilize"
            );
        }
        arena::clear();
    }

    #[test]
    fn pooled_generation_matches_sequential() {
        let inst = scatter_instance(40, 9);
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let config = VdpsConfig::unpruned(3);
        let (seq, seq_stats) = generate_c_vdps_flat(&inst, &aggs, &views[0], &config, None);
        for threads in [2, 4] {
            let pool = WorkerPool::with_threads(threads);
            let (par, par_stats) =
                pool.scope(|ts| generate_c_vdps_flat(&inst, &aggs, &views[0], &config, Some(ts)));
            assert_pools_identical(&seq, &par, &format!("threads {threads}"));
            assert_eq!(seq_stats.work_counters(), par_stats.work_counters());
            assert!(par_stats.chunks >= seq_stats.chunks);
        }
    }

    #[test]
    fn pooled_generation_is_deterministic_across_runs() {
        let inst = scatter_instance(36, 4);
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let config = VdpsConfig::pruned(2.5, 4);
        let pool = WorkerPool::with_threads(4);
        let (a, _) =
            pool.scope(|ts| generate_c_vdps_flat(&inst, &aggs, &views[0], &config, Some(ts)));
        let (b, _) =
            pool.scope(|ts| generate_c_vdps_flat(&inst, &aggs, &views[0], &config, Some(ts)));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_capped_inputs_behave_like_hashmap() {
        let inst = scatter_instance(6, 3);
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let (pool, stats) =
            generate_c_vdps_flat(&inst, &aggs, &views[0], &VdpsConfig::unpruned(0), None);
        assert!(pool.is_empty());
        assert_eq!(stats.states, 0);

        let (one, one_stats) =
            generate_c_vdps_flat(&inst, &aggs, &views[0], &VdpsConfig::unpruned(1), None);
        let (href, href_stats) =
            generate_c_vdps_hashmap(&inst, &aggs, &views[0], &VdpsConfig::unpruned(1));
        assert_pools_identical(&one, &href, "max_len 1");
        assert_eq!(one_stats.work_counters(), href_stats.work_counters());
    }
}

//! Incremental (delta) maintenance of a center's C-VDPS pool across
//! rounds.
//!
//! In a round-based deployment the instance a center solves at round
//! `t + 1` is almost the instance it solved at round `t`: a handful of
//! tasks arrived or left, and every surviving task's relative expiry
//! shrank by the round length. Regenerating the full subset DP and
//! rebuilding every route from scratch throws that similarity away.
//! [`delta_update`] instead classifies each delivery point of the new
//! round against a [`PoolCache`] captured from the previous generation
//! and touches only what changed:
//!
//! * **unchanged** points (bitwise-equal aggregates and location) keep
//!   their cached entries verbatim — the shared [`Arc<Route>`]s are
//!   reused without rebuilding;
//! * **reward-dirty** points (same expiry bits, different reward or task
//!   count) keep their visiting orders — feasibility depends only on
//!   expiries — and rebuild just the [`Route`] payload;
//! * **tightened** points (expiry strictly decreased) revalidate each
//!   touching entry stop by stop against the cached arrival offsets; an
//!   entry whose every stop still meets its (new) deadline provably
//!   re-wins all DP tie-breaks and is kept bit-identically, while a
//!   broken entry falls back to a per-mask recompute;
//! * **dirty** points (new, relocated, or expiry loosened) invalidate
//!   every touching entry and seed a layered rediscovery, because a
//!   loosened deadline can make a previously pruned — possibly shorter —
//!   ordering feasible;
//! * **removed** points simply drop their touching entries: removal and
//!   tightening can never create a feasible subset that did not exist
//!   before.
//!
//! Recomputation and discovery run through a lazily memoised per-mask
//! Held–Karp that replicates the flat engine's arithmetic (the same
//! `distance / speed` expression tree) and tie-breaks (smaller arrival,
//! then smaller predecessor index; emission prefers the lowest set bit on
//! exact ties), so the merged pool — re-sorted by subset size then mask —
//! is **bit-identical** to a cold regeneration for the same input. The
//! module tests and `tests/delta_equivalence.rs` assert exactly that.
//!
//! Classification is *bitwise* on purpose: a caller re-deriving relative
//! expiries from a new wall-clock instant almost never produces
//! `old − age` exactly, so the updater never reconstructs aggregates
//! arithmetically — it only compares the bits it is given.

use crate::config::VdpsConfig;
use crate::generator::{GenerationStats, Vdps};
use fta_core::instance::{CenterView, DpAggregate, Instance};
use fta_core::route::Route;
use fta_core::DeliveryPointId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Everything [`delta_update`] needs to know about the previous
/// generation of one center's pool. Captured via [`PoolCache::capture`]
/// right after a full (or previous delta) generation.
#[derive(Debug, Clone)]
pub struct PoolCache {
    /// Global delivery-point ids, indexed by the *old* local bit.
    pub dp_ids: Vec<DeliveryPointId>,
    /// Aggregates of the previous round, parallel to `dp_ids`.
    pub aggregates: Vec<DpAggregate>,
    /// Locations of the previous round, parallel to `dp_ids`, as raw
    /// coordinate bits (relocation detection must be bitwise too).
    pub location_bits: Vec<(u64, u64)>,
    /// The previous pool (masks over the old local bits).
    pub pool: Vec<Vdps>,
    /// Whether the previous generation was truncated by a budget control.
    /// A truncated pool under-approximates the feasible set for unknown
    /// masks, so it cannot seed a delta update.
    pub truncated: bool,
    /// The ε the previous pool was generated with (`None` = unpruned).
    pub epsilon: Option<f64>,
    /// The subset-size cap the previous pool was generated with.
    pub max_len: usize,
    /// Center location bits and speed bits of the previous round.
    pub center_bits: (u64, u64),
    /// Worker speed bits of the previous round.
    pub speed_bits: u64,
}

impl PoolCache {
    /// Captures the state a later [`delta_update`] needs from a finished
    /// generation of `view`'s pool.
    #[must_use]
    pub fn capture(
        instance: &Instance,
        aggregates: &[DpAggregate],
        view: &CenterView,
        config: &VdpsConfig,
        pool: &[Vdps],
        stats: &GenerationStats,
    ) -> Self {
        let dc = instance.centers[view.center.index()].location;
        Self {
            dp_ids: view.dps.clone(),
            aggregates: view.dps.iter().map(|dp| aggregates[dp.index()]).collect(),
            location_bits: view
                .dps
                .iter()
                .map(|dp| {
                    let l = instance.delivery_points[dp.index()].location;
                    (l.x.to_bits(), l.y.to_bits())
                })
                .collect(),
            pool: pool.to_vec(),
            truncated: stats.truncations > 0,
            epsilon: config.epsilon,
            max_len: config.max_len,
            center_bits: (dc.x.to_bits(), dc.y.to_bits()),
            speed_bits: instance.speed.to_bits(),
        }
    }
}

/// Counters describing one delta update, mirrored to the telemetry
/// recorder as `vdps.delta_*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Cached entries reused verbatim (shared `Arc<Route>`, no rebuild).
    pub reused: usize,
    /// Cached entries whose visiting order survived but whose [`Route`]
    /// payload was rebuilt (reward change, or tightened-but-still-valid).
    pub rebuilt: usize,
    /// Masks recomputed through the memoised per-mask DP (broken
    /// tightened entries).
    pub recomputed: usize,
    /// New masks found by dirty-seeded layered discovery.
    pub discovered: usize,
    /// Cached entries dropped (removed member, infeasible after
    /// recompute, or over the new length cap).
    pub dropped: usize,
    /// Delivery points classified dirty (new, relocated, or loosened).
    pub dirty_points: usize,
    /// Memoised DP states materialised during recompute/discovery.
    pub memo_states: usize,
    /// Wall time of classification + survivor processing, nanoseconds.
    pub dp_nanos: u64,
    /// Wall time of route rebuilds, nanoseconds.
    pub route_nanos: u64,
}

impl DeltaStats {
    /// A [`GenerationStats`] view of this delta run, for consumers (the
    /// strategy-space builder, telemetry) that expect generation
    /// statistics. Work counters other than `vdps_count` stay zero: a
    /// delta run deliberately does not replay the full DP's extension
    /// accounting.
    #[must_use]
    pub fn as_gen_stats(&self, vdps_count: usize) -> GenerationStats {
        GenerationStats {
            vdps_count,
            states: self.memo_states,
            dp_nanos: self.dp_nanos,
            route_nanos: self.route_nanos,
            ..GenerationStats::default()
        }
    }
}

/// Per-delivery-point classification against the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PointClass {
    /// Aggregates and location bitwise equal: entries reusable verbatim.
    Unchanged,
    /// Expiry bits equal, reward/count differ: orders survive, routes
    /// rebuild.
    RewardDirty,
    /// Expiry strictly decreased: per-stop revalidation decides.
    Tightened,
    /// New point, relocated point, or loosened expiry: full rediscovery
    /// of touching masks.
    Dirty,
}

/// Attempts to update `cache` into the pool a full regeneration would
/// produce for (`instance`, `aggregates`, `view`, `config`). Returns
/// `None` when the cache cannot soundly seed an update — truncated
/// previous generation, ε or speed or center changed, or the subset-size
/// cap grew — in which case the caller must regenerate from scratch. On
/// success the returned pool is bit-identical (content and size-then-mask
/// order) to [`crate::generate_c_vdps`] on the same input.
///
/// # Panics
///
/// Panics if the center has more than 128 task-bearing delivery points,
/// like the full engines.
#[must_use]
pub fn delta_update(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
    cache: &PoolCache,
) -> Option<(Vec<Vdps>, DeltaStats)> {
    delta_update_with_provenance(instance, aggregates, view, config, cache)
        .map(|(pool, _, stats)| (pool, stats))
}

/// [`delta_update`] that additionally reports, for every entry of the
/// updated pool, which cached pool index it was reused from *verbatim*
/// (`Some(old_index)` only for [`DeltaStats::reused`] entries — the mask
/// members, visiting order, and [`Route`] payload are all bit-identical
/// to the cached entry, with only the local bit numbering remapped).
/// Rebuilt, recomputed, and discovered entries report `None`: their
/// payoffs changed, so downstream per-worker caches must not carry over.
///
/// The provenance vector is parallel to the returned pool and lets the
/// strategy-space builder skip per-worker revalidation of unchanged
/// entries (see `StrategySpace::from_pool_delta`).
#[must_use]
pub fn delta_update_with_provenance(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
    cache: &PoolCache,
) -> Option<(Vec<Vdps>, Vec<Option<u32>>, DeltaStats)> {
    let n = view.dps.len();
    assert!(
        n <= 128,
        "center {} has {n} delivery points; the bitmask DP supports at most 128",
        view.center
    );
    let dc = instance.centers[view.center.index()].location;
    let epsilon_matches = match (cache.epsilon, config.epsilon) {
        (None, None) => true,
        (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
        _ => false,
    };
    if cache.truncated
        || !epsilon_matches
        || config.max_len > cache.max_len
        || cache.center_bits != (dc.x.to_bits(), dc.y.to_bits())
        || cache.speed_bits != instance.speed.to_bits()
    {
        fta_obs::counter("vdps.delta_fallback", 1);
        return None;
    }
    let mut stats = DeltaStats::default();
    if n == 0 || config.max_len == 0 {
        return Some((Vec::new(), Vec::new(), stats));
    }
    let dp_start = Instant::now();

    // --- classify every new local bit against the cache ---
    let old_bit_of: HashMap<DeliveryPointId, usize> = cache
        .dp_ids
        .iter()
        .enumerate()
        .map(|(bit, &id)| (id, bit))
        .collect();
    let locs: Vec<_> = view
        .dps
        .iter()
        .map(|dp| instance.delivery_points[dp.index()].location)
        .collect();
    let expiry: Vec<f64> = view
        .dps
        .iter()
        .map(|dp| aggregates[dp.index()].earliest_expiry)
        .collect();
    let mut class = Vec::with_capacity(n);
    // Old local bit → new local bit; removed points stay `None`.
    let mut remap = vec![None::<usize>; cache.dp_ids.len()];
    for (j, &id) in view.dps.iter().enumerate() {
        let c = match old_bit_of.get(&id) {
            None => PointClass::Dirty,
            Some(&old) => {
                remap[old] = Some(j);
                let oa = &cache.aggregates[old];
                let na = &aggregates[id.index()];
                let loc_bits = (locs[j].x.to_bits(), locs[j].y.to_bits());
                if cache.location_bits[old] != loc_bits {
                    PointClass::Dirty
                } else if oa.earliest_expiry.to_bits() == na.earliest_expiry.to_bits() {
                    if oa.total_reward.to_bits() == na.total_reward.to_bits()
                        && oa.task_count == na.task_count
                    {
                        PointClass::Unchanged
                    } else {
                        PointClass::RewardDirty
                    }
                } else if na.earliest_expiry < oa.earliest_expiry {
                    PointClass::Tightened
                } else {
                    PointClass::Dirty
                }
            }
        };
        if c == PointClass::Dirty {
            stats.dirty_points += 1;
        }
        class.push(c);
    }
    let dirty_mask: u128 = class
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == PointClass::Dirty)
        .map(|(j, _)| 1u128 << j)
        .sum();
    let tightened_mask: u128 = class
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == PointClass::Tightened)
        .map(|(j, _)| 1u128 << j)
        .sum();
    let reward_mask: u128 = class
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == PointClass::RewardDirty)
        .map(|(j, _)| 1u128 << j)
        .sum();

    // --- walk the cached pool: reuse, rebuild, revalidate, or drop ---
    let max_len = config.max_len.min(n);
    let mut kept: Vec<Vdps> = Vec::with_capacity(cache.pool.len());
    // Cached pool index each kept entry was reused from verbatim,
    // parallel to `kept`; `None` for anything whose payload was rebuilt.
    let mut prov: Vec<Option<u32>> = Vec::with_capacity(cache.pool.len());
    // Masks whose cached order broke under tightening; the mask may still
    // be feasible through a different ordering.
    let mut to_recompute: Vec<u128> = Vec::new();
    let mut route_nanos_acc = 0u64;
    'entries: for (entry_idx, entry) in cache.pool.iter().enumerate() {
        if entry.route.len() > max_len {
            stats.dropped += 1;
            continue;
        }
        let mut new_mask = 0u128;
        let mut members = entry.mask;
        while members != 0 {
            let old_bit = members.trailing_zeros() as usize;
            members &= members - 1;
            match remap.get(old_bit).copied().flatten() {
                Some(j) => new_mask |= 1u128 << j,
                None => {
                    stats.dropped += 1;
                    continue 'entries;
                }
            }
        }
        if new_mask & dirty_mask != 0 {
            // A loosened or relocated member: the minimal order itself may
            // change, so the mask goes through rediscovery.
            stats.dropped += 1;
            continue;
        }
        if new_mask & tightened_mask != 0 {
            // Revalidate the cached order stop by stop: the cached arrival
            // offsets are the DP's own chain values, so if every stop still
            // meets its (shrunk) deadline the chain re-wins all tie-breaks.
            let offsets = entry.route.arrival_offsets();
            for (i, dp) in entry.route.dps().iter().enumerate() {
                if offsets[i] > aggregates[dp.index()].earliest_expiry {
                    to_recompute.push(new_mask);
                    continue 'entries;
                }
            }
            let route_start = Instant::now();
            // Stops did not move (location bits were checked during
            // classification), so the cached arrival offsets are exact:
            // retime the payload instead of re-walking the legs.
            let route = entry.route.retimed(aggregates);
            route_nanos_acc += elapsed_nanos(route_start);
            stats.rebuilt += 1;
            kept.push(Vdps {
                mask: new_mask,
                route: Arc::new(route),
            });
            prov.push(None);
        } else if new_mask & reward_mask != 0 {
            // Feasibility untouched (expiry bits equal); only the payload
            // (reward, slack contribution of counts) needs retiming.
            let route_start = Instant::now();
            let route = entry.route.retimed(aggregates);
            route_nanos_acc += elapsed_nanos(route_start);
            stats.rebuilt += 1;
            kept.push(Vdps {
                mask: new_mask,
                route: Arc::new(route),
            });
            prov.push(None);
        } else {
            stats.reused += 1;
            kept.push(Vdps {
                mask: new_mask,
                route: Arc::clone(&entry.route),
            });
            prov.push(Some(entry_idx as u32));
        }
    }

    // --- memoised per-mask DP for recomputes and discovery ---
    let mut dp = MemoDp::new(instance, dc, &locs, expiry, config.epsilon);
    for mask in to_recompute {
        if let Some(order) = dp.best_order(mask) {
            let route_start = Instant::now();
            let dps: Vec<DeliveryPointId> = order
                .iter()
                .map(|&local| view.dps[usize::from(local)])
                .collect();
            let route = Route::build(instance, aggregates, view.center, dps)
                .expect("DP states only reference valid delivery points");
            route_nanos_acc += elapsed_nanos(route_start);
            stats.recomputed += 1;
            kept.push(Vdps {
                mask,
                route: Arc::new(route),
            });
            prov.push(None);
        } else {
            stats.dropped += 1;
        }
    }

    // --- layered discovery seeded by the dirty points ---
    // Completeness: any feasible mask `M` containing a dirty bit has a
    // feasible witness chain; dropping its last stop yields a feasible
    // mask of size |M| − 1 that either contains a dirty bit itself or is
    // extended by one — both candidate rules below — so processing sizes
    // in order reaches every such mask.
    if dirty_mask != 0 {
        let mut by_size: Vec<Vec<u128>> = vec![Vec::new(); max_len + 1];
        let mut present: std::collections::HashSet<u128> = kept.iter().map(|v| v.mask).collect();
        for v in &kept {
            by_size[v.route.len()].push(v.mask);
        }
        let mut emit = |mask: u128, dp: &mut MemoDp<'_>, kept: &mut Vec<Vdps>| -> bool {
            match dp.best_order(mask) {
                Some(order) => {
                    let route_start = Instant::now();
                    let dps: Vec<DeliveryPointId> = order
                        .iter()
                        .map(|&local| view.dps[usize::from(local)])
                        .collect();
                    let route = Route::build(instance, aggregates, view.center, dps)
                        .expect("DP states only reference valid delivery points");
                    route_nanos_acc += elapsed_nanos(route_start);
                    kept.push(Vdps {
                        mask,
                        route: Arc::new(route),
                    });
                    true
                }
                None => false,
            }
        };
        let mut d = dirty_mask;
        while d != 0 {
            let j = d.trailing_zeros() as usize;
            d &= d - 1;
            let mask = 1u128 << j;
            if emit(mask, &mut dp, &mut kept) {
                stats.discovered += 1;
                prov.push(None);
                present.insert(mask);
                by_size[1].push(mask);
            }
        }
        let full_mask = if n == 128 {
            u128::MAX
        } else {
            (1u128 << n) - 1
        };
        for size in 2..=max_len {
            let mut candidates: Vec<u128> = Vec::new();
            for &base in &by_size[size - 1] {
                let extensions = if base & dirty_mask != 0 {
                    // Dirty-containing base: try every free point.
                    full_mask & !base
                } else {
                    // Clean base: only dirty points can create new masks.
                    dirty_mask & !base
                };
                let mut e = extensions;
                while e != 0 {
                    let j = e.trailing_zeros() as usize;
                    e &= e - 1;
                    candidates.push(base | (1u128 << j));
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            for mask in candidates {
                if present.contains(&mask) {
                    continue;
                }
                if emit(mask, &mut dp, &mut kept) {
                    stats.discovered += 1;
                    prov.push(None);
                    present.insert(mask);
                    by_size[size].push(mask);
                }
            }
        }
    }
    stats.memo_states = dp.states();

    // --- canonical order: subset size, then mask ---
    debug_assert_eq!(kept.len(), prov.len());
    let mut zipped: Vec<(Vdps, Option<u32>)> = kept.into_iter().zip(prov).collect();
    zipped.sort_unstable_by_key(|(v, _)| (v.mask.count_ones(), v.mask));
    let (kept, prov): (Vec<Vdps>, Vec<Option<u32>>) = zipped.into_iter().unzip();
    stats.route_nanos = route_nanos_acc;
    stats.dp_nanos = elapsed_nanos(dp_start).saturating_sub(route_nanos_acc);
    emit_delta_counters(&stats);
    Some((kept, prov, stats))
}

fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn emit_delta_counters(stats: &DeltaStats) {
    if !fta_obs::enabled() {
        return;
    }
    fta_obs::counter("vdps.delta_reused", stats.reused as u64);
    fta_obs::counter("vdps.delta_rebuilt", stats.rebuilt as u64);
    fta_obs::counter("vdps.delta_recomputed", stats.recomputed as u64);
    fta_obs::counter("vdps.delta_discovered", stats.discovered as u64);
    fta_obs::counter("vdps.delta_dropped", stats.dropped as u64);
    fta_obs::counter("vdps.delta_dirty_points", stats.dirty_points as u64);
}

/// Lazily memoised Held–Karp over one center's delivery points,
/// replicating the flat engine's arithmetic and tie-breaks exactly:
///
/// * singleton arrivals are `dc.travel_time(loc, speed)`;
/// * an extension `p → j` adds `locs[p].distance(locs[j]) / speed` (the
///   same expression tree the flat engine stores in its travel matrix)
///   and is pruned when the arrival exceeds `expiry[j]` or (with ε
///   pruning) when the hop is longer than ε — both comparisons inclusive,
///   matching the full engines;
/// * among equal-arrival predecessors the smallest index wins
///   ([`Slot::beats`](crate::flat) semantics), and emission prefers the
///   lowest set bit on exact arrival ties.
struct MemoDp<'a> {
    n: usize,
    tt: Vec<f64>,
    from_dc: Vec<f64>,
    expiry: Vec<f64>,
    epsilon: Option<f64>,
    locs: &'a [fta_core::geometry::Point],
    /// `(mask, last) → (arrival, parent)`; `None` = infeasible.
    memo: HashMap<(u128, u8), Option<(f64, u8)>>,
}

impl<'a> MemoDp<'a> {
    fn new(
        instance: &Instance,
        dc: fta_core::geometry::Point,
        locs: &'a [fta_core::geometry::Point],
        expiry: Vec<f64>,
        epsilon: Option<f64>,
    ) -> Self {
        let n = locs.len();
        let speed = instance.speed;
        let mut tt = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                tt[i * n + j] = locs[i].distance(locs[j]) / speed;
            }
        }
        let from_dc = locs.iter().map(|&l| dc.travel_time(l, speed)).collect();
        Self {
            n,
            tt,
            from_dc,
            expiry,
            epsilon,
            locs,
            memo: HashMap::new(),
        }
    }

    /// Number of memoised states materialised so far.
    fn states(&self) -> usize {
        self.memo.len()
    }

    /// Minimal arrival at `last` over all feasible orderings of `mask`
    /// ending at `last`, with the flat engine's tie-breaks; `None` when no
    /// feasible ordering exists.
    fn arrival(&mut self, mask: u128, last: u8) -> Option<(f64, u8)> {
        if let Some(&cached) = self.memo.get(&(mask, last)) {
            return cached;
        }
        let j = usize::from(last);
        let result = if mask == 1u128 << j {
            (self.from_dc[j] <= self.expiry[j]).then(|| (self.from_dc[j], u8::MAX))
        } else {
            let rest = mask & !(1u128 << j);
            let mut best: Option<(f64, u8)> = None;
            let mut preds = rest;
            // Ascending predecessor order + strict improvement = the
            // smallest-index tie-break of `Slot::beats`.
            while preds != 0 {
                let p = preds.trailing_zeros() as usize;
                preds &= preds - 1;
                if let Some(eps) = self.epsilon {
                    if self.locs[p].distance(self.locs[j]) > eps {
                        continue;
                    }
                }
                if let Some((sub, _)) = self.arrival(rest, p as u8) {
                    let cand = sub + self.tt[p * self.n + j];
                    if cand > self.expiry[j] {
                        continue;
                    }
                    if best.is_none_or(|(a, _)| cand < a) {
                        best = Some((cand, p as u8));
                    }
                }
            }
            best
        };
        self.memo.insert((mask, last), result);
        result
    }

    /// The minimum-travel visiting order of `mask` (local bit indices,
    /// first to last), or `None` when the mask is infeasible. Matches the
    /// flat engine's emission: the best last stop is the strict arrival
    /// minimum over members in ascending bit order.
    fn best_order(&mut self, mask: u128) -> Option<Vec<u8>> {
        let mut best: Option<(f64, u8)> = None;
        let mut members = mask;
        while members != 0 {
            let j = members.trailing_zeros() as usize;
            members &= members - 1;
            if let Some((arrival, _)) = self.arrival(mask, j as u8) {
                if best.is_none_or(|(a, _)| arrival < a) {
                    best = Some((arrival, j as u8));
                }
            }
        }
        let (_, mut last) = best?;
        let mut order_rev = Vec::with_capacity(mask.count_ones() as usize);
        let mut cur = mask;
        loop {
            order_rev.push(last);
            let (_, parent) = self
                .arrival(cur, last)
                .expect("backwalk only visits feasible states");
            if parent == u8::MAX {
                break;
            }
            cur &= !(1u128 << last);
            last = parent;
        }
        order_rev.reverse();
        Some(order_rev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_c_vdps;
    use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use fta_core::geometry::Point;
    use fta_core::ids::{CenterId, TaskId, WorkerId};

    /// A deterministic scatter of `n` delivery points with one task each.
    fn scatter_instance(n: usize, seed: u64) -> Instance {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let dps: Vec<DeliveryPoint> = (0..n)
            .map(|i| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new(next() * 6.0, next() * 6.0),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = (0..n)
            .map(|i| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: 0.5 + next() * 12.0,
                reward: 1.0 + next(),
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(3.0, 3.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(3.0, 3.0),
                max_dp: 4,
                center: CenterId(0),
            }],
            dps,
            tasks,
            1.0,
        )
        .unwrap()
    }

    fn capture(inst: &Instance, config: &VdpsConfig) -> (PoolCache, Vec<Vdps>) {
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let (pool, stats) = generate_c_vdps(inst, &aggs, &views[0], config);
        let cache = PoolCache::capture(inst, &aggs, &views[0], config, &pool, &stats);
        (cache, pool)
    }

    fn assert_matches_regen(inst: &Instance, config: &VdpsConfig, cache: &PoolCache) -> DeltaStats {
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let (regen, _) = generate_c_vdps(inst, &aggs, &views[0], config);
        let (delta, stats) =
            delta_update(inst, &aggs, &views[0], config, cache).expect("delta applies");
        assert_eq!(delta.len(), regen.len(), "pool sizes differ");
        for (d, r) in delta.iter().zip(regen.iter()) {
            assert_eq!(d.mask, r.mask, "masks differ");
            assert_eq!(d.route.dps(), r.route.dps(), "orders differ");
            assert_eq!(
                d.route.slack().to_bits(),
                r.route.slack().to_bits(),
                "slacks not bit-identical"
            );
            assert_eq!(
                d.route.total_reward().to_bits(),
                r.route.total_reward().to_bits(),
                "rewards not bit-identical"
            );
            for (a, b) in d
                .route
                .arrival_offsets()
                .iter()
                .zip(r.route.arrival_offsets())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "arrivals not bit-identical");
            }
        }
        stats
    }

    #[test]
    fn zero_churn_reuses_everything() {
        for config in [VdpsConfig::unpruned(3), VdpsConfig::pruned(2.5, 3)] {
            let inst = scatter_instance(14, 5);
            let (cache, pool) = capture(&inst, &config);
            let stats = assert_matches_regen(&inst, &config, &cache);
            assert_eq!(stats.reused, pool.len());
            assert_eq!(stats.rebuilt + stats.recomputed + stats.discovered, 0);
        }
    }

    #[test]
    fn task_removal_drops_only_touching_entries() {
        let config = VdpsConfig::unpruned(3);
        let inst = scatter_instance(12, 9);
        let (cache, _) = capture(&inst, &config);
        let mut later = inst.clone();
        // Remove two tasks → their delivery points leave the view.
        later.tasks.remove(7);
        later.tasks.remove(2);
        let stats = assert_matches_regen(&later, &config, &cache);
        assert!(stats.dropped > 0);
        assert_eq!(stats.discovered, 0, "removal can never create masks");
    }

    #[test]
    fn deadline_tightening_matches_regen() {
        let config = VdpsConfig::unpruned(3);
        let inst = scatter_instance(14, 3);
        let (cache, _) = capture(&inst, &config);
        // Age every task by a fixed interval, dropping the ones that die —
        // exactly the shape of a round advancing.
        let age = 1.75;
        let mut later = inst.clone();
        later.tasks.retain(|t| t.expiry > age);
        for t in &mut later.tasks {
            t.expiry -= age;
        }
        let stats = assert_matches_regen(&later, &config, &cache);
        assert_eq!(stats.discovered, 0, "tightening can never create masks");
        assert!(stats.reused + stats.rebuilt + stats.recomputed > 0);
    }

    #[test]
    fn new_tasks_are_discovered() {
        let config = VdpsConfig::unpruned(3);
        let mut inst = scatter_instance(10, 21);
        let extra = inst.delivery_points.len();
        inst.delivery_points.push(DeliveryPoint {
            id: DeliveryPointId::from_index(extra),
            location: Point::new(2.0, 4.0),
            center: CenterId(0),
        });
        let (cache, _) = capture(&inst, &config);
        let mut later = inst.clone();
        later.tasks.push(SpatialTask {
            id: TaskId::from_index(later.tasks.len()),
            delivery_point: DeliveryPointId::from_index(extra),
            expiry: 9.0,
            reward: 2.0,
        });
        let stats = assert_matches_regen(&later, &config, &cache);
        assert!(stats.discovered > 0, "the new point must create masks");
    }

    #[test]
    fn loosened_deadline_rediscovers_better_orders() {
        let config = VdpsConfig::unpruned(3);
        let inst = scatter_instance(12, 33);
        let (cache, _) = capture(&inst, &config);
        let mut later = inst.clone();
        for t in &mut later.tasks {
            t.expiry += 3.0;
        }
        let stats = assert_matches_regen(&later, &config, &cache);
        assert!(stats.dirty_points > 0);
    }

    #[test]
    fn reward_change_rebuilds_without_recompute() {
        let config = VdpsConfig::pruned(3.0, 3);
        let inst = scatter_instance(12, 41);
        let (cache, _) = capture(&inst, &config);
        let mut later = inst.clone();
        later.tasks[4].reward += 1.0;
        let stats = assert_matches_regen(&later, &config, &cache);
        assert!(stats.rebuilt > 0);
        assert_eq!(stats.recomputed + stats.discovered, 0);
    }

    #[test]
    fn max_len_shrink_filters_prefix() {
        let inst = scatter_instance(10, 17);
        let (cache, _) = capture(&inst, &VdpsConfig::unpruned(4));
        assert_matches_regen(&inst, &VdpsConfig::unpruned(3), &cache);
    }

    #[test]
    fn unsupported_transitions_fall_back() {
        let inst = scatter_instance(8, 2);
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let (cache, _) = capture(&inst, &VdpsConfig::unpruned(2));
        // max_len growth: larger masks unknown to the cache.
        assert!(delta_update(&inst, &aggs, &views[0], &VdpsConfig::unpruned(3), &cache).is_none());
        // ε change: the pruning frontier moved.
        assert!(
            delta_update(&inst, &aggs, &views[0], &VdpsConfig::pruned(1.0, 2), &cache).is_none()
        );
        // Truncated previous generation.
        let mut truncated = cache.clone();
        truncated.truncated = true;
        assert!(delta_update(
            &inst,
            &aggs,
            &views[0],
            &VdpsConfig::unpruned(2),
            &truncated
        )
        .is_none());
    }
}

//! # fta-vdps — Valid Delivery Point Set generation (Section IV)
//!
//! Implements the paper's Algorithm 1: a dynamic program over delivery-point
//! subsets that enumerates, per distribution center, every *center-origin*
//! Valid Delivery Point Set (C-VDPS) together with its minimum-travel-time
//! visiting sequence, plus the distance-constrained pruning strategy (`ε`)
//! and the per-worker validation step that turns C-VDPSs into each worker's
//! strategy space.
//!
//! ## Algorithm sketch
//!
//! States are `(Q, dp_j)` pairs — a subset `Q` of the center's delivery
//! points and the last visited point `dp_j` — holding the minimal arrival
//! time at `dp_j` over all deadline-feasible orderings of `Q` ending at
//! `dp_j` (Held–Karp with deadline feasibility). Subsets are `u128`
//! bitmasks over center-local delivery-point indices, and generation
//! proceeds level by level in subset size, exactly as the paper's Algorithm
//! 1 (lines 6–12). A subset is a C-VDPS iff *some* ordering delivers every
//! point before its earliest task expiry; the representative route is the
//! one with minimal total travel time, which the paper singles out because
//! it yields the highest worker payoff (Definition 7).
//!
//! Keeping the minimum arrival time per `(Q, dp_j)` is an exact dominance:
//! a later extension's feasibility and cost depend only on the arrival time
//! at the last point, so the earliest arrival dominates.
//!
//! ## Pruning
//!
//! * **Distance-constrained pruning** (the paper's ε strategy): an extension
//!   `dp_i → dp_j` is only considered when `d(dp_i, dp_j) ≤ ε`. Pass
//!   [`VdpsConfig::epsilon`] `= None` for the unpruned `-W` variants used in
//!   the paper's Figures 2–3.
//! * **Deadline pruning**: extensions that would arrive after `dp_j`'s
//!   earliest task expiry are cut immediately, so the frontier only holds
//!   feasible states.
//! * **Length cap**: subsets larger than the largest `maxDP` among the
//!   center's workers can never be assigned, so generation stops there.
//!
//! ## Engines
//!
//! Two interchangeable implementations of the DP live side by side,
//! selected by [`VdpsConfig::engine`]:
//!
//! * [`flat`] (default) — the production engine. It precomputes a flat
//!   n×n travel-time matrix plus per-point expiry/from-center arrays, and
//!   replaces the per-layer `HashMap<(mask, last), State>` with a
//!   *mask-bucketed flat frontier*: states of one layer are grouped per
//!   subset mask (masks kept sorted ascending) with a dense per-last-point
//!   slot array, so a state is addressed by `(group, rank(mask, last))`
//!   with no hashing on the read side. New masks are deduplicated through
//!   an open-addressed `u128 → group` table with an inline multiply-shift
//!   hash. The per-mask best route falls out of the layout during
//!   emission, so no second `best_per_mask` pass is needed. Large layers
//!   are expanded in chunks on the shared [`pool::WorkerPool`]; per-thread
//!   shard tables are merged by deterministic mask-range partition, which
//!   keeps the result bit-identical to a sequential run regardless of
//!   thread count or chunking.
//! * [`generator::generate_c_vdps_hashmap`] — the original per-layer
//!   hash-map DP, retained as a fast correctness oracle next to the
//!   brute-force reference in [`naive`].
//!
//! Both engines produce pools that are bit-identical in content *and*
//! order (subset size, then mask), so downstream FGT/PFGT/IEGT strategy
//! selections are unchanged by the engine choice.
//!
//! ## Worker pool
//!
//! [`pool::WorkerPool`] is a bounded, std-only work-stealing pool (no
//! external dependencies). One pool instance is shared across *all*
//! parallelism in a solve: per-center strategy-space jobs, intra-center DP
//! layer expansion, and per-worker validation all submit to the same
//! scoped queue, so a run never holds more OS threads than
//! `available_parallelism()` no matter how many centers an instance has.
//! Submitters help drain the queue while waiting (helping join), which
//! makes nested submission deadlock-free and keeps one giant center from
//! serializing the rest of a run.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arena;
pub mod config;
pub mod dedup;
pub mod delta;
pub mod flat;
pub mod generator;
pub mod grid;
pub mod hotpath;
pub mod kernel;
pub mod naive;
pub mod pool;
pub mod schedule;
pub mod strategy;

pub use arena::ArenaStats;
pub use config::{VdpsConfig, VdpsEngine};
pub use delta::{delta_update, delta_update_with_provenance, DeltaStats, PoolCache};
pub use flat::{generate_c_vdps_flat, generate_c_vdps_flat_budgeted};
pub use generator::{
    generate_c_vdps, generate_c_vdps_budgeted, generate_c_vdps_hashmap,
    generate_c_vdps_hashmap_budgeted, generate_c_vdps_in, GenControl, GenerationStats, Vdps,
};
pub use hotpath::{EmissionKernel, HotpathProfile, ScanKernel};
pub use pool::{TaskScope, WorkerPool};
pub use schedule::schedule_route;
pub use strategy::{
    ConflictSets, SlotCache, StrategySpace, CONFLICT_INDEX_MAX_SLOTS_PER_BIT,
    CONFLICT_INDEX_MIN_SLOTS,
};

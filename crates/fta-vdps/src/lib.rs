//! # fta-vdps — Valid Delivery Point Set generation (Section IV)
//!
//! Implements the paper's Algorithm 1: a dynamic program over delivery-point
//! subsets that enumerates, per distribution center, every *center-origin*
//! Valid Delivery Point Set (C-VDPS) together with its minimum-travel-time
//! visiting sequence, plus the distance-constrained pruning strategy (`ε`)
//! and the per-worker validation step that turns C-VDPSs into each worker's
//! strategy space.
//!
//! ## Algorithm sketch
//!
//! States are `(Q, dp_j)` pairs — a subset `Q` of the center's delivery
//! points and the last visited point `dp_j` — holding the minimal arrival
//! time at `dp_j` over all deadline-feasible orderings of `Q` ending at
//! `dp_j` (Held–Karp with deadline feasibility). Subsets are `u128`
//! bitmasks over center-local delivery-point indices, and generation
//! proceeds level by level in subset size, exactly as the paper's Algorithm
//! 1 (lines 6–12). A subset is a C-VDPS iff *some* ordering delivers every
//! point before its earliest task expiry; the representative route is the
//! one with minimal total travel time, which the paper singles out because
//! it yields the highest worker payoff (Definition 7).
//!
//! Keeping the minimum arrival time per `(Q, dp_j)` is an exact dominance:
//! a later extension's feasibility and cost depend only on the arrival time
//! at the last point, so the earliest arrival dominates.
//!
//! ## Pruning
//!
//! * **Distance-constrained pruning** (the paper's ε strategy): an extension
//!   `dp_i → dp_j` is only considered when `d(dp_i, dp_j) ≤ ε`. Pass
//!   [`VdpsConfig::epsilon`] `= None` for the unpruned `-W` variants used in
//!   the paper's Figures 2–3.
//! * **Deadline pruning**: extensions that would arrive after `dp_j`'s
//!   earliest task expiry are cut immediately, so the frontier only holds
//!   feasible states.
//! * **Length cap**: subsets larger than the largest `maxDP` among the
//!   center's workers can never be assigned, so generation stops there.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod generator;
pub mod grid;
pub mod naive;
pub mod schedule;
pub mod strategy;

pub use config::VdpsConfig;
pub use generator::{generate_c_vdps, GenerationStats, Vdps};
pub use schedule::schedule_route;
pub use strategy::StrategySpace;

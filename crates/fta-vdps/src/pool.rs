//! A bounded, work-stealing worker pool (std-only).
//!
//! The vendored-dependency constraint rules out `rayon`, so this module
//! provides the minimal scheduler the FTA hot paths need:
//!
//! * **Bounded**: a [`WorkerPool`] owns a fixed thread budget, defaulting
//!   to [`std::thread::available_parallelism`]. A scope spawns at most
//!   `threads - 1` OS threads (the caller participates), no matter how
//!   many jobs — or nested fan-outs — run inside it. This replaces the
//!   solver's historical one-`std::thread`-per-center spawn, which
//!   oversubscribed many-center instances.
//! * **Work-stealing / helping**: [`TaskScope::map`] pushes jobs onto a
//!   shared injector queue and then *helps*: the submitting thread keeps
//!   popping and running queued jobs (its own or anyone else's) until all
//!   of its jobs have completed. A center task that fans out per-layer DP
//!   chunks therefore never blocks a thread — idle workers steal chunks,
//!   and one giant center no longer serializes a whole run.
//! * **Deterministic results**: `map` returns results in input order
//!   regardless of which thread ran which job. Scheduling affects only
//!   the diagnostic steal counters, never the values computed.
//!
//! Nesting is safe: jobs receive the [`TaskScope`] they run on and may
//! call `map` recursively. Because helpers run queued jobs while waiting,
//! the pool cannot deadlock on nested fan-outs.
//!
//! **Panic isolation**: a panicking job is caught on the thread that ran
//! it (`catch_unwind`), counted as `pool.panics_caught`, and re-raised on
//! the *submitting* thread when its `map` collects results. Worker
//! threads never die, the scope stays usable for subsequent batches, and
//! higher layers (the per-center solver) can quarantine the re-raised
//! panic without losing the rest of the round.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A queued unit of work. Jobs receive the scope so they can fan out
/// sub-jobs onto the same thread budget.
type Job<'env> = Box<dyn FnOnce(&TaskScope<'env>) + Send + 'env>;

/// A fixed thread budget for scoped parallel execution.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// A pool sized to the machine: `available_parallelism()` threads
    /// (including the caller), falling back to 1 when unknown.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// A pool with an explicit thread budget (clamped to at least 1).
    /// Budgets above `available_parallelism()` are allowed — useful for
    /// exercising the parallel code paths deterministically in tests —
    /// but [`WorkerPool::new`] never exceeds the hardware.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: every `map` runs inline on the caller.
    #[must_use]
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// The thread budget (caller included).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`TaskScope`] over this pool's thread budget.
    ///
    /// Spawns `threads - 1` scoped OS threads for the duration of the
    /// call (none for a sequential pool); the calling thread executes `f`
    /// and participates in job execution whenever it waits inside
    /// [`TaskScope::map`].
    pub fn scope<'env, R>(&self, f: impl FnOnce(&TaskScope<'env>) -> R) -> R {
        let ts = TaskScope::new(self.threads);
        if self.threads <= 1 {
            return f(&ts);
        }
        std::thread::scope(|s| {
            for _ in 1..self.threads {
                s.spawn(|| ts.worker_loop());
            }
            // Shut the workers down even when `f` unwinds: without the
            // guard, a panicking closure would leave the worker threads
            // spinning on the condvar forever and `thread::scope` would
            // hang joining them instead of propagating the panic.
            struct ShutdownGuard<'a, 'env>(&'a TaskScope<'env>);
            impl Drop for ShutdownGuard<'_, '_> {
                fn drop(&mut self) {
                    self.0.shutdown.store(true, Ordering::SeqCst);
                    self.0.cv.notify_all();
                }
            }
            let _guard = ShutdownGuard(&ts);
            f(&ts)
        })
    }
}

/// Handle to a running pool scope: submit fan-outs with [`TaskScope::map`].
pub struct TaskScope<'env> {
    queue: Mutex<VecDeque<Job<'env>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    threads: usize,
    steals: AtomicUsize,
}

/// Decrements the pending counter even if the job panics, so helpers
/// waiting on the batch cannot hang.
struct CompletionGuard {
    pending: Arc<AtomicUsize>,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<'env> TaskScope<'env> {
    fn new(threads: usize) -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
            steals: AtomicUsize::new(0),
        }
    }

    /// The scope's thread budget (caller included).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total jobs executed by a thread other than their submitter since
    /// the scope started (a diagnostic; scheduling-dependent).
    #[must_use]
    pub fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// Dedicated worker-thread loop: run queued jobs until shutdown.
    ///
    /// Park waits (empty-queue condvar timeouts) are counted locally and
    /// published as the `pool.parks` counter at shutdown, so the loop
    /// itself emits no telemetry.
    fn worker_loop(&self) {
        let mut parks = 0u64;
        let mut guard = self.queue.lock().expect("pool queue poisoned");
        loop {
            if let Some(job) = guard.pop_front() {
                drop(guard);
                job(self);
                // Wake helpers that may be waiting on this job's batch.
                self.cv.notify_all();
                guard = self.queue.lock().expect("pool queue poisoned");
            } else if self.shutdown.load(Ordering::SeqCst) {
                drop(guard);
                fta_obs::counter("pool.parks", parks);
                return;
            } else {
                parks += 1;
                guard = self
                    .cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("pool queue poisoned")
                    .0;
            }
        }
    }

    /// Runs every job and returns their results in input order.
    ///
    /// The calling thread participates: while its batch is outstanding it
    /// keeps executing queued jobs (from this batch or any other), so
    /// nested `map` calls compose without spawning threads or
    /// deadlocking. With a single-threaded scope the jobs simply run
    /// inline, in order.
    pub fn map<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce(&TaskScope<'env>) -> T + Send + 'env,
    {
        self.map_with_steals(jobs).0
    }

    /// Cost-aware [`TaskScope::map`]: runs every `(cost, job)` pair and
    /// returns results in input order, but *enqueues* the jobs in
    /// descending cost order (ties to the lower input index, so
    /// scheduling is deterministic). Queued jobs are picked up FIFO, so
    /// the heaviest job starts first and cheap jobs backfill the other
    /// threads instead of a heavy straggler serializing the tail of the
    /// batch. Costs are hints: they affect wall-clock only, never
    /// results.
    pub fn map_prioritized<T, F>(&self, jobs: Vec<(u64, F)>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce(&TaskScope<'env>) -> T + Send + 'env,
    {
        let n = jobs.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| jobs[b].0.cmp(&jobs[a].0).then(a.cmp(&b)));
        let mut slots: Vec<Option<F>> = jobs.into_iter().map(|(_, f)| Some(f)).collect();
        let by_cost: Vec<F> = order
            .iter()
            .map(|&i| slots[i].take().expect("each job is scheduled once"))
            .collect();
        let results = self.map(by_cost);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (slot, value) in order.into_iter().zip(results) {
            out[slot] = Some(value);
        }
        out.into_iter()
            .map(|v| v.expect("every job returns exactly once"))
            .collect()
    }

    /// Like [`TaskScope::map`], additionally reporting how many of the
    /// batch's jobs were executed by a thread other than the caller.
    pub fn map_with_steals<T, F>(&self, jobs: Vec<F>) -> (Vec<T>, usize)
    where
        T: Send + 'env,
        F: FnOnce(&TaskScope<'env>) -> T + Send + 'env,
    {
        let n = jobs.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        if self.threads <= 1 || n == 1 {
            // Inline fast path: no queueing, no synchronization. Still
            // one batch as far as telemetry is concerned, so pool
            // counters exist even for single-threaded runs.
            fta_obs::counter("pool.batches", 1);
            return (jobs.into_iter().map(|job| job(self)).collect(), 0);
        }

        let submitter = std::thread::current().id();
        let pending = Arc::new(AtomicUsize::new(n));
        let batch_steals = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        let queue_depth;
        {
            let mut q = self.queue.lock().expect("pool queue poisoned");
            for (i, job) in jobs.into_iter().enumerate() {
                let tx = tx.clone();
                let pending = Arc::clone(&pending);
                let batch_steals = Arc::clone(&batch_steals);
                q.push_back(Box::new(move |ts: &TaskScope<'env>| {
                    let _guard = CompletionGuard { pending };
                    if std::thread::current().id() != submitter {
                        batch_steals.fetch_add(1, Ordering::Relaxed);
                        ts.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    // Panic isolation: a panicking job must not unwind
                    // through `worker_loop` — that would kill a scoped
                    // worker thread (and with it the whole scope). The
                    // payload travels back to the submitter, which
                    // re-raises it on its own thread, where higher-level
                    // quarantine logic (`catch_unwind` around a center
                    // solve) can contain it.
                    let out = catch_unwind(AssertUnwindSafe(|| job(ts)));
                    // A send can only fail if the submitter already gave
                    // up (panic unwinding); dropping the result is fine.
                    let _ = tx.send((i, out));
                }));
            }
            queue_depth = q.len();
            self.cv.notify_all();
        }
        drop(tx);
        // Emitted outside the queue lock: depth right after this batch
        // was enqueued (max-aggregated → peak backlog of the run).
        fta_obs::gauge_max("pool.queue_depth", queue_depth as u64);
        fta_obs::counter("pool.batches", 1);

        // Help until the whole batch has completed.
        while pending.load(Ordering::Acquire) > 0 {
            let popped = {
                let q = self.queue.lock().expect("pool queue poisoned");
                let mut q = q;
                match q.pop_front() {
                    Some(job) => Some(job),
                    None => {
                        // Nothing to steal: the remaining jobs are running
                        // elsewhere. Wait (with a timeout covering missed
                        // wake-ups) for a completion or a new sub-job.
                        let _ = self
                            .cv
                            .wait_timeout(q, Duration::from_micros(200))
                            .expect("pool queue poisoned");
                        None
                    }
                }
            };
            if let Some(job) = popped {
                job(self);
                self.cv.notify_all();
            }
        }

        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        for (i, value) in rx.try_iter() {
            slots[i] = Some(value);
        }
        let mut results = Vec::with_capacity(n);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut panics = 0u64;
        for s in slots {
            match s.expect("every pool job reports exactly one result") {
                Ok(value) => results.push(value),
                Err(payload) => {
                    panics += 1;
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            // The panic crossed threads without killing the scope — record
            // it, then re-raise on the submitting thread. The remaining
            // jobs of the batch all completed (or panicked) before this
            // point, so no worker is left holding batch state.
            fta_obs::counter("pool.panics_caught", panics);
            resume_unwind(payload);
        }
        (results, batch_steals.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::with_threads(threads);
            let out = pool.scope(|ts| {
                let jobs: Vec<_> = (0..64).map(|i| move |_: &TaskScope<'_>| i * i).collect();
                ts.map(jobs)
            });
            assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_prioritized_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::with_threads(threads);
            let out = pool.scope(|ts| {
                // Costs deliberately anti-correlated with index so the
                // execution order differs from the input order.
                let jobs: Vec<_> = (0..64)
                    .map(|i| (64 - i, move |_: &TaskScope<'_>| i * i))
                    .collect();
                ts.map_prioritized(jobs)
            });
            assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_prioritized_runs_heaviest_first() {
        // Sequential scope: jobs run inline in enqueue order, so the
        // observed execution order IS the scheduling order.
        let pool = WorkerPool::sequential();
        let ran = std::sync::Mutex::new(Vec::new());
        pool.scope(|ts| {
            let jobs: Vec<_> = [3u64, 9, 1, 9]
                .into_iter()
                .enumerate()
                .map(|(i, cost)| {
                    let ran = &ran;
                    (cost, move |_: &TaskScope<'_>| {
                        ran.lock().unwrap().push(i);
                    })
                })
                .collect();
            ts.map_prioritized(jobs);
        });
        // Descending cost, ties to the lower index: 9(i=1), 9(i=3), 3, 1.
        assert_eq!(*ran.lock().unwrap(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn map_borrows_environment() {
        let data: Vec<u64> = (0..100).collect();
        let pool = WorkerPool::with_threads(4);
        let sums = pool.scope(|ts| {
            let jobs: Vec<_> = data
                .chunks(7)
                .map(|chunk| move |_: &TaskScope<'_>| chunk.iter().sum::<u64>())
                .collect();
            ts.map(jobs)
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        let pool = WorkerPool::with_threads(3);
        let out = pool.scope(|ts| {
            let jobs: Vec<_> = (0..6u64)
                .map(|i| {
                    move |ts: &TaskScope<'_>| {
                        let inner: Vec<_> = (0..5u64)
                            .map(|j| move |_: &TaskScope<'_>| i * 10 + j)
                            .collect();
                        ts.map(inner).into_iter().sum::<u64>()
                    }
                })
                .collect();
            ts.map(jobs)
        });
        let expected: Vec<u64> = (0..6u64)
            .map(|i| (0..5).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn sequential_pool_runs_inline_without_spawning() {
        let pool = WorkerPool::sequential();
        assert_eq!(pool.threads(), 1);
        let main_id = std::thread::current().id();
        let ids = pool.scope(|ts| {
            let jobs: Vec<_> = (0..4)
                .map(|_| move |_: &TaskScope<'_>| std::thread::current().id())
                .collect();
            ts.map(jobs)
        });
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn default_pool_is_bounded_by_hardware() {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert!(WorkerPool::new().threads() <= hw);
        assert_eq!(WorkerPool::with_threads(0).threads(), 1);
    }

    #[test]
    fn steal_counters_are_consistent() {
        let pool = WorkerPool::with_threads(4);
        let (results, steals) = pool.scope(|ts| {
            let jobs: Vec<_> = (0..32u64)
                .map(|i| {
                    move |_: &TaskScope<'_>| {
                        // Enough work for other workers to wake and steal.
                        std::hint::black_box((0..2_000).fold(i, |a, b| a ^ b))
                    }
                })
                .collect();
            let r = ts.map_with_steals(jobs);
            assert!(ts.steals() >= r.1);
            r
        });
        assert_eq!(results.len(), 32);
        assert!(steals <= 32);
    }

    #[test]
    fn deterministic_results_across_thread_counts() {
        let reference: Vec<u64> = (0..40).map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 5] {
            let pool = WorkerPool::with_threads(threads);
            let out = pool.scope(|ts| {
                let jobs: Vec<_> = (0..40u64)
                    .map(|i| move |_: &TaskScope<'_>| i * 7 + 1)
                    .collect();
                ts.map(jobs)
            });
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn panicking_job_propagates_to_submitter_without_killing_scope() {
        for threads in [2, 4] {
            let pool = WorkerPool::with_threads(threads);
            let out = pool.scope(|ts| {
                // First batch: one job panics. The panic must surface at
                // the `map` callsite (this thread), not abort the scope.
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    let jobs: Vec<_> = (0..8u64)
                        .map(|i| {
                            move |_: &TaskScope<'_>| {
                                assert!(i != 3, "injected job failure");
                                i
                            }
                        })
                        .collect();
                    ts.map(jobs)
                }));
                assert!(caught.is_err(), "the batch panic must propagate");
                // The scope is still healthy: a second batch completes.
                let jobs: Vec<_> = (0..8u64).map(|i| move |_: &TaskScope<'_>| i * 2).collect();
                ts.map(jobs)
            });
            assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn empty_map_returns_empty() {
        let pool = WorkerPool::with_threads(2);
        let out: Vec<u8> = pool.scope(|ts| ts.map(Vec::<fn(&TaskScope<'_>) -> u8>::new()));
        assert!(out.is_empty());
    }
}

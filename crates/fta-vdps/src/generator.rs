//! The C-VDPS dynamic program (Algorithm 1 of the paper).

use crate::config::VdpsConfig;
use crate::grid::NeighborIndex;
use fta_core::budget::CancelToken;
use fta_core::instance::{CenterView, DpAggregate, Instance};
use fta_core::route::Route;
use fta_core::DeliveryPointId;
use std::collections::HashMap;

/// Optional budget controls for one generation run, checked at *layer*
/// boundaries of the subset DP. The default (`GenControl::NONE`) performs
/// no checks at all, keeping the unbudgeted path bit-identical to builds
/// that predate budgets.
///
/// When a control trips, generation *truncates*: the layers built so far
/// are emitted as a complete, valid (just smaller) pool — every strategy
/// in it is still deadline-feasible — and
/// [`GenerationStats::truncations`] records the cut.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenControl<'a> {
    /// Cooperative cancellation (wall-clock deadline or external cancel).
    pub token: Option<&'a CancelToken>,
    /// Deterministic cap on materialised DP states: once the completed
    /// layers hold at least this many states, no further layer is built.
    /// Independent of wall-clock and thread count, unlike `token`.
    pub max_states: Option<usize>,
}

impl GenControl<'_> {
    /// No controls: generation runs exactly as unbudgeted.
    pub const NONE: GenControl<'static> = GenControl {
        token: None,
        max_states: None,
    };

    /// Whether generation should stop before building the next layer,
    /// given the number of DP states materialised so far.
    #[must_use]
    pub fn should_stop(&self, states_so_far: usize) -> bool {
        self.max_states.is_some_and(|cap| states_so_far >= cap)
            || self.token.is_some_and(CancelToken::is_cancelled)
    }
}

/// One center-origin Valid Delivery Point Set: the set itself (as a bitmask
/// over the [`CenterView`]'s local delivery-point indices) and the
/// minimum-travel-time route that certifies its validity.
///
/// The route sits behind an [`Arc`](std::sync::Arc) so that materialising
/// an [`Assignment`](fta_core::Assignment) from the pool (and every
/// downstream consumer of assigned routes) shares the one allocation made
/// at generation time instead of deep-copying the stop vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Vdps {
    /// Bitmask over local delivery-point indices (`view.dps` order).
    pub mask: u128,
    /// The minimum-travel-time deadline-feasible visiting sequence.
    pub route: std::sync::Arc<Route>,
}

impl Vdps {
    /// Number of delivery points in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Whether the set contains no delivery points. Generator output always
    /// has at least one (the DP recursion starts from singletons), but a
    /// hand-built `Vdps { mask: 0, .. }` must report empty — this used to
    /// hardcode `false`, contradicting [`Vdps::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }
}

/// Counters describing one generator run, used by the benchmark harness to
/// compare pruned and unpruned generation (the paper's Figures 2–3 CPU-time
/// panels) and, since the flat engine landed, to observe where generation
/// time goes and how much intra-center parallelism contributed.
///
/// The first five fields are *work counters*: they describe the dynamic
/// program itself and are identical across engines and thread counts (see
/// [`GenerationStats::work_counters`]). The remaining fields are timing and
/// parallelism diagnostics and naturally vary run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenerationStats {
    /// Dynamic-program states (`(Q, dp_j)` pairs) materialised.
    pub states: usize,
    /// Candidate extensions examined (the inner loop of Equation 4).
    pub extensions_tried: usize,
    /// Extensions cut by the ε distance constraint.
    pub pruned_by_distance: usize,
    /// Extensions cut by a task deadline.
    pub pruned_by_deadline: usize,
    /// Number of C-VDPSs produced.
    pub vdps_count: usize,
    /// Wall time spent in the subset dynamic program (state expansion,
    /// dedup, frontier construction), nanoseconds.
    pub dp_nanos: u64,
    /// Wall time spent reconstructing the minimum-travel routes from the
    /// finished frontiers, nanoseconds.
    pub route_nanos: u64,
    /// Frontier-expansion chunks scheduled (1 per layer when sequential;
    /// 0 for the hash-map engine, which does not chunk).
    pub chunks: usize,
    /// Expansion/merge jobs of this generation executed by a pool thread
    /// other than the one that submitted them (work-stealing events).
    pub steals: usize,
    /// During parallel shard merges: number of `(mask)` groups that were
    /// discovered by more than one expansion chunk and had to be folded
    /// together (each extra occurrence counts once).
    pub merge_collisions: usize,
    /// Wall time spent in the parallel shard-merge phase (a subset of
    /// [`GenerationStats::dp_nanos`]), nanoseconds. 0 for sequential and
    /// hash-map runs, which never shard.
    pub merge_nanos: u64,
    /// Generation runs that stopped at a layer boundary because a
    /// [`GenControl`] tripped (0 or 1 per center; additive under
    /// [`GenerationStats::merge`]). A truncated pool is still valid —
    /// it just lacks the larger subsets.
    pub truncations: usize,
}

impl GenerationStats {
    /// Accumulates another run's counters (used when aggregating over
    /// distribution centers).
    pub fn merge(&mut self, other: &GenerationStats) {
        self.states += other.states;
        self.extensions_tried += other.extensions_tried;
        self.pruned_by_distance += other.pruned_by_distance;
        self.pruned_by_deadline += other.pruned_by_deadline;
        self.vdps_count += other.vdps_count;
        self.dp_nanos += other.dp_nanos;
        self.route_nanos += other.route_nanos;
        self.chunks += other.chunks;
        self.steals += other.steals;
        self.merge_collisions += other.merge_collisions;
        self.merge_nanos += other.merge_nanos;
        self.truncations += other.truncations;
    }

    /// The engine-independent work counters
    /// `(states, extensions_tried, pruned_by_distance, pruned_by_deadline,
    /// vdps_count)` — equal across engines and thread counts for the same
    /// input, unlike the timing/parallelism diagnostics.
    #[must_use]
    pub fn work_counters(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.states,
            self.extensions_tried,
            self.pruned_by_distance,
            self.pruned_by_deadline,
            self.vdps_count,
        )
    }
}

/// Publishes one generation run's counters to the installed telemetry
/// recorder (no-op when none is installed). Called once per
/// center-generation by both engines, so the hot loops stay plain-field
/// counter arithmetic.
pub(crate) fn emit_generation_counters(stats: &GenerationStats) {
    if !fta_obs::enabled() {
        return;
    }
    fta_obs::counter("vdps.states", stats.states as u64);
    fta_obs::counter("vdps.extensions_tried", stats.extensions_tried as u64);
    fta_obs::counter("vdps.pruned_distance", stats.pruned_by_distance as u64);
    fta_obs::counter("vdps.pruned_deadline", stats.pruned_by_deadline as u64);
    fta_obs::counter("vdps.count", stats.vdps_count as u64);
    fta_obs::counter("vdps.chunks", stats.chunks as u64);
    fta_obs::counter("vdps.merge_collisions", stats.merge_collisions as u64);
    fta_obs::counter("pool.steals", stats.steals as u64);
    if stats.truncations > 0 {
        fta_obs::counter("vdps.truncated", stats.truncations as u64);
    }
}

/// A dynamic-program state: minimal arrival time at `last` over all
/// feasible orderings of the subset, plus the predecessor (`pre` in the
/// paper's Algorithm 1) for route reconstruction.
#[derive(Debug, Clone, Copy)]
struct State {
    arrival: f64,
    /// Local index of the previous delivery point; `u8::MAX` for the first.
    parent: u8,
}

/// Generates all C-VDPSs of one distribution center (Algorithm 1),
/// dispatching to the engine selected by [`VdpsConfig::engine`].
///
/// Returns the VDPS pool together with generation statistics. The pool is
/// ordered deterministically: by subset size, then by bitmask value —
/// identically for every engine.
///
/// # Panics
///
/// Panics if the center has more than 128 task-bearing delivery points
/// (the paper's instances have at most ~100 per center).
#[must_use]
pub fn generate_c_vdps(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
) -> (Vec<Vdps>, GenerationStats) {
    generate_c_vdps_in(instance, aggregates, view, config, None)
}

/// Like [`generate_c_vdps`], optionally running frontier expansion and
/// shard merges on an active worker-pool scope (flat engine only; the
/// hash-map oracle is always sequential).
///
/// # Panics
///
/// Panics if the center has more than 128 task-bearing delivery points.
#[must_use]
pub fn generate_c_vdps_in(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
    scope: Option<&crate::pool::TaskScope<'_>>,
) -> (Vec<Vdps>, GenerationStats) {
    generate_c_vdps_budgeted(instance, aggregates, view, config, scope, GenControl::NONE)
}

/// Like [`generate_c_vdps_in`], additionally honouring a [`GenControl`]:
/// the layer loop of either engine checks the control between DP layers
/// and truncates the pool when it trips (see [`GenControl`] for the
/// semantics). With `GenControl::NONE` the output is bit-identical to
/// [`generate_c_vdps_in`].
///
/// # Panics
///
/// Panics if the center has more than 128 task-bearing delivery points.
#[must_use]
pub fn generate_c_vdps_budgeted(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
    scope: Option<&crate::pool::TaskScope<'_>>,
    control: GenControl<'_>,
) -> (Vec<Vdps>, GenerationStats) {
    match config.engine {
        crate::config::VdpsEngine::Flat => crate::flat::generate_c_vdps_flat_budgeted(
            instance, aggregates, view, config, scope, control,
        ),
        crate::config::VdpsEngine::Hashmap => {
            generate_c_vdps_hashmap_budgeted(instance, aggregates, view, config, control)
        }
    }
}

/// The original per-layer `HashMap<(mask, last), State>` implementation of
/// Algorithm 1, kept as a correctness oracle next to [`crate::naive`]: the
/// flat engine must reproduce its pool (order included) and its work
/// counters exactly.
///
/// # Panics
///
/// Panics if the center has more than 128 task-bearing delivery points.
#[must_use]
pub fn generate_c_vdps_hashmap(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
) -> (Vec<Vdps>, GenerationStats) {
    generate_c_vdps_hashmap_budgeted(instance, aggregates, view, config, GenControl::NONE)
}

/// [`generate_c_vdps_hashmap`] with a [`GenControl`] checked between DP
/// layers.
///
/// # Panics
///
/// Panics if the center has more than 128 task-bearing delivery points.
#[must_use]
pub fn generate_c_vdps_hashmap_budgeted(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    config: &VdpsConfig,
    control: GenControl<'_>,
) -> (Vec<Vdps>, GenerationStats) {
    let dp_start = std::time::Instant::now();
    let n = view.dps.len();
    assert!(
        n <= 128,
        "center {} has {n} delivery points; the bitmask DP supports at most 128",
        view.center
    );
    let mut stats = GenerationStats::default();
    if n == 0 || config.max_len == 0 {
        return (Vec::new(), stats);
    }
    let center_u32 = view.center.index() as u32;
    let _generate_span = fta_obs::span_center("vdps.generate", center_u32);
    let dp_span = fta_obs::span_center("vdps.dp", center_u32);

    let dc = instance.centers[view.center.index()].location;
    let speed = instance.speed;

    // Center-local working arrays.
    let locs: Vec<_> = view
        .dps
        .iter()
        .map(|dp| instance.delivery_points[dp.index()].location)
        .collect();
    let expiry: Vec<f64> = view
        .dps
        .iter()
        .map(|dp| aggregates[dp.index()].earliest_expiry)
        .collect();
    let from_dc: Vec<f64> = locs.iter().map(|&l| dc.travel_time(l, speed)).collect();

    // Pairwise distances; n ≤ 128 keeps this at most 128 KiB.
    let dist = |i: usize, j: usize| locs[i].distance(locs[j]);

    // With ε pruning active, a grid index narrows each extension scan to
    // the actual ε-neighbours instead of all n delivery points.
    let neighbors = config.epsilon.map(|eps| NeighborIndex::build(&locs, eps));

    // Layer 1 (Algorithm 1, lines 2–5): singletons reachable before expiry.
    let mut layers: Vec<HashMap<(u128, u8), State>> = Vec::with_capacity(config.max_len);
    let mut first = HashMap::new();
    for j in 0..n {
        stats.extensions_tried += 1;
        if from_dc[j] <= expiry[j] {
            first.insert(
                (1u128 << j, j as u8),
                State {
                    arrival: from_dc[j],
                    parent: u8::MAX,
                },
            );
        } else {
            stats.pruned_by_deadline += 1;
        }
    }
    layers.push(first);

    // Layers 2..=max_len (Algorithm 1, lines 6–12). The budget control is
    // checked at layer granularity: completed layers always emit, so a
    // truncated run still yields a valid (smaller) pool.
    let mut states_so_far = layers[0].len();
    for len in 2..=config.max_len.min(n) {
        if control.should_stop(states_so_far) {
            stats.truncations = 1;
            break;
        }
        let mut next: HashMap<(u128, u8), State> = HashMap::new();
        for (&(mask, last), state) in &layers[len - 2] {
            let last = last as usize;
            let extend_to =
                |j: usize, next: &mut HashMap<(u128, u8), State>, stats: &mut GenerationStats| {
                    let arrival = state.arrival + dist(last, j) / speed;
                    if arrival > expiry[j] {
                        stats.pruned_by_deadline += 1;
                        return;
                    }
                    let key = (mask | (1u128 << j), j as u8);
                    let candidate = State {
                        arrival,
                        parent: last as u8,
                    };
                    next.entry(key)
                        .and_modify(|s| {
                            if candidate.arrival < s.arrival {
                                *s = candidate;
                            }
                        })
                        .or_insert(candidate);
                };
            match &neighbors {
                // ε pruning: only actual neighbours are extension
                // candidates; the rest count as distance-pruned.
                Some(index) => {
                    let free = n - mask.count_ones() as usize;
                    let mut considered = 0usize;
                    for &j in index.neighbors(last) {
                        let j = usize::from(j);
                        if mask & (1u128 << j) != 0 {
                            continue;
                        }
                        considered += 1;
                        extend_to(j, &mut next, &mut stats);
                    }
                    stats.extensions_tried += free;
                    stats.pruned_by_distance += free - considered;
                }
                None => {
                    for j in 0..n {
                        if mask & (1u128 << j) != 0 {
                            continue;
                        }
                        stats.extensions_tried += 1;
                        extend_to(j, &mut next, &mut stats);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        states_so_far += next.len();
        layers.push(next);
    }
    stats.states = layers.iter().map(HashMap::len).sum();

    // Per mask, select the ending with minimal total travel (the paper keeps
    // only the minimum-travel-time sequence per VDPS) and reconstruct the
    // route via the `parent` pointers (Algorithm 1, line 13).
    let mut best_per_mask: HashMap<u128, (u8, f64)> = HashMap::new();
    for layer in &layers {
        for (&(mask, last), state) in layer {
            best_per_mask
                .entry(mask)
                .and_modify(|(l, a)| {
                    if state.arrival < *a {
                        *l = last;
                        *a = state.arrival;
                    }
                })
                .or_insert((last, state.arrival));
        }
    }

    let mut masks: Vec<u128> = best_per_mask.keys().copied().collect();
    masks.sort_by_key(|m| (m.count_ones(), *m));
    stats.dp_nanos = u64::try_from(dp_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    drop(dp_span);

    let route_span = fta_obs::span_center("vdps.routes", center_u32);
    let route_start = std::time::Instant::now();
    let mut pool = Vec::with_capacity(masks.len());
    for mask in masks {
        let (mut last, _) = best_per_mask[&mask];
        // Walk parents backwards through the layers.
        let mut order_rev: Vec<u8> = Vec::with_capacity(mask.count_ones() as usize);
        let mut cur_mask = mask;
        loop {
            order_rev.push(last);
            let layer = &layers[cur_mask.count_ones() as usize - 1];
            let state = layer[&(cur_mask, last)];
            if state.parent == u8::MAX {
                break;
            }
            cur_mask &= !(1u128 << last);
            last = state.parent;
        }
        order_rev.reverse();
        let dps: Vec<DeliveryPointId> = order_rev
            .into_iter()
            .map(|local| view.dps[local as usize])
            .collect();
        let route = Route::build(instance, aggregates, view.center, dps)
            .expect("DP states only reference valid delivery points");
        debug_assert!(
            route.is_center_origin_valid(),
            "the DP must only emit deadline-feasible sequences"
        );
        pool.push(Vdps {
            mask,
            route: std::sync::Arc::new(route),
        });
    }
    stats.route_nanos = u64::try_from(route_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    drop(route_span);
    stats.vdps_count = pool.len();
    emit_generation_counters(&stats);
    (pool, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use fta_core::geometry::Point;
    use fta_core::ids::{CenterId, TaskId, WorkerId};

    /// dc at origin; dps on a line at x = 1, 2, 3; one task each, generous
    /// deadlines; speed 1.
    fn line_instance(expiries: &[f64]) -> Instance {
        let dps: Vec<DeliveryPoint> = (0..expiries.len())
            .map(|i| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new((i + 1) as f64, 0.0),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = expiries
            .iter()
            .enumerate()
            .map(|(i, &e)| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: e,
                reward: 1.0,
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(0.0, 0.0),
                max_dp: 3,
                center: CenterId(0),
            }],
            dps,
            tasks,
            1.0,
        )
        .unwrap()
    }

    fn run(inst: &Instance, cfg: &VdpsConfig) -> (Vec<Vdps>, GenerationStats) {
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        generate_c_vdps(inst, &aggs, &views[0], cfg)
    }

    #[test]
    fn generates_all_feasible_subsets_without_deadlines() {
        let inst = line_instance(&[100.0, 100.0, 100.0]);
        let (pool, stats) = run(&inst, &VdpsConfig::unpruned(3));
        // All 7 non-empty subsets of 3 dps are feasible.
        assert_eq!(pool.len(), 7);
        assert_eq!(stats.vdps_count, 7);
        // Masks are unique.
        let mut masks: Vec<u128> = pool.iter().map(|v| v.mask).collect();
        masks.dedup();
        assert_eq!(masks.len(), 7);
    }

    #[test]
    fn routes_have_minimal_travel_time() {
        let inst = line_instance(&[100.0, 100.0, 100.0]);
        let (pool, _) = run(&inst, &VdpsConfig::unpruned(3));
        let full = pool.iter().find(|v| v.mask == 0b111).unwrap();
        // Optimal route on a line: 1 → 2 → 3, total 3.0.
        assert_eq!(
            full.route.dps(),
            &[DeliveryPointId(0), DeliveryPointId(1), DeliveryPointId(2)]
        );
        assert!((full.route.travel_from_dc() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tight_deadline_forces_detour_ordering() {
        // dp2 (at x=3) expires at 3.0: reachable only as dp0→dp1→dp2 or
        // directly; dp0 (x=1) expires at 1.0: must be first.
        let inst = line_instance(&[1.0, 100.0, 3.0]);
        let (pool, _) = run(&inst, &VdpsConfig::unpruned(3));
        let full = pool.iter().find(|v| v.mask == 0b111).unwrap();
        assert_eq!(
            full.route.dps(),
            &[DeliveryPointId(0), DeliveryPointId(1), DeliveryPointId(2)]
        );
    }

    #[test]
    fn infeasible_subsets_are_absent() {
        // dp1 (x=2) expires at 1.5 → singleton {dp1} infeasible (travel 2),
        // and any superset containing dp1 likewise.
        let inst = line_instance(&[100.0, 1.5, 100.0]);
        let (pool, _) = run(&inst, &VdpsConfig::unpruned(3));
        assert!(pool.iter().all(|v| v.mask & 0b010 == 0));
        // {dp0}, {dp2}, {dp0,dp2} remain.
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn epsilon_pruning_cuts_long_hops() {
        let inst = line_instance(&[100.0, 100.0, 100.0]);
        // Hops between consecutive line points are 1.0; dp0→dp2 is 2.0.
        let (pool, stats) = run(&inst, &VdpsConfig::pruned(1.0, 3));
        // {dp0,dp2} requires a hop of 2.0 (dc→dp2 direct then dp2→dp0, or
        // dp0→dp2) → pruned. {dp0,dp1},{dp1,dp2},{dp0,dp1,dp2} survive.
        let masks: Vec<u128> = pool.iter().map(|v| v.mask).collect();
        assert!(masks.contains(&0b011));
        assert!(masks.contains(&0b110));
        assert!(masks.contains(&0b111));
        assert!(!masks.contains(&0b101));
        assert!(stats.pruned_by_distance > 0);
    }

    #[test]
    fn pruning_never_invents_vdps() {
        let inst = line_instance(&[2.0, 3.5, 100.0]);
        let (unpruned, _) = run(&inst, &VdpsConfig::unpruned(3));
        let (pruned, _) = run(&inst, &VdpsConfig::pruned(1.0, 3));
        let unpruned_masks: std::collections::HashSet<u128> =
            unpruned.iter().map(|v| v.mask).collect();
        for v in &pruned {
            assert!(unpruned_masks.contains(&v.mask));
        }
    }

    #[test]
    fn max_len_caps_subset_size() {
        let inst = line_instance(&[100.0, 100.0, 100.0]);
        let (pool, _) = run(&inst, &VdpsConfig::unpruned(2));
        assert!(pool.iter().all(|v| v.len() <= 2));
        assert_eq!(pool.len(), 6); // 3 singletons + 3 pairs
    }

    #[test]
    fn is_empty_agrees_with_len() {
        let inst = line_instance(&[100.0, 100.0]);
        let (pool, _) = run(&inst, &VdpsConfig::unpruned(2));
        assert!(!pool.is_empty());
        for v in &pool {
            assert!(!v.is_empty(), "generated VDPS must not be empty");
            assert_eq!(v.len(), v.mask.count_ones() as usize);
        }
        // Regression: a zero-mask Vdps must report empty — `is_empty()`
        // used to hardcode `false`, contradicting `len() == 0`. (Routes
        // themselves cannot be empty, so reuse a generated one; emptiness
        // is defined by the mask alone.)
        let empty = Vdps {
            mask: 0,
            route: pool[0].route.clone(),
        };
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_center_produces_nothing() {
        let mut inst = line_instance(&[100.0]);
        inst.tasks.clear();
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let (pool, stats) = generate_c_vdps(&inst, &aggs, &views[0], &VdpsConfig::default());
        assert!(pool.is_empty());
        assert_eq!(stats.vdps_count, 0);
    }

    #[test]
    fn stats_count_deadline_pruning() {
        let inst = line_instance(&[0.5, 0.5, 0.5]);
        let (pool, stats) = run(&inst, &VdpsConfig::unpruned(3));
        assert!(pool.is_empty());
        assert_eq!(stats.pruned_by_deadline, 3);
    }

    #[test]
    #[should_panic(expected = "at most 128")]
    fn rejects_centers_beyond_bitmask_capacity() {
        use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
        use fta_core::ids::{CenterId, TaskId, WorkerId};
        let n = 129;
        let dps: Vec<DeliveryPoint> = (0..n)
            .map(|i| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new(i as f64 * 0.01, 0.0),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = (0..n)
            .map(|i| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: 100.0,
                reward: 1.0,
            })
            .collect();
        let inst = Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(0.0, 0.0),
                max_dp: 1,
                center: CenterId(0),
            }],
            dps,
            tasks,
            1.0,
        )
        .unwrap();
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let _ = generate_c_vdps(&inst, &aggs, &views[0], &VdpsConfig::unpruned(1));
    }

    #[test]
    fn grid_index_and_linear_scan_agree_at_boundary_epsilon() {
        // ε exactly equal to an inter-point distance: the grid index and
        // the hop filter must treat the boundary identically (inclusive).
        let inst = line_instance(&[100.0, 100.0, 100.0]);
        let (pool_a, _) = run(&inst, &VdpsConfig::pruned(1.0, 3));
        // 1.0 is the exact hop length on the line.
        assert!(pool_a.iter().any(|v| v.len() == 3), "chains of 3 must form");
    }

    #[test]
    fn max_len_zero_generates_nothing() {
        let inst = line_instance(&[10.0]);
        let aggs = inst.dp_aggregates();
        let views = inst.center_views();
        let (pool, stats) = generate_c_vdps(&inst, &aggs, &views[0], &VdpsConfig::unpruned(0));
        assert!(pool.is_empty());
        assert_eq!(stats.states, 0);
    }

    #[test]
    fn deterministic_output_order() {
        let inst = line_instance(&[10.0, 10.0, 10.0]);
        let (a, _) = run(&inst, &VdpsConfig::unpruned(3));
        let (b, _) = run(&inst, &VdpsConfig::unpruned(3));
        assert_eq!(a, b);
        // Ordered by size then mask.
        let sizes: Vec<usize> = a.iter().map(Vdps::len).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }
}

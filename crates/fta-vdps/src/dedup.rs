//! The flat engine's open-addressed mask-deduplication table.
//!
//! One expansion chunk funnels every candidate extension through a
//! `u128 mask → group` table: the first sighting of a mask allocates a
//! dense group of DP slots, later sightings relax the existing slots.
//! This used to live inside `flat.rs` as `ShardTable`; it is split out
//! (and its probe loop rewritten) so the calibration bench can measure
//! it head-to-head against the scalar reference and so the strategy
//! layer can share the prefix-mask rank table.
//!
//! Three micro-structural changes over the PR-2 table:
//!
//! * **Limb-split keys, batched probe.** Keys are stored as separate
//!   `lo`/`hi` `u64` limb arrays. A probe walks the cluster
//!   [`PROBE_LANES`] buckets at a time: per lane, *match* is
//!   `((lo ^ m_lo) | (hi ^ m_hi)) == 0` and *empty* is
//!   `(lo | hi) == 0` (a VDPS mask is never 0), both reduced into one
//!   stop bitmap with no branch per lane — consecutive buckets share
//!   cache lines, so the extra lanes are nearly free and clustered
//!   misses stop costing a mispredict each.
//! * **Stored folds.** The 64-bit fold of each group's mask is computed
//!   once at first insertion and kept (`folds`), so a rehash re-inserts
//!   every group without recomputing `fold_mask` — and surfaces how
//!   often that happens as the `vdps.dedup_rehashes` counter next to
//!   `vdps.dedup_probes`.
//! * **Precomputed prefix masks.** [`rank`] indexes a compile-time
//!   table of `(1 << j) - 1` prefixes instead of materialising the
//!   wide shift in the inner relax loop.
//!
//! Bucket count, hash function, and probe order are unchanged, so probe
//! sequences — and the `vdps.dedup_probes` values observability tests
//! see — are identical to the historical table.

use crate::arena;

/// Buckets examined per probe iteration. Four buckets are 32 bytes of
/// each limb array — half a cache line per array.
pub const PROBE_LANES: usize = 4;

/// Compile-time table of prefix masks: `PREFIX_MASK[j] == (1 << j) - 1`.
pub const PREFIX_MASK: [u128; 128] = {
    let mut t = [0u128; 128];
    let mut j = 1;
    while j < 128 {
        t[j] = (t[j - 1] << 1) | 1;
        j += 1;
    }
    t
};

/// Compile-time table of single-bit masks: `BIT[j] == 1 << j`.
pub const BIT: [u128; 128] = {
    let mut t = [0u128; 128];
    let mut j = 0;
    while j < 128 {
        t[j] = 1u128 << j;
        j += 1;
    }
    t
};

/// Number of set bits of `mask` strictly below bit `j` — the dense slot
/// index of member `j` within its mask group.
#[inline]
#[must_use]
pub fn rank(mask: u128, j: usize) -> usize {
    (mask & PREFIX_MASK[j]).count_ones() as usize
}

/// One dynamic-program slot: minimal arrival time at the slot's member
/// over all feasible orderings, plus the predecessor (`pre`) index.
/// `arrival == f64::INFINITY` marks an empty slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    /// Minimal arrival time at this member.
    pub arrival: f64,
    /// Center-local index of the predecessor member (`u8::MAX` = none).
    pub parent: u8,
}

/// The empty-slot sentinel.
pub const EMPTY: Slot = Slot {
    arrival: f64::INFINITY,
    parent: u8::MAX,
};

impl Slot {
    /// The deterministic relaxation order: smaller arrival wins; on exact
    /// ties the smaller predecessor index wins. Min under this order is
    /// associative + commutative, which is what makes chunked/sharded
    /// merging order-independent.
    #[inline]
    #[must_use]
    pub fn beats(&self, other: &Slot) -> bool {
        self.arrival < other.arrival
            || (self.arrival == other.arrival && self.parent < other.parent)
    }
}

/// Xor-fold of a mask's limbs; the high half is mixed first so masks
/// differing only in high bits don't collide into identical low-bit
/// patterns.
#[inline]
#[must_use]
pub fn fold_mask(mask: u128) -> u64 {
    (mask as u64) ^ ((mask >> 64) as u64).wrapping_mul(0xA24B_AED4_963E_E407)
}

/// Inline multiply-shift bucket for a power-of-two table of `1 << bits`,
/// applied to an already-folded key.
#[inline]
fn bucket_of_fold(fold: u64, bits: u32) -> usize {
    (fold.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - bits)) as usize
}

/// Open-addressed `u128 mask → group index` table with dense slot
/// storage — the dedup structure of one expansion chunk.
pub struct DedupTable {
    size: usize,
    bits: u32,
    key_lo: Vec<u64>,
    key_hi: Vec<u64>,
    vals: Vec<u32>,
    /// Group masks in discovery order.
    masks: Vec<u128>,
    /// Fold of each group's mask, stored so rehashes never re-fold.
    folds: Vec<u64>,
    /// `masks.len() * size` slots, group-major.
    slots: Vec<Slot>,
    probes: u64,
    rehashes: u64,
}

impl DedupTable {
    /// A fresh table sized for `expected` groups of `size` slots each,
    /// with buffers allocated directly (bench / test entry point).
    #[must_use]
    pub fn with_expected(expected: usize, size: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        Self {
            size,
            bits: cap.trailing_zeros(),
            key_lo: vec![0u64; cap],
            key_hi: vec![0u64; cap],
            vals: vec![0u32; cap],
            masks: Vec::with_capacity(expected),
            folds: Vec::with_capacity(expected),
            slots: Vec::with_capacity(expected * size),
            probes: 0,
            rehashes: 0,
        }
    }

    /// Like [`DedupTable::with_expected`], but every buffer is taken from
    /// the calling thread's generation arena.
    #[must_use]
    pub(crate) fn from_arena(expected: usize, size: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        let (mut key_lo, mut key_hi, vals, masks, folds, slots) = arena::with(|a| {
            (
                a.folds.take(cap),
                a.folds.take(cap),
                a.indices.take(cap),
                a.masks.take(expected),
                a.folds.take(expected),
                a.slots.take(expected * size),
            )
        });
        key_lo.resize(cap, 0);
        key_hi.resize(cap, 0);
        let mut table = Self {
            size,
            bits: cap.trailing_zeros(),
            key_lo,
            key_hi,
            vals,
            masks,
            folds,
            slots,
            probes: 0,
            rehashes: 0,
        };
        table.vals.resize(cap, 0);
        table
    }

    /// Returns every buffer to the calling thread's generation arena.
    pub(crate) fn recycle(self) {
        arena::with(|a| {
            a.folds.put(self.key_lo);
            a.folds.put(self.key_hi);
            a.indices.put(self.vals);
            a.masks.put(self.masks);
            a.folds.put(self.folds);
            a.slots.put(self.slots);
        });
    }

    /// Number of distinct masks inserted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// True when no mask has been inserted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Probe steps taken by [`DedupTable::relax`] lookups (one per
    /// bucket logically examined, hit or miss) — the clustering
    /// diagnostic surfaced as `vdps.dedup_probes`.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Number of table rehashes (capacity doublings), surfaced as
    /// `vdps.dedup_rehashes`.
    #[must_use]
    pub fn rehashes(&self) -> u64 {
        self.rehashes
    }

    fn grow(&mut self) {
        self.rehashes += 1;
        let cap = self.key_lo.len() * 2;
        self.bits = cap.trailing_zeros();
        self.key_lo.clear();
        self.key_lo.resize(cap, 0);
        self.key_hi.clear();
        self.key_hi.resize(cap, 0);
        self.vals.clear();
        self.vals.resize(cap, 0);
        // Re-insert from the stored folds: no fold_mask recomputation,
        // and no key comparisons — every group is known distinct, so the
        // probe only needs the first empty bucket.
        for (g, (&mask, &fold)) in self.masks.iter().zip(&self.folds).enumerate() {
            let mut idx = bucket_of_fold(fold, self.bits);
            while self.key_lo[idx] | self.key_hi[idx] != 0 {
                idx = (idx + 1) & (cap - 1);
            }
            self.key_lo[idx] = mask as u64;
            self.key_hi[idx] = (mask >> 64) as u64;
            self.vals[idx] = g as u32;
        }
    }

    /// Inserts or relaxes the state of `mask` at slot `rank` with
    /// `cand`. `rank` must be `rank(mask, j)` of the ending member `j`.
    #[inline]
    pub fn relax(&mut self, mask: u128, rank: usize, cand: Slot) {
        debug_assert!(mask != 0, "a VDPS mask is never empty");
        debug_assert!(rank < self.size);
        // Keep load factor under 3/4.
        if (self.masks.len() + 1) * 4 >= self.key_lo.len() * 3 {
            self.grow();
        }
        let cap_mask = self.key_lo.len() - 1;
        let m_lo = mask as u64;
        let m_hi = (mask >> 64) as u64;
        let fold = fold_mask(mask);
        let mut idx = bucket_of_fold(fold, self.bits);
        loop {
            // Examine PROBE_LANES consecutive buckets branch-free: build
            // one stop bitmap (match or empty per lane), branch once.
            let mut stop = 0u32;
            let mut hit = 0u32;
            for k in 0..PROBE_LANES {
                let i = (idx + k) & cap_mask;
                let lo = self.key_lo[i];
                let hi = self.key_hi[i];
                let matched = ((lo ^ m_lo) | (hi ^ m_hi)) == 0;
                let empty = (lo | hi) == 0;
                stop |= u32::from(matched | empty) << k;
                hit |= u32::from(matched) << k;
            }
            if stop != 0 {
                let lane = stop.trailing_zeros();
                self.probes += u64::from(lane) + 1;
                let i = (idx + lane as usize) & cap_mask;
                if hit & (1 << lane) != 0 {
                    let slot = &mut self.slots[self.vals[i] as usize * self.size + rank];
                    if cand.beats(slot) {
                        *slot = cand;
                    }
                } else {
                    let group = self.masks.len() as u32;
                    self.key_lo[i] = m_lo;
                    self.key_hi[i] = m_hi;
                    self.vals[i] = group;
                    self.masks.push(mask);
                    self.folds.push(fold);
                    self.slots.resize(self.slots.len() + self.size, EMPTY);
                    self.slots[group as usize * self.size + rank] = cand;
                }
                return;
            }
            self.probes += PROBE_LANES as u64;
            idx = (idx + PROBE_LANES) & cap_mask;
        }
    }

    /// Drains the table into `(out_masks, out_slots)` sorted ascending
    /// by mask, recycling its own buffers into the generation arena.
    /// The outputs are appended to (callers pass cleared buffers).
    pub(crate) fn drain_sorted_recycle(self, out_masks: &mut Vec<u128>, out_slots: &mut Vec<Slot>) {
        let len = self.masks.len();
        let mut order: Vec<u32> = arena::with(|a| a.indices.take(len));
        order.extend(0..len as u32);
        order.sort_unstable_by_key(|&g| self.masks[g as usize]);
        out_masks.reserve(len);
        out_slots.reserve(len * self.size);
        for &g in &order {
            let g = g as usize;
            out_masks.push(self.masks[g]);
            out_slots.extend_from_slice(&self.slots[g * self.size..(g + 1) * self.size]);
        }
        arena::with(|a| a.indices.put(order));
        self.recycle();
    }

    /// Consumes the table into freshly allocated `(masks, slots)` sorted
    /// ascending by mask (bench / test entry point).
    #[must_use]
    pub fn into_sorted(self) -> (Vec<u128>, Vec<Slot>) {
        let mut masks = Vec::new();
        let mut slots = Vec::new();
        self.drain_sorted_recycle(&mut masks, &mut slots);
        (masks, slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_bit_tables_match_shifts() {
        for j in 0..128usize {
            assert_eq!(PREFIX_MASK[j], (1u128 << j).wrapping_sub(1));
            assert_eq!(BIT[j], 1u128 << j);
        }
        // j = 128 would be the full mask; the table stops at 127 on
        // purpose (rank is only asked about members, j < 128).
    }

    #[test]
    fn rank_counts_bits_below() {
        assert_eq!(rank(0b1011, 0), 0);
        assert_eq!(rank(0b1011, 1), 1);
        assert_eq!(rank(0b1011, 3), 2);
        assert_eq!(rank(u128::MAX, 127), 127);
    }

    #[test]
    fn table_relaxes_and_sorts() {
        let mut table = DedupTable::with_expected(4, 2);
        // Force growth through many distinct masks.
        for j in 0..60usize {
            let mask = 0b11u128 << j;
            table.relax(
                mask,
                rank(mask, j),
                Slot {
                    arrival: j as f64,
                    parent: 0,
                },
            );
        }
        assert!(table.rehashes() >= 1, "60 masks must outgrow 16 buckets");
        assert!(table.probes() >= 60);
        // Relax an existing state with a worse and a better candidate.
        table.relax(
            0b11,
            0,
            Slot {
                arrival: 99.0,
                parent: 1,
            },
        );
        table.relax(
            0b11,
            0,
            Slot {
                arrival: -1.0,
                parent: 1,
            },
        );
        let (masks, slots) = table.into_sorted();
        assert_eq!(masks.len(), 60);
        assert!(masks.windows(2).all(|w| w[0] < w[1]));
        // Group of mask 0b11 is first; member 0 is rank 0.
        assert_eq!(masks[0], 0b11);
        assert_eq!(slots[0].arrival, -1.0);
        // Member 1 (rank 1) of mask 0b11 was never relaxed — stays empty.
        assert!(slots[1].arrival.is_infinite());
        assert_eq!(slots[1].parent, u8::MAX);
    }

    #[test]
    fn high_bit_masks_dedup_correctly() {
        let mut table = DedupTable::with_expected(8, 1);
        let a = 1u128 << 100;
        let b = (1u128 << 100) | 1;
        table.relax(
            a,
            0,
            Slot {
                arrival: 5.0,
                parent: 0,
            },
        );
        table.relax(
            b,
            0,
            Slot {
                arrival: 6.0,
                parent: 1,
            },
        );
        table.relax(
            a,
            0,
            Slot {
                arrival: 4.0,
                parent: 2,
            },
        );
        let (masks, slots) = table.into_sorted();
        assert_eq!(masks, vec![a, b]);
        assert_eq!(slots[0].arrival, 4.0);
        assert_eq!(slots[1].arrival, 6.0);
    }

    #[test]
    fn tie_break_prefers_smaller_parent() {
        let better = Slot {
            arrival: 1.0,
            parent: 2,
        };
        let worse = Slot {
            arrival: 1.0,
            parent: 5,
        };
        assert!(better.beats(&worse));
        assert!(!worse.beats(&better));
        assert!(!better.beats(&better));
    }
}

//! Uniform-grid spatial index for ε-neighbour queries.
//!
//! The dynamic program's inner loop asks, for a delivery point `dp_i`,
//! which other delivery points lie within travel distance ε (the paper's
//! distance-constrained pruning). A uniform grid with cell side ε answers
//! this by scanning the 3×3 cell neighbourhood, so neighbour lists for all
//! `n` points are built in `O(n · k)` (k = average neighbours) instead of
//! `O(n²)` pairwise checks — and the DP's extension loop then touches only
//! actual neighbours.

use fta_core::geometry::Point;
use std::collections::HashMap;

/// Precomputed ε-neighbour lists over a set of points.
#[derive(Debug, Clone)]
pub struct NeighborIndex {
    /// `lists[i]` = indices of points within distance ε of point `i`
    /// (excluding `i` itself), ascending.
    lists: Vec<Vec<u8>>,
}

impl NeighborIndex {
    /// Builds neighbour lists for `points` with radius `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 256 points (the VDPS generator's
    /// delivery-point indices are `u8`-sized) or `epsilon` is not positive
    /// and finite.
    #[must_use]
    pub fn build(points: &[Point], epsilon: f64) -> Self {
        assert!(
            points.len() <= 256,
            "NeighborIndex supports at most 256 points"
        );
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        let cell = |p: Point| -> (i64, i64) {
            (
                (p.x / epsilon).floor() as i64,
                (p.y / epsilon).floor() as i64,
            )
        };
        let mut grid: HashMap<(i64, i64), Vec<u8>> = HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            grid.entry(cell(p)).or_default().push(i as u8);
        }
        let mut lists = vec![Vec::new(); points.len()];
        for (i, &p) in points.iter().enumerate() {
            let (cx, cy) = cell(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = grid.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in bucket {
                        if usize::from(j) != i && p.distance(points[usize::from(j)]) <= epsilon {
                            lists[i].push(j);
                        }
                    }
                }
            }
            lists[i].sort_unstable();
        }
        Self { lists }
    }

    /// The ε-neighbours of point `i`, ascending.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> &[u8] {
        &self.lists[i]
    }

    /// Total number of directed neighbour pairs.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_neighbors(points: &[Point], epsilon: f64) -> Vec<Vec<u8>> {
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                points
                    .iter()
                    .enumerate()
                    .filter(|&(j, &q)| j != i && p.distance(q) <= epsilon)
                    .map(|(j, _)| j as u8)
                    .collect()
            })
            .collect()
    }

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.61803;
                Point::new((a * 7.3) % 10.0, (a * 3.1) % 10.0)
            })
            .collect()
    }

    #[test]
    fn grid_matches_naive_pairwise_scan() {
        let points = scatter(60);
        for eps in [0.5, 1.0, 2.5, 9.0] {
            let idx = NeighborIndex::build(&points, eps);
            let naive = naive_neighbors(&points, eps);
            for (i, expected) in naive.iter().enumerate() {
                assert_eq!(
                    idx.neighbors(i),
                    expected.as_slice(),
                    "eps {eps}, point {i}"
                );
            }
        }
    }

    #[test]
    fn neighborhood_is_symmetric() {
        let points = scatter(40);
        let idx = NeighborIndex::build(&points, 1.5);
        for i in 0..points.len() {
            for &j in idx.neighbors(i) {
                assert!(
                    idx.neighbors(usize::from(j)).contains(&(i as u8)),
                    "{i} sees {j} but not vice versa"
                );
            }
        }
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let idx = NeighborIndex::build(&points, 1.0);
        assert_eq!(idx.neighbors(0), &[1]);
        let idx = NeighborIndex::build(&points, 0.999);
        assert!(idx.neighbors(0).is_empty());
    }

    #[test]
    fn single_point_has_no_neighbors() {
        let idx = NeighborIndex::build(&[Point::new(3.0, 3.0)], 2.0);
        assert!(idx.neighbors(0).is_empty());
        assert_eq!(idx.edge_count(), 0);
    }

    #[test]
    fn edge_count_counts_directed_pairs() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(10.0, 10.0),
        ];
        let idx = NeighborIndex::build(&points, 1.0);
        assert_eq!(idx.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_epsilon() {
        let _ = NeighborIndex::build(&[Point::new(0.0, 0.0)], 0.0);
    }
}

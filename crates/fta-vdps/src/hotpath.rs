//! The hot-path profile: machine-calibrated crossover knobs.
//!
//! PRs 2–6 hardcoded the constants that steer the per-round hot paths —
//! when a strategy space is big enough to earn a conflict index, how
//! sparse it must be, when flat-engine layer expansion goes parallel and
//! how finely it chunks. Those numbers were tuned on one machine; this
//! module turns them into a [`HotpathProfile`] that the `fta-bench`
//! `hotpath_snapshot` binary *measures* on the current machine and the
//! solver *loads* (CLI `--hotpath-profile`), with the historical
//! constants compiled in as the defaults so nothing changes for callers
//! that never load a profile.
//!
//! The profile also selects between kernel twins that are bit-identical
//! by construction and differ only in speed: the chunked limb scans of
//! [`crate::kernel`] versus their scalar references, and the flat
//! engine's trusted-offsets route emission versus a full
//! [`fta_core::route::Route::build`] re-derivation. Keeping the slower
//! twin selectable is what lets the calibration binary measure both
//! sides honestly on every run.
//!
//! The installed profile lives in process-wide atomics, read *once* per
//! coarse operation (context construction, space assembly, generation
//! start) — never per probe — so the load is invisible on the paths it
//! steers. [`install`] is intended for process start-up (CLI, bench
//! binaries); unit tests that need a specific kernel use the explicit
//! per-call entry points instead of mutating the global.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Which availability-scan kernel the equilibrium loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanKernel {
    /// Chunked `[u64; 2]` limb kernels ([`crate::kernel`]).
    #[default]
    Chunked,
    /// One-branch-per-candidate scalar loops (pre-kernel behaviour).
    Scalar,
}

/// How the flat engine materialises `Route` payloads at emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmissionKernel {
    /// Reuse the DP's arrival offsets collected during the backwalk
    /// (same float expressions in the same order as a rebuild — the
    /// bit-identical fast path).
    #[default]
    Offsets,
    /// Re-derive every leg with [`fta_core::route::Route::build`]
    /// (pre-kernel behaviour, kept as the measurable reference).
    Rebuild,
}

/// The calibrated hot-path knobs. `Default` is the committed fallback:
/// exactly the constants previous PRs hardcoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotpathProfile {
    /// Availability-scan kernel selection.
    pub scan_kernel: ScanKernel,
    /// Flat-engine route-emission kernel selection.
    pub emission_kernel: EmissionKernel,
    /// A strategy space builds a conflict index only when its total slot
    /// count reaches this floor (historically `4096`).
    pub conflict_index_min_slots: usize,
    /// ... and only when the index stays sparse: at most this many slots
    /// per delivery-point bit on average (historically `64`).
    pub conflict_index_max_slots_per_bit: usize,
    /// Flat-engine layers go parallel at this many mask groups
    /// (historically `64`).
    pub flat_par_min_groups: usize,
    /// Flat-engine expansion aims for this many chunks per pool thread
    /// (historically `4`).
    pub flat_chunks_per_thread: usize,
}

impl Default for HotpathProfile {
    fn default() -> Self {
        Self {
            scan_kernel: ScanKernel::Chunked,
            emission_kernel: EmissionKernel::Offsets,
            conflict_index_min_slots: crate::strategy::CONFLICT_INDEX_MIN_SLOTS,
            conflict_index_max_slots_per_bit: crate::strategy::CONFLICT_INDEX_MAX_SLOTS_PER_BIT,
            flat_par_min_groups: 64,
            flat_chunks_per_thread: 4,
        }
    }
}

// The installed profile, one atomic per knob. Defaults must mirror
// `HotpathProfile::default()`; `current()` is the only reader.
static SCAN_KERNEL: AtomicU8 = AtomicU8::new(0);
static EMISSION_KERNEL: AtomicU8 = AtomicU8::new(0);
static MIN_SLOTS: AtomicUsize = AtomicUsize::new(crate::strategy::CONFLICT_INDEX_MIN_SLOTS);
static MAX_SLOTS_PER_BIT: AtomicUsize =
    AtomicUsize::new(crate::strategy::CONFLICT_INDEX_MAX_SLOTS_PER_BIT);
static PAR_MIN_GROUPS: AtomicUsize = AtomicUsize::new(64);
static CHUNKS_PER_THREAD: AtomicUsize = AtomicUsize::new(4);

/// The currently installed profile (the compiled-in defaults unless
/// [`install`] ran).
#[must_use]
pub fn current() -> HotpathProfile {
    HotpathProfile {
        scan_kernel: if SCAN_KERNEL.load(Ordering::Relaxed) == 0 {
            ScanKernel::Chunked
        } else {
            ScanKernel::Scalar
        },
        emission_kernel: if EMISSION_KERNEL.load(Ordering::Relaxed) == 0 {
            EmissionKernel::Offsets
        } else {
            EmissionKernel::Rebuild
        },
        conflict_index_min_slots: MIN_SLOTS.load(Ordering::Relaxed),
        conflict_index_max_slots_per_bit: MAX_SLOTS_PER_BIT.load(Ordering::Relaxed),
        flat_par_min_groups: PAR_MIN_GROUPS.load(Ordering::Relaxed),
        flat_chunks_per_thread: CHUNKS_PER_THREAD.load(Ordering::Relaxed),
    }
}

/// Installs `profile` process-wide. Call at start-up, before solves run;
/// concurrent solves see each knob tear-free (they are independent
/// atomics) but may mix knobs from two profiles if raced.
pub fn install(profile: &HotpathProfile) {
    SCAN_KERNEL.store(
        u8::from(profile.scan_kernel == ScanKernel::Scalar),
        Ordering::Relaxed,
    );
    EMISSION_KERNEL.store(
        u8::from(profile.emission_kernel == EmissionKernel::Rebuild),
        Ordering::Relaxed,
    );
    MIN_SLOTS.store(profile.conflict_index_min_slots.max(1), Ordering::Relaxed);
    MAX_SLOTS_PER_BIT.store(
        profile.conflict_index_max_slots_per_bit.max(1),
        Ordering::Relaxed,
    );
    PAR_MIN_GROUPS.store(profile.flat_par_min_groups.max(1), Ordering::Relaxed);
    CHUNKS_PER_THREAD.store(
        profile.flat_chunks_per_thread.clamp(1, 64),
        Ordering::Relaxed,
    );
}

/// Reinstalls the compiled-in defaults.
pub fn reset() {
    install(&HotpathProfile::default());
}

/// Parses a profile from JSON. Accepts either a bare profile object or a
/// `BENCH_hotpath.json`-shaped snapshot carrying the profile under a
/// top-level `"profile"` key. Missing fields keep their defaults;
/// numeric fields are clamped to sane bands so a stale or foreign
/// snapshot can slow the solver down but never wedge it.
///
/// # Errors
///
/// Returns a description when the document is not valid JSON, is not an
/// object, or names an unknown kernel.
pub fn from_json_str(raw: &str) -> Result<HotpathProfile, String> {
    let doc: serde_json::Value =
        serde_json::from_str(raw).map_err(|e| format!("hotpath profile is not valid JSON: {e}"))?;
    let obj = if doc["profile"].as_object().is_some() {
        &doc["profile"]
    } else {
        &doc
    };
    if obj.as_object().is_none() {
        return Err("hotpath profile must be a JSON object".to_owned());
    }
    let mut p = HotpathProfile::default();
    if let Some(s) = obj["scan_kernel"].as_str() {
        p.scan_kernel = match s {
            "chunked" => ScanKernel::Chunked,
            "scalar" => ScanKernel::Scalar,
            other => return Err(format!("unknown scan_kernel {other:?}")),
        };
    }
    if let Some(s) = obj["emission_kernel"].as_str() {
        p.emission_kernel = match s {
            "offsets" => EmissionKernel::Offsets,
            "rebuild" => EmissionKernel::Rebuild,
            other => return Err(format!("unknown emission_kernel {other:?}")),
        };
    }
    let clamp = |v: &serde_json::Value, lo: u64, hi: u64, default: usize| -> usize {
        v.as_u64().map_or(default, |n| n.clamp(lo, hi) as usize)
    };
    p.conflict_index_min_slots = clamp(
        &obj["conflict_index_min_slots"],
        1 << 8,
        1 << 20,
        p.conflict_index_min_slots,
    );
    p.conflict_index_max_slots_per_bit = clamp(
        &obj["conflict_index_max_slots_per_bit"],
        4,
        1 << 12,
        p.conflict_index_max_slots_per_bit,
    );
    p.flat_par_min_groups = clamp(
        &obj["flat_par_min_groups"],
        8,
        1 << 16,
        p.flat_par_min_groups,
    );
    p.flat_chunks_per_thread = clamp(
        &obj["flat_chunks_per_thread"],
        1,
        64,
        p.flat_chunks_per_thread,
    );
    Ok(p)
}

/// The JSON object form of `profile`, as written into
/// `BENCH_hotpath.json` under `"profile"` and accepted back by
/// [`from_json_str`].
#[must_use]
pub fn to_json(profile: &HotpathProfile) -> serde_json::Value {
    let fields = vec![
        (
            "scan_kernel".to_owned(),
            serde_json::Value::String(
                match profile.scan_kernel {
                    ScanKernel::Chunked => "chunked",
                    ScanKernel::Scalar => "scalar",
                }
                .to_owned(),
            ),
        ),
        (
            "emission_kernel".to_owned(),
            serde_json::Value::String(
                match profile.emission_kernel {
                    EmissionKernel::Offsets => "offsets",
                    EmissionKernel::Rebuild => "rebuild",
                }
                .to_owned(),
            ),
        ),
        (
            "conflict_index_min_slots".to_owned(),
            serde_json::Value::UInt(profile.conflict_index_min_slots as u64),
        ),
        (
            "conflict_index_max_slots_per_bit".to_owned(),
            serde_json::Value::UInt(profile.conflict_index_max_slots_per_bit as u64),
        ),
        (
            "flat_par_min_groups".to_owned(),
            serde_json::Value::UInt(profile.flat_par_min_groups as u64),
        ),
        (
            "flat_chunks_per_thread".to_owned(),
            serde_json::Value::UInt(profile.flat_chunks_per_thread as u64),
        ),
    ];
    serde_json::Value::Object(fields.into_iter().collect())
}

/// Loads a profile from a JSON file (bare profile or snapshot form).
///
/// # Errors
///
/// Returns a description when the file cannot be read or parsed.
pub fn load(path: &std::path::Path) -> Result<HotpathProfile, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read hotpath profile {}: {e}", path.display()))?;
    from_json_str(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_mirrors_historical_constants() {
        let p = HotpathProfile::default();
        assert_eq!(p.conflict_index_min_slots, 1 << 12);
        assert_eq!(p.conflict_index_max_slots_per_bit, 64);
        assert_eq!(p.flat_par_min_groups, 64);
        assert_eq!(p.flat_chunks_per_thread, 4);
        assert_eq!(p.scan_kernel, ScanKernel::Chunked);
        assert_eq!(p.emission_kernel, EmissionKernel::Offsets);
    }

    #[test]
    fn json_roundtrip_preserves_every_knob() {
        let p = HotpathProfile {
            scan_kernel: ScanKernel::Scalar,
            emission_kernel: EmissionKernel::Rebuild,
            conflict_index_min_slots: 2048,
            conflict_index_max_slots_per_bit: 96,
            flat_par_min_groups: 128,
            flat_chunks_per_thread: 8,
        };
        let json = serde_json::to_string(&to_json(&p)).unwrap();
        assert_eq!(from_json_str(&json).unwrap(), p);
    }

    #[test]
    fn snapshot_wrapper_and_partial_objects_parse() {
        let wrapped = r#"{"description": "x", "profile": {"conflict_index_min_slots": 8192}}"#;
        let p = from_json_str(wrapped).unwrap();
        assert_eq!(p.conflict_index_min_slots, 8192);
        assert_eq!(
            p.conflict_index_max_slots_per_bit,
            HotpathProfile::default().conflict_index_max_slots_per_bit
        );
        assert_eq!(from_json_str("{}").unwrap(), HotpathProfile::default());
    }

    #[test]
    fn hostile_values_clamp_and_unknown_kernels_error() {
        let p =
            from_json_str(r#"{"conflict_index_min_slots": 1, "flat_chunks_per_thread": 10000}"#)
                .unwrap();
        assert_eq!(p.conflict_index_min_slots, 256);
        assert_eq!(p.flat_chunks_per_thread, 64);
        assert!(from_json_str(r#"{"scan_kernel": "simd512"}"#).is_err());
        assert!(from_json_str("[]").is_err());
        assert!(from_json_str("not json").is_err());
    }
}

//! Branch-light mask-scan kernels over `[u64; 2]` limbs.
//!
//! The equilibrium hot loops ask one question over and over: *given the
//! union of everyone else's taken delivery points, which of this
//! worker's payoff-sorted slots is still open?* A slot is open when its
//! `u128` DP mask does not intersect the taken mask. The scalar loop
//! (`masks.iter().position(|&m| m & taken == 0)`) answers it with one
//! branch per candidate — fine when the answer is slot 0, painful when
//! contention pushes the first open slot deep into the list.
//!
//! The kernels here process candidates in chunks of [`LANES`], splitting
//! every `u128` into its two `u64` limbs: `m & t == 0` iff
//! `(m_lo & t_lo) | (m_hi & t_hi) == 0`. Within a chunk the per-lane
//! conflict tests are reduced into a single `open` bitmap with no branch
//! per lane — just AND/OR/compare lanewise, the shape LLVM
//! autovectorizes on any target with 128-bit vectors. One branch per
//! chunk then either skips 8 closed candidates at once or resolves the
//! hit position with a trailing-zeros count.
//!
//! Every kernel has a `_scalar` reference twin with the exact semantics
//! of the pre-kernel loops. The pair is proptested for equivalence and
//! benchmarked head-to-head by `hotpath_snapshot`; which one runs is
//! selected by [`crate::hotpath::ScanKernel`].

/// Candidates per chunk. Eight `u128`s is 128 bytes — two cache lines —
/// and gives the reduction enough lanes to fill 2×64-bit vector ALUs.
pub const LANES: usize = 8;

/// Scalar prefix of the `first_*` chunked kernels. Payoff-descending
/// scans usually hit within the first few candidates; probing that head
/// one-at-a-time keeps the shallow-hit cost identical to the scalar
/// loop, so the chunked reduction only pays for itself on the deep
/// scans it exists for.
const FIRST_PREFIX: usize = 16;

/// Position of the first mask in `masks` that does not intersect
/// `taken`. Scalar reference kernel.
#[inline]
#[must_use]
pub fn first_open_scalar(masks: &[u128], taken: u128) -> Option<usize> {
    masks.iter().position(|&m| m & taken == 0)
}

/// Position of the first mask in `masks` that does not intersect
/// `taken`. Chunked limb kernel; result is identical to
/// [`first_open_scalar`].
#[inline]
#[must_use]
pub fn first_open_chunked(masks: &[u128], taken: u128) -> Option<usize> {
    let head = masks.len().min(FIRST_PREFIX);
    if let Some(p) = masks[..head].iter().position(|&m| m & taken == 0) {
        return Some(p);
    }
    let masks = &masks[head..];
    let t_lo = taken as u64;
    let t_hi = (taken >> 64) as u64;
    let mut chunks = masks.chunks_exact(LANES);
    let mut base = head;
    for chunk in &mut chunks {
        let chunk: &[u128; LANES] = chunk.try_into().expect("chunks_exact yields LANES");
        let open = open_bitmap(chunk, t_lo, t_hi);
        if open != 0 {
            return Some(base + open.trailing_zeros() as usize);
        }
        base += LANES;
    }
    chunks
        .remainder()
        .iter()
        .position(|&m| m & taken == 0)
        .map(|p| base + p)
}

/// Per-lane open bitmap of one chunk: bit `k` is set iff `chunk[k]` does
/// not intersect the taken mask. Branch-free across lanes; the
/// fixed-size chunk lets the loop fully unroll into straight-line
/// AND/OR/compare lanework.
#[inline]
fn open_bitmap(chunk: &[u128; LANES], t_lo: u64, t_hi: u64) -> u32 {
    let mut open = 0u32;
    for (k, &m) in chunk.iter().enumerate() {
        let conflict = ((m as u64) & t_lo) | (((m >> 64) as u64) & t_hi);
        open |= u32::from(conflict == 0) << k;
    }
    open
}

/// Calls `f(pos)` for every mask in `masks[..limit]` that does not
/// intersect `taken`, ascending. Scalar reference kernel.
#[inline]
pub fn for_each_open_scalar(masks: &[u128], limit: usize, taken: u128, mut f: impl FnMut(usize)) {
    for (pos, &m) in masks[..limit].iter().enumerate() {
        if m & taken == 0 {
            f(pos);
        }
    }
}

/// Calls `f(pos)` for every mask in `masks[..limit]` that does not
/// intersect `taken`, ascending. Chunked limb kernel; visits exactly the
/// positions [`for_each_open_scalar`] visits, in the same order.
#[inline]
pub fn for_each_open_chunked(masks: &[u128], limit: usize, taken: u128, mut f: impl FnMut(usize)) {
    let t_lo = taken as u64;
    let t_hi = (taken >> 64) as u64;
    let mut chunks = masks[..limit].chunks_exact(LANES);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let chunk: &[u128; LANES] = chunk.try_into().expect("chunks_exact yields LANES");
        let mut open = open_bitmap(chunk, t_lo, t_hi);
        while open != 0 {
            f(base + open.trailing_zeros() as usize);
            open &= open - 1;
        }
        base += LANES;
    }
    for (k, &m) in chunks.remainder().iter().enumerate() {
        if m & taken == 0 {
            f(base + k);
        }
    }
}

/// Position of the first slot id in `slots` whose conflict counter is
/// zero. Scalar reference for the conflict-index probe.
#[inline]
#[must_use]
pub fn first_zero_scalar(slots: &[u32], conflicts: &[u32]) -> Option<usize> {
    slots.iter().position(|&s| conflicts[s as usize] == 0)
}

/// Position of the first slot id in `slots` whose conflict counter is
/// zero, gathering counters four at a time with a branch-free per-chunk
/// reduction. Identical to [`first_zero_scalar`].
#[inline]
#[must_use]
pub fn first_zero_chunked(slots: &[u32], conflicts: &[u32]) -> Option<usize> {
    const GATHER: usize = 4;
    let head = slots.len().min(FIRST_PREFIX);
    if let Some(p) = slots[..head]
        .iter()
        .position(|&s| conflicts[s as usize] == 0)
    {
        return Some(p);
    }
    let slots = &slots[head..];
    let mut chunks = slots.chunks_exact(GATHER);
    let mut base = head;
    for chunk in &mut chunks {
        let mut open = 0u32;
        for (k, &s) in chunk.iter().enumerate() {
            open |= u32::from(conflicts[s as usize] == 0) << k;
        }
        if open != 0 {
            return Some(base + open.trailing_zeros() as usize);
        }
        base += GATHER;
    }
    chunks
        .remainder()
        .iter()
        .position(|&s| conflicts[s as usize] == 0)
        .map(|p| base + p)
}

/// Calls `f(pos)` for every slot id in `slots[..limit]` whose conflict
/// counter is zero, ascending. Scalar reference kernel.
#[inline]
pub fn for_each_zero_scalar(
    slots: &[u32],
    limit: usize,
    conflicts: &[u32],
    mut f: impl FnMut(usize),
) {
    for (pos, &s) in slots[..limit].iter().enumerate() {
        if conflicts[s as usize] == 0 {
            f(pos);
        }
    }
}

/// Calls `f(pos)` for every slot id in `slots[..limit]` whose conflict
/// counter is zero, ascending; chunked gather twin of
/// [`for_each_zero_scalar`].
#[inline]
pub fn for_each_zero_chunked(
    slots: &[u32],
    limit: usize,
    conflicts: &[u32],
    mut f: impl FnMut(usize),
) {
    const GATHER: usize = 4;
    let mut chunks = slots[..limit].chunks_exact(GATHER);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let mut open = 0u32;
        for (k, &s) in chunk.iter().enumerate() {
            open |= u32::from(conflicts[s as usize] == 0) << k;
        }
        while open != 0 {
            f(base + open.trailing_zeros() as usize);
            open &= open - 1;
        }
        base += GATHER;
    }
    for (k, &s) in chunks.remainder().iter().enumerate() {
        if conflicts[s as usize] == 0 {
            f(base + k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift stream for mask fixtures.
    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    fn mask_fixture(len: usize, seed: u64, density_shift: u32) -> (Vec<u128>, u128) {
        let mut next = stream(seed);
        let masks: Vec<u128> = (0..len)
            .map(|_| {
                let m = (u128::from(next()) << 64 | u128::from(next())) >> density_shift;
                if m == 0 {
                    1
                } else {
                    m
                }
            })
            .collect();
        let taken = u128::from(next()) << 64 | u128::from(next());
        (masks, taken)
    }

    #[test]
    fn first_open_kernels_agree() {
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 100, 257] {
            for seed in [2u64, 11, 99] {
                for shift in [0u32, 64, 100, 120] {
                    let (masks, taken) = mask_fixture(len, seed, shift);
                    for t in [taken, 0, u128::MAX] {
                        assert_eq!(
                            first_open_scalar(&masks, t),
                            first_open_chunked(&masks, t),
                            "len {len} seed {seed} shift {shift}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn for_each_open_kernels_agree() {
        for len in [0usize, 5, 8, 13, 64, 130] {
            let (masks, taken) = mask_fixture(len, 7, 100);
            for limit in [0, len / 2, len] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                for_each_open_scalar(&masks, limit, taken, |p| a.push(p));
                for_each_open_chunked(&masks, limit, taken, |p| b.push(p));
                assert_eq!(a, b, "len {len} limit {limit}");
            }
        }
    }

    #[test]
    fn zero_gather_kernels_agree() {
        let mut next = stream(5);
        let conflicts: Vec<u32> = (0..64).map(|_| (next() % 3 == 0) as u32 * 2).collect();
        for len in [0usize, 1, 3, 4, 5, 9, 40, 64] {
            let slots: Vec<u32> = (0..len).map(|_| (next() % 64) as u32).collect();
            assert_eq!(
                first_zero_scalar(&slots, &conflicts),
                first_zero_chunked(&slots, &conflicts),
                "len {len}"
            );
            for limit in [0, len / 2, len] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                for_each_zero_scalar(&slots, limit, &conflicts, |p| a.push(p));
                for_each_zero_chunked(&slots, limit, &conflicts, |p| b.push(p));
                assert_eq!(a, b, "len {len} limit {limit}");
            }
        }
    }
}

//! Property-based tests of the C-VDPS dynamic program against the
//! brute-force reference on randomly generated centers.

use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use fta_core::geometry::Point;
use fta_core::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use fta_core::instance::Instance;
use fta_vdps::generator::generate_c_vdps;
use fta_vdps::naive::generate_naive;
use fta_vdps::{StrategySpace, VdpsConfig};
use proptest::prelude::*;

/// (x, y, expiry) triples become a random single-center instance.
fn arb_center() -> impl Strategy<Value = Instance> {
    let dp = (0.0f64..8.0, 0.0f64..8.0, 0.5f64..16.0);
    prop::collection::vec(dp, 1..7).prop_map(|dps| {
        let delivery_points: Vec<DeliveryPoint> = dps
            .iter()
            .enumerate()
            .map(|(i, &(x, y, _))| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new(x, y),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = dps
            .iter()
            .enumerate()
            .map(|(i, &(_, _, e))| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: e,
                reward: 1.0,
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(4.0, 4.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(3.0, 4.0),
                max_dp: dps.len(),
                center: CenterId(0),
            }],
            delivery_points,
            tasks,
            1.0,
        )
        .expect("generated instances are valid")
    })
}

fn arb_config() -> impl Strategy<Value = VdpsConfig> {
    (prop::option::of(0.5f64..12.0), 1usize..6)
        .prop_map(|(epsilon, max_len)| VdpsConfig { epsilon, max_len })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_equals_brute_force(instance in arb_center(), config in arb_config()) {
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let naive = generate_naive(&instance, &aggs, &views[0], &config);
        let (fast, _) = generate_c_vdps(&instance, &aggs, &views[0], &config);
        prop_assert_eq!(naive.len(), fast.len(), "different VDPS counts");
        for (a, b) in naive.iter().zip(fast.iter()) {
            prop_assert_eq!(a.mask, b.mask);
            prop_assert!(
                (a.route.travel_from_dc() - b.route.travel_from_dc()).abs() < 1e-9,
                "travel time differs on mask {:#b}", a.mask
            );
        }
    }

    #[test]
    fn every_emitted_route_is_deadline_feasible(
        instance in arb_center(),
        config in arb_config(),
    ) {
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let (pool, _) = generate_c_vdps(&instance, &aggs, &views[0], &config);
        for vdps in &pool {
            prop_assert!(vdps.route.is_center_origin_valid());
            prop_assert!(vdps.len() <= config.max_len);
            // The mask and the route agree on membership.
            let mut mask = 0u128;
            for dp in vdps.route.dps() {
                let local = views[0].dps.iter().position(|d| d == dp).unwrap();
                mask |= 1 << local;
            }
            prop_assert_eq!(mask, vdps.mask);
        }
    }

    #[test]
    fn pruned_pool_is_subset_of_unpruned(
        instance in arb_center(),
        epsilon in 0.5f64..12.0,
        max_len in 1usize..6,
    ) {
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let (pruned, pruned_stats) =
            generate_c_vdps(&instance, &aggs, &views[0], &VdpsConfig::pruned(epsilon, max_len));
        let (unpruned, unpruned_stats) =
            generate_c_vdps(&instance, &aggs, &views[0], &VdpsConfig::unpruned(max_len));
        let unpruned_masks: std::collections::HashSet<u128> =
            unpruned.iter().map(|v| v.mask).collect();
        for v in &pruned {
            prop_assert!(unpruned_masks.contains(&v.mask));
        }
        prop_assert!(pruned_stats.states <= unpruned_stats.states);
    }

    #[test]
    fn strategy_space_payoffs_match_route_payoffs(
        instance in arb_center(),
        config in arb_config(),
    ) {
        use fta_core::payoff::worker_payoff;
        let views = instance.center_views();
        let space = StrategySpace::build(&instance, &views[0], &config);
        for (local, valid) in space.valid.iter().enumerate() {
            let worker = space.worker_id(local);
            for (pos, &idx) in valid.iter().enumerate() {
                let route = &space.pool[idx as usize].route;
                prop_assert!(route.is_valid_for(&instance, worker));
                let direct = worker_payoff(&instance, worker, route);
                prop_assert!((space.payoffs[local][pos] - direct).abs() < 1e-9);
            }
        }
    }
}

//! Property-based tests of the C-VDPS dynamic program against the
//! brute-force reference on randomly generated centers.

use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use fta_core::geometry::Point;
use fta_core::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use fta_core::instance::Instance;
use fta_vdps::generator::{generate_c_vdps, generate_c_vdps_hashmap};
use fta_vdps::naive::generate_naive;
use fta_vdps::{generate_c_vdps_flat, StrategySpace, VdpsConfig, VdpsEngine, WorkerPool};
use proptest::prelude::*;

/// (x, y, expiry) triples become a random single-center instance.
fn arb_center() -> impl Strategy<Value = Instance> {
    let dp = (0.0f64..8.0, 0.0f64..8.0, 0.5f64..16.0);
    prop::collection::vec(dp, 1..7).prop_map(|dps| {
        let delivery_points: Vec<DeliveryPoint> = dps
            .iter()
            .enumerate()
            .map(|(i, &(x, y, _))| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new(x, y),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = dps
            .iter()
            .enumerate()
            .map(|(i, &(_, _, e))| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: e,
                reward: 1.0,
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(4.0, 4.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(3.0, 4.0),
                max_dp: dps.len(),
                center: CenterId(0),
            }],
            delivery_points,
            tasks,
            1.0,
        )
        .expect("generated instances are valid")
    })
}

fn arb_config() -> impl Strategy<Value = VdpsConfig> {
    (prop::option::of(0.5f64..12.0), 1usize..6).prop_map(|(epsilon, max_len)| VdpsConfig {
        epsilon,
        max_len,
        engine: VdpsEngine::default(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_equals_brute_force(instance in arb_center(), config in arb_config()) {
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let naive = generate_naive(&instance, &aggs, &views[0], &config);
        let (fast, _) = generate_c_vdps(&instance, &aggs, &views[0], &config);
        prop_assert_eq!(naive.len(), fast.len(), "different VDPS counts");
        for (a, b) in naive.iter().zip(fast.iter()) {
            prop_assert_eq!(a.mask, b.mask);
            prop_assert!(
                (a.route.travel_from_dc() - b.route.travel_from_dc()).abs() < 1e-9,
                "travel time differs on mask {:#b}", a.mask
            );
        }
    }

    #[test]
    fn every_emitted_route_is_deadline_feasible(
        instance in arb_center(),
        config in arb_config(),
    ) {
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let (pool, _) = generate_c_vdps(&instance, &aggs, &views[0], &config);
        for vdps in &pool {
            prop_assert!(vdps.route.is_center_origin_valid());
            prop_assert!(vdps.len() <= config.max_len);
            // The mask and the route agree on membership.
            let mut mask = 0u128;
            for dp in vdps.route.dps() {
                let local = views[0].dps.iter().position(|d| d == dp).unwrap();
                mask |= 1 << local;
            }
            prop_assert_eq!(mask, vdps.mask);
        }
    }

    #[test]
    fn pruned_pool_is_subset_of_unpruned(
        instance in arb_center(),
        epsilon in 0.5f64..12.0,
        max_len in 1usize..6,
    ) {
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let (pruned, pruned_stats) =
            generate_c_vdps(&instance, &aggs, &views[0], &VdpsConfig::pruned(epsilon, max_len));
        let (unpruned, unpruned_stats) =
            generate_c_vdps(&instance, &aggs, &views[0], &VdpsConfig::unpruned(max_len));
        let unpruned_masks: std::collections::HashSet<u128> =
            unpruned.iter().map(|v| v.mask).collect();
        for v in &pruned {
            prop_assert!(unpruned_masks.contains(&v.mask));
        }
        prop_assert!(pruned_stats.states <= unpruned_stats.states);
    }

    /// ISSUE 2 satellite: the flat engine, the hash-map oracle, and the
    /// brute-force reference produce identical `(mask, route, travel-time)`
    /// pools — order included — and the two DP engines report identical
    /// pruning counters, for ε ∈ {None, Some(random)}.
    #[test]
    fn all_three_engines_agree_bit_identically(
        instance in arb_center(),
        config in arb_config(),
    ) {
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let naive = generate_naive(&instance, &aggs, &views[0], &config);
        let (hashed, hashed_stats) =
            generate_c_vdps_hashmap(&instance, &aggs, &views[0], &config);
        let (flat, flat_stats) =
            generate_c_vdps_flat(&instance, &aggs, &views[0], &config, None);

        // Flat vs hashmap: bit-identical pools (mask, route, travel time)
        // and identical work/pruning counters.
        prop_assert_eq!(flat.len(), hashed.len(), "flat vs hashmap pool size");
        for (f, h) in flat.iter().zip(hashed.iter()) {
            prop_assert_eq!(f.mask, h.mask);
            prop_assert_eq!(f.route.dps(), h.route.dps(), "route differs on mask {:#b}", f.mask);
            prop_assert_eq!(
                f.route.travel_from_dc().to_bits(),
                h.route.travel_from_dc().to_bits(),
                "travel time not bit-identical on mask {:#b}", f.mask
            );
        }
        prop_assert_eq!(flat_stats.work_counters(), hashed_stats.work_counters());

        // Both DP engines vs the brute-force reference (travel times agree
        // up to float tolerance; the reference computes them differently).
        prop_assert_eq!(naive.len(), flat.len(), "flat vs naive pool size");
        for (n, f) in naive.iter().zip(flat.iter()) {
            prop_assert_eq!(n.mask, f.mask);
            prop_assert!(
                (n.route.travel_from_dc() - f.route.travel_from_dc()).abs() < 1e-9,
                "travel time differs from reference on mask {:#b}", n.mask
            );
        }
    }

    /// Pooled flat-engine generation is bit-identical to sequential
    /// generation regardless of worker count.
    #[test]
    fn pooled_flat_generation_is_thread_count_invariant(
        instance in arb_center(),
        config in arb_config(),
        threads in 2usize..6,
    ) {
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let (seq, seq_stats) =
            generate_c_vdps_flat(&instance, &aggs, &views[0], &config, None);
        let pool = WorkerPool::with_threads(threads);
        let (par, par_stats) = pool.scope(|ts| {
            generate_c_vdps_flat(&instance, &aggs, &views[0], &config, Some(ts))
        });
        prop_assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            prop_assert_eq!(a.mask, b.mask);
            prop_assert_eq!(a.route.dps(), b.route.dps());
            prop_assert_eq!(
                a.route.travel_from_dc().to_bits(),
                b.route.travel_from_dc().to_bits()
            );
        }
        prop_assert_eq!(seq_stats.work_counters(), par_stats.work_counters());
    }

    #[test]
    fn strategy_space_payoffs_match_route_payoffs(
        instance in arb_center(),
        config in arb_config(),
    ) {
        use fta_core::payoff::worker_payoff;
        let views = instance.center_views();
        let space = StrategySpace::build(&instance, &views[0], &config);
        for local in 0..space.n_workers() {
            let worker = space.worker_id(local);
            let payoffs = space.payoffs_of(local);
            for (pos, &idx) in space.valid_of(local).iter().enumerate() {
                let route = &space.pool[idx as usize].route;
                prop_assert!(route.is_valid_for(&instance, worker));
                let direct = worker_payoff(&instance, worker, route);
                prop_assert!((payoffs[pos] - direct).abs() < 1e-9);
            }
        }
    }
}

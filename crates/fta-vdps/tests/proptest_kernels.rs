//! Property-based equivalence of the chunked-limb kernels and the
//! arena-backed columnar `StrategySpace` validation against scalar /
//! per-route references, on randomized fixtures and instances. These
//! complement the unit fixtures in `kernel.rs`: proptest drives lengths,
//! densities, and limits the hand-picked cases miss.

use fta_core::payoff::payoff_for_travel;
use fta_data::{generate_syn, SynConfig};
use fta_vdps::{generate_c_vdps_flat, kernel, StrategySpace, VdpsConfig};
use proptest::prelude::*;

/// Random mask lists: limb pairs shifted to varying density so fixtures
/// cover near-empty, half-full, and dense masks.
fn arb_masks() -> impl Strategy<Value = Vec<u128>> {
    prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX, 0u32..120), 0..70).prop_map(|limbs| {
        limbs
            .into_iter()
            .map(|(lo, hi, shift)| ((u128::from(hi) << 64) | u128::from(lo)) >> shift)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The open-mask kernels must agree with their scalar twins for any
    /// mask list, taken mask, and sweep limit.
    #[test]
    fn open_kernels_match_scalar_reference(
        masks in arb_masks(),
        taken_lo in 0u64..u64::MAX,
        taken_hi in 0u64..u64::MAX,
        taken_shift in 0u32..120,
        limit_seed in 0usize..1000,
    ) {
        let taken = ((u128::from(taken_hi) << 64) | u128::from(taken_lo)) >> taken_shift;
        prop_assert_eq!(
            kernel::first_open_scalar(&masks, taken),
            kernel::first_open_chunked(&masks, taken)
        );
        let limit = limit_seed % (masks.len() + 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        kernel::for_each_open_scalar(&masks, limit, taken, |p| a.push(p));
        kernel::for_each_open_chunked(&masks, limit, taken, |p| b.push(p));
        prop_assert_eq!(a, b);
    }

    /// The conflict-counter gather kernels must agree with their scalar
    /// twins for any slot list, counter table, and sweep limit.
    #[test]
    fn zero_kernels_match_scalar_reference(
        conflicts in prop::collection::vec(0u32..3, 1..50),
        slot_seeds in prop::collection::vec(0usize..1000, 0..70),
        limit_seed in 0usize..1000,
    ) {
        let slots: Vec<u32> = slot_seeds
            .iter()
            .map(|s| (s % conflicts.len()) as u32)
            .collect();
        prop_assert_eq!(
            kernel::first_zero_scalar(&slots, &conflicts),
            kernel::first_zero_chunked(&slots, &conflicts)
        );
        let limit = limit_seed % (slots.len() + 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        kernel::for_each_zero_scalar(&slots, limit, &conflicts, |p| a.push(p));
        kernel::for_each_zero_chunked(&slots, limit, &conflicts, |p| b.push(p));
        prop_assert_eq!(a, b);
    }

    /// The arena-backed columnar validation inside `StrategySpace` must
    /// be bit-identical to the per-route reference predicate
    /// (`len ≤ max_dp && route.is_valid_for_travel(to_dc)`, payoff via
    /// `payoff_for_travel`) for every worker of a random instance —
    /// including when the space is rebuilt from a warm arena.
    #[test]
    fn strategy_space_validation_matches_route_reference(
        seed in 1u64..500,
        n_workers in 2usize..10,
        n_dps in 4usize..14,
        max_dp in 1usize..4,
    ) {
        let instance = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers,
                n_tasks: n_dps * 6,
                n_delivery_points: n_dps,
                max_dp,
                extent: 3.0,
                ..SynConfig::bench_scale()
            },
            seed,
        );
        let aggregates = instance.dp_aggregates();
        let view = instance.center_views().remove(0);
        let config = VdpsConfig::unpruned(4);
        // Two passes: the first builds on whatever the arena holds, the
        // second rebuilds entirely from recycled buffers. Both must give
        // identical answers.
        for pass in 0..2 {
            let (pool, stats) =
                generate_c_vdps_flat(&instance, &aggregates, &view, &config, None);
            let space = StrategySpace::from_pool(&instance, &view, pool.clone(), stats);
            for (local, &w) in view.workers.iter().enumerate() {
                let worker = &instance.workers[w.index()];
                let to_dc = instance.travel_time(
                    worker.location,
                    instance.centers[view.center.index()].location,
                );
                let expected: Vec<(u32, u64)> = pool
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| {
                        v.len() <= worker.max_dp && v.route.is_valid_for_travel(to_dc)
                    })
                    .map(|(j, v)| (j as u32, payoff_for_travel(&v.route, to_dc).to_bits()))
                    .collect();
                let got: Vec<(u32, u64)> = space
                    .valid_of(local)
                    .iter()
                    .zip(space.payoffs_of(local))
                    .map(|(&j, p)| (j, p.to_bits()))
                    .collect();
                prop_assert_eq!(
                    expected, got,
                    "worker {} diverged (pass {})", local, pass
                );
            }
        }
    }
}

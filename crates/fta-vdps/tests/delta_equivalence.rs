//! Property-based equivalence of [`fta_vdps::delta_update`] against a
//! cold regeneration: for any base center and any churn script (aging,
//! arrivals, removals, reward changes), the delta-updated pool must be
//! bit-identical — content and (size, mask) order — to
//! [`fta_vdps::generate_c_vdps`] on the churned instance.

use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use fta_core::geometry::Point;
use fta_core::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use fta_core::instance::Instance;
use fta_vdps::generator::generate_c_vdps;
use fta_vdps::{
    delta_update, delta_update_with_provenance, PoolCache, SlotCache, StrategySpace, VdpsConfig,
};
use proptest::prelude::*;

/// One churn step applied to a task index (modulo the live task count).
#[derive(Debug, Clone)]
enum Churn {
    /// Remove the task at `index % len`.
    Remove(usize),
    /// Add `reward` to the task at `index % len`.
    Reward(usize, f64),
    /// Append a task at a fresh delivery point.
    Arrive {
        x: f64,
        y: f64,
        expiry: f64,
        reward: f64,
    },
    /// Loosen the deadline of the task at `index % len`.
    Loosen(usize, f64),
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    let dp = (0.0f64..8.0, 0.0f64..8.0, 0.5f64..16.0, 1.0f64..3.0);
    prop::collection::vec(dp, 2..9).prop_map(|dps| {
        let delivery_points: Vec<DeliveryPoint> = dps
            .iter()
            .enumerate()
            .map(|(i, &(x, y, _, _))| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new(x, y),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = dps
            .iter()
            .enumerate()
            .map(|(i, &(_, _, e, r))| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: e,
                reward: r,
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(4.0, 4.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(4.0, 4.0),
                max_dp: 3,
                center: CenterId(0),
            }],
            delivery_points,
            tasks,
            1.0,
        )
        .expect("generated instances are valid")
    })
}

fn arb_churn() -> impl Strategy<Value = Churn> {
    prop_oneof![
        (0usize..32).prop_map(Churn::Remove),
        ((0usize..32), 0.25f64..2.0).prop_map(|(i, dr)| Churn::Reward(i, dr)),
        ((0.0f64..8.0), (0.0f64..8.0), (0.5f64..16.0), (1.0f64..3.0)).prop_map(
            |(x, y, expiry, reward)| Churn::Arrive {
                x,
                y,
                expiry,
                reward
            }
        ),
        ((0usize..32), 0.5f64..4.0).prop_map(|(i, de)| Churn::Loosen(i, de)),
    ]
}

/// Applies the churn script the way a round loop would: first the
/// discrete events, then aging (shrink every expiry by `age`, drop the
/// dead). New delivery points are appended to the instance so ids stay
/// dense.
fn apply_churn(base: &Instance, script: &[Churn], age: f64) -> Instance {
    let mut dps = base.delivery_points.clone();
    let mut tasks = base.tasks.clone();
    for step in script {
        match step {
            Churn::Remove(i) => {
                if !tasks.is_empty() {
                    let i = i % tasks.len();
                    tasks.remove(i);
                }
            }
            Churn::Reward(i, dr) => {
                if !tasks.is_empty() {
                    let i = i % tasks.len();
                    tasks[i].reward += dr;
                }
            }
            Churn::Arrive {
                x,
                y,
                expiry,
                reward,
            } => {
                let dp = DeliveryPointId::from_index(dps.len());
                dps.push(DeliveryPoint {
                    id: dp,
                    location: Point::new(*x, *y),
                    center: CenterId(0),
                });
                tasks.push(SpatialTask {
                    id: TaskId::from_index(0), // re-numbered below
                    delivery_point: dp,
                    expiry: *expiry,
                    reward: *reward,
                });
            }
            Churn::Loosen(i, de) => {
                if !tasks.is_empty() {
                    let i = i % tasks.len();
                    tasks[i].expiry += de;
                }
            }
        }
    }
    tasks.retain(|t| t.expiry > age);
    for (i, t) in tasks.iter_mut().enumerate() {
        t.expiry -= age;
        t.id = TaskId::from_index(i);
    }
    Instance::new(
        base.centers.clone(),
        base.workers.clone(),
        dps,
        tasks,
        base.speed,
    )
    .expect("churned instances stay valid")
}

fn assert_pools_bit_identical(instance: &Instance, config: &VdpsConfig, cache: &PoolCache) {
    let aggs = instance.dp_aggregates();
    let views = instance.center_views();
    let view = views
        .first()
        .cloned()
        .unwrap_or(fta_core::instance::CenterView {
            center: CenterId(0),
            workers: Vec::new(),
            dps: Vec::new(),
        });
    let (regen, _) = generate_c_vdps(instance, &aggs, &view, config);
    let (delta, _) = delta_update(instance, &aggs, &view, config, cache)
        .expect("delta supports add/remove/reward/age churn");
    assert_eq!(delta.len(), regen.len(), "pool sizes differ");
    for (d, r) in delta.iter().zip(regen.iter()) {
        assert_eq!(d.mask, r.mask, "masks differ");
        assert_eq!(d.route.dps(), r.route.dps(), "visiting orders differ");
        assert_eq!(
            d.route.slack().to_bits(),
            r.route.slack().to_bits(),
            "slacks not bit-identical"
        );
        assert_eq!(
            d.route.total_reward().to_bits(),
            r.route.total_reward().to_bits(),
            "rewards not bit-identical"
        );
        for (a, b) in d
            .route
            .arrival_offsets()
            .iter()
            .zip(r.route.arrival_offsets())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "arrivals not bit-identical");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any churn script over any base center: delta == cold regen, bit
    /// for bit, both unpruned and ε-pruned.
    #[test]
    fn delta_update_matches_cold_regeneration(
        base in arb_instance(),
        script in prop::collection::vec(arb_churn(), 0..6),
        age in 0.0f64..3.0,
        pruned in prop::bool::ANY,
    ) {
        let config = if pruned {
            VdpsConfig::pruned(3.0, 3)
        } else {
            VdpsConfig::unpruned(3)
        };
        let aggs = base.dp_aggregates();
        let views = base.center_views();
        prop_assert!(!views.is_empty());
        let (pool, stats) = generate_c_vdps(&base, &aggs, &views[0], &config);
        let cache = PoolCache::capture(&base, &aggs, &views[0], &config, &pool, &stats);
        let churned = apply_churn(&base, &script, age);
        assert_pools_bit_identical(&churned, &config, &cache);
    }

    /// The provenance-guided strategy-space rebuild
    /// ([`StrategySpace::from_pool_delta`]) is bit-identical to a full
    /// [`StrategySpace::from_pool`] over the same delta-updated pool:
    /// slots, payoffs, masks, and both iteration orders.
    #[test]
    fn from_pool_delta_space_matches_cold_build(
        base in arb_instance(),
        script in prop::collection::vec(arb_churn(), 0..6),
        age in 0.0f64..3.0,
        pruned in prop::bool::ANY,
    ) {
        let config = if pruned {
            VdpsConfig::pruned(3.0, 3)
        } else {
            VdpsConfig::unpruned(3)
        };
        let aggs = base.dp_aggregates();
        let views = base.center_views();
        prop_assert!(!views.is_empty());
        let (pool, stats) = generate_c_vdps(&base, &aggs, &views[0], &config);
        let cache = PoolCache::capture(&base, &aggs, &views[0], &config, &pool, &stats);
        let base_space = StrategySpace::from_pool(&base, &views[0], pool, stats);
        let slots = SlotCache::capture(&base_space);

        let churned = apply_churn(&base, &script, age);
        let aggs2 = churned.dp_aggregates();
        let views2 = churned.center_views();
        if !views2.is_empty() {
        let (pool2, prov, dstats) =
            delta_update_with_provenance(&churned, &aggs2, &views2[0], &config, &cache)
                .expect("delta supports add/remove/reward/age churn");
        let gen2 = dstats.as_gen_stats(pool2.len());
        let cold = StrategySpace::from_pool(&churned, &views2[0], pool2.clone(), gen2);
        let warm =
            StrategySpace::from_pool_delta(&churned, views2[0].clone(), pool2, &prov, &slots, gen2);

        prop_assert_eq!(warm.total_slots(), cold.total_slots());
        for local in 0..cold.n_workers() {
            prop_assert_eq!(warm.valid_of(local), cold.valid_of(local), "valid sets differ");
            prop_assert_eq!(warm.masks_of(local), cold.masks_of(local), "masks differ");
            prop_assert_eq!(warm.desc_pool_of(local), cold.desc_pool_of(local), "desc order differs");
            prop_assert_eq!(warm.desc_slots_of(local), cold.desc_slots_of(local), "desc slots differ");
            for (a, b) in warm.payoffs_of(local).iter().zip(cold.payoffs_of(local)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "payoffs not bit-identical");
            }
            for (a, b) in warm.desc_payoffs_of(local).iter().zip(cold.desc_payoffs_of(local)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "desc payoffs not bit-identical");
            }
        }
        for (a, b) in warm.worker_to_dc.iter().zip(&cold.worker_to_dc) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "travel times not bit-identical");
        }
        }
    }

    /// Pure aging — the dominant churn in a round loop — never discovers
    /// masks and still matches regeneration exactly.
    #[test]
    fn pure_aging_matches_regen_without_discovery(
        base in arb_instance(),
        age in 0.0f64..6.0,
    ) {
        let config = VdpsConfig::unpruned(3);
        let aggs = base.dp_aggregates();
        let views = base.center_views();
        prop_assert!(!views.is_empty());
        let (pool, stats) = generate_c_vdps(&base, &aggs, &views[0], &config);
        let cache = PoolCache::capture(&base, &aggs, &views[0], &config, &pool, &stats);
        let churned = apply_churn(&base, &[], age);
        let aggs2 = churned.dp_aggregates();
        let views2 = churned.center_views();
        let view2 = views2.first().cloned().unwrap_or(fta_core::instance::CenterView {
            center: CenterId(0),
            workers: Vec::new(),
            dps: Vec::new(),
        });
        let (_, dstats) = delta_update(&churned, &aggs2, &view2, &config, &cache)
            .expect("aging is always delta-supported");
        prop_assert_eq!(dstats.discovered, 0, "tightening can never create masks");
        assert_pools_bit_identical(&churned, &config, &cache);
    }
}

//! Paper-scale acceptance tests of the flat-frontier engine (ISSUE 2).
//!
//! A single distribution center with ~80 task-bearing delivery points —
//! the scale of the paper's SYN experiments — is generated
//! deterministically, and the flat engine must (a) reproduce pinned work
//! counters exactly, (b) produce pools bit-identical to the hash-map
//! oracle, and (c) be invariant under pooled parallel execution,
//! including the parallel per-worker validation path of
//! `StrategySpace::from_pool_in`.

use fta_core::Instance;
use fta_data::{generate_syn, SynConfig};
use fta_vdps::generator::generate_c_vdps_hashmap;
use fta_vdps::{generate_c_vdps_flat, StrategySpace, Vdps, VdpsConfig, WorkerPool};

/// One SYN center at the scale of the paper's experiments (80 delivery
/// points, every one task-bearing).
fn paper_scale_center(seed: u64) -> Instance {
    generate_syn(
        &SynConfig {
            n_centers: 1,
            n_workers: 24,
            n_tasks: 1_600,
            n_delivery_points: 80,
            extent: 4.0,
            ..SynConfig::bench_scale()
        },
        seed,
    )
}

fn assert_pools_bit_identical(a: &[Vdps], b: &[Vdps], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: pool sizes differ");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.mask, y.mask, "{what}: mask order differs");
        assert_eq!(
            x.route.dps(),
            y.route.dps(),
            "{what}: route differs on mask {:#b}",
            x.mask
        );
        assert_eq!(
            x.route.travel_from_dc().to_bits(),
            y.route.travel_from_dc().to_bits(),
            "{what}: travel time not bit-identical on mask {:#b}",
            x.mask
        );
    }
}

#[test]
fn paper_scale_counters_are_pinned_and_engine_independent() {
    let inst = paper_scale_center(2024);
    let aggs = inst.dp_aggregates();
    let views = inst.center_views();
    assert!(
        (60..=100).contains(&views[0].dps.len()),
        "expected a paper-scale center, got {} dps",
        views[0].dps.len()
    );

    for (config, pinned) in [
        // The paper's SYN defaults: ε = 2 km, maxDP = 3 (Table I).
        (VdpsConfig::pruned(2.0, 3), PINNED_PRUNED),
        // The unpruned `-W` variant.
        (VdpsConfig::unpruned(3), PINNED_UNPRUNED),
    ] {
        let (flat, flat_stats) = generate_c_vdps_flat(&inst, &aggs, &views[0], &config, None);
        let (hashed, hashed_stats) = generate_c_vdps_hashmap(&inst, &aggs, &views[0], &config);
        assert_pools_bit_identical(&flat, &hashed, "flat vs hashmap");
        assert_eq!(
            flat_stats.work_counters(),
            hashed_stats.work_counters(),
            "engines disagree on work counters (ε = {:?})",
            config.epsilon
        );
        assert_eq!(
            flat_stats.work_counters(),
            pinned,
            "work counters drifted from the pinned acceptance values \
             (ε = {:?}); a deliberate generator change must update them",
            config.epsilon
        );
    }
}

/// Pinned `(states, extensions_tried, pruned_by_distance,
/// pruned_by_deadline, vdps_count)` for `paper_scale_center(2024)` with
/// ε = 2 km, maxDP = 3.
const PINNED_PRUNED: (usize, usize, usize, usize, usize) = PINNED[0];
/// Same center, unpruned (`-W`).
const PINNED_UNPRUNED: (usize, usize, usize, usize, usize) = PINNED[1];
const PINNED: [(usize, usize, usize, usize, usize); 2] = [
    (84_704, 248_512, 118_310, 0, 34_809),
    (252_741, 499_360, 0, 5_825, 85_400),
];

#[test]
fn paper_scale_pools_are_thread_count_invariant() {
    let inst = paper_scale_center(7);
    let aggs = inst.dp_aggregates();
    let views = inst.center_views();
    let config = VdpsConfig::unpruned(3);

    let (seq, seq_stats) = generate_c_vdps_flat(&inst, &aggs, &views[0], &config, None);
    assert!(!seq.is_empty());
    for threads in [2, 4, 8] {
        let pool = WorkerPool::with_threads(threads);
        let (par, par_stats) =
            pool.scope(|ts| generate_c_vdps_flat(&inst, &aggs, &views[0], &config, Some(ts)));
        assert_pools_bit_identical(&seq, &par, &format!("sequential vs {threads} threads"));
        assert_eq!(seq_stats.work_counters(), par_stats.work_counters());
        // At this scale the frontier passes the chunking threshold, so the
        // pooled run must actually have split layers into multiple chunks.
        assert!(
            par_stats.chunks > seq_stats.chunks,
            "pooled run did not chunk ({} vs {})",
            par_stats.chunks,
            seq_stats.chunks
        );
    }
}

#[test]
fn paper_scale_strategy_space_is_thread_count_invariant() {
    let inst = paper_scale_center(99);
    let aggs = inst.dp_aggregates();
    let views = inst.center_views();
    let config = VdpsConfig::unpruned(3);

    let seq = StrategySpace::build(&inst, &views[0], &config);
    // Enough work that `from_pool_in` takes its parallel validation path.
    assert!(seq.n_workers() * seq.pool.len() >= 1 << 12);

    for threads in [2, 4] {
        let pool = WorkerPool::with_threads(threads);
        let par = pool
            .scope(|ts| StrategySpace::build_in(&inst, &aggs, views[0].clone(), &config, Some(ts)));
        assert_eq!(seq.n_workers(), par.n_workers());
        assert_eq!(seq.pool.len(), par.pool.len());
        for local in 0..seq.n_workers() {
            assert_eq!(
                seq.valid_of(local),
                par.valid_of(local),
                "{threads} threads: valid sets differ"
            );
            let (a, b) = (seq.payoffs_of(local), par.payoffs_of(local));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "payoff not bit-identical");
            }
        }
    }
}

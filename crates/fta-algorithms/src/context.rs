//! Shared mutable game state: who currently holds which strategy.
//!
//! Every assignment algorithm in this crate manipulates a [`GameContext`]:
//! the per-worker strategy selection over one center's
//! [`fta_vdps::StrategySpace`], with Definition 8's
//! disjointness tracked as a single `u128` bitmask union — checking whether
//! a candidate VDPS conflicts with everyone else's selection is one AND.

use fta_core::{Assignment, WorkerId};
use fta_vdps::StrategySpace;

/// Mutable selection state over one center's strategy space.
#[derive(Debug, Clone)]
pub struct GameContext<'a> {
    space: &'a StrategySpace,
    /// Per local worker: index into `space.pool`, or `None` for the null
    /// strategy.
    selection: Vec<Option<u32>>,
    /// Union of the masks of all selected VDPSs.
    taken: u128,
    /// Cached payoff per local worker (`0.0` for null).
    payoffs: Vec<f64>,
}

impl<'a> GameContext<'a> {
    /// Creates a context with every worker on the null strategy.
    #[must_use]
    pub fn new(space: &'a StrategySpace) -> Self {
        let n = space.n_workers();
        Self {
            space,
            selection: vec![None; n],
            taken: 0,
            payoffs: vec![0.0; n],
        }
    }

    /// The strategy space this context plays over.
    #[must_use]
    pub fn space(&self) -> &'a StrategySpace {
        self.space
    }

    /// Number of workers in the population.
    #[must_use]
    pub fn n_workers(&self) -> usize {
        self.selection.len()
    }

    /// The pool index currently selected by the `local`-th worker.
    #[must_use]
    pub fn selection(&self, local: usize) -> Option<u32> {
        self.selection[local]
    }

    /// The current payoff of the `local`-th worker (`0.0` for null).
    #[must_use]
    pub fn payoff(&self, local: usize) -> f64 {
        self.payoffs[local]
    }

    /// The full payoff vector (local-worker order).
    #[must_use]
    pub fn payoffs(&self) -> &[f64] {
        &self.payoffs
    }

    /// Sum of all workers' payoffs.
    #[must_use]
    pub fn total_payoff(&self) -> f64 {
        self.payoffs.iter().sum()
    }

    /// Whether pool entry `pool_idx` would be disjoint from every *other*
    /// worker's selection if `local` adopted it (the worker's own current
    /// selection does not block it).
    #[must_use]
    pub fn is_available(&self, local: usize, pool_idx: u32) -> bool {
        let candidate = self.space.pool[pool_idx as usize].mask;
        let own = self.own_mask(local);
        candidate & (self.taken & !own) == 0
    }

    /// The mask currently held by the `local`-th worker (0 for null).
    #[must_use]
    pub fn own_mask(&self, local: usize) -> u128 {
        self.selection[local].map_or(0, |idx| self.space.pool[idx as usize].mask)
    }

    /// The union of the delivery-point masks of every worker's current
    /// selection (Definition 8's disjointness invariant: this must always
    /// equal the OR — and the disjoint sum — of the selected VDPS masks).
    #[must_use]
    pub fn taken_mask(&self) -> u128 {
        self.taken
    }

    /// Switches the `local`-th worker to `strategy` (a pool index valid for
    /// that worker, or `None` for null), updating the conflict mask and the
    /// cached payoff. Returns the previous selection.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the strategy is not in the worker's valid
    /// set or conflicts with another worker's selection.
    pub fn set_strategy(&mut self, local: usize, strategy: Option<u32>) -> Option<u32> {
        let prev = self.selection[local];
        self.taken &= !self.own_mask(local);
        match strategy {
            Some(idx) => {
                let payoff = self
                    .space
                    .payoff_of(local, idx)
                    .expect("strategy must be valid for the worker");
                let mask = self.space.pool[idx as usize].mask;
                debug_assert_eq!(
                    mask & self.taken,
                    0,
                    "strategy conflicts with another worker's selection"
                );
                self.taken |= mask;
                self.selection[local] = Some(idx);
                self.payoffs[local] = payoff;
            }
            None => {
                self.selection[local] = None;
                self.payoffs[local] = 0.0;
            }
        }
        prev
    }

    /// Iterator over the pool indices of the `local`-th worker's valid
    /// strategies that are currently available (disjoint from others).
    pub fn available_strategies(&self, local: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let other_taken = self.taken & !self.own_mask(local);
        self.space.valid[local]
            .iter()
            .zip(&self.space.payoffs[local])
            .filter(move |(&idx, _)| self.space.pool[idx as usize].mask & other_taken == 0)
            .map(|(&idx, &p)| (idx, p))
    }

    /// Materialises the current selection as an [`Assignment`].
    #[must_use]
    pub fn to_assignment(&self) -> Assignment {
        self.selection
            .iter()
            .enumerate()
            .filter_map(|(local, sel)| {
                sel.map(|idx| {
                    (
                        self.space.worker_id(local),
                        self.space.pool[idx as usize].route.clone(),
                    )
                })
            })
            .collect()
    }

    /// The worker ids of this population, in local order.
    #[must_use]
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        self.space.view.workers.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use fta_core::geometry::Point;
    use fta_core::ids::{CenterId, DeliveryPointId, TaskId};
    use fta_core::Instance;
    use fta_vdps::VdpsConfig;

    /// dc at origin; three dps on a line; two identical workers at dc.
    pub(crate) fn three_dp_instance() -> Instance {
        let dps: Vec<DeliveryPoint> = (0..3)
            .map(|i| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new((i + 1) as f64, 0.0),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = (0..3)
            .map(|i| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: 50.0,
                reward: (i + 1) as f64,
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![
                Worker {
                    id: WorkerId(0),
                    location: Point::new(0.0, 0.5),
                    max_dp: 2,
                    center: CenterId(0),
                },
                Worker {
                    id: WorkerId(1),
                    location: Point::new(0.5, 0.0),
                    max_dp: 2,
                    center: CenterId(0),
                },
            ],
            dps,
            tasks,
            1.0,
        )
        .unwrap()
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(2))
    }

    #[test]
    fn fresh_context_is_all_null() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let ctx = GameContext::new(&s);
        assert_eq!(ctx.n_workers(), 2);
        assert_eq!(ctx.payoffs(), &[0.0, 0.0]);
        assert_eq!(ctx.to_assignment().assigned_workers(), 0);
    }

    #[test]
    fn selection_blocks_conflicting_strategies() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        // Worker 0 takes {dp0} (mask 0b001).
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        assert!(ctx.payoff(0) > 0.0);
        // Worker 1 may not take anything containing dp0.
        let pair = s.pool.iter().position(|v| v.mask == 0b011).unwrap() as u32;
        assert!(!ctx.is_available(1, pair));
        let dp1 = s.pool.iter().position(|v| v.mask == 0b010).unwrap() as u32;
        assert!(ctx.is_available(1, dp1));
        // Worker 0 itself can upgrade to a superset of its own mask.
        assert!(ctx.is_available(0, pair));
    }

    #[test]
    fn set_strategy_releases_previous_mask() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        let dp1 = s.pool.iter().position(|v| v.mask == 0b010).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        let prev = ctx.set_strategy(0, Some(dp1));
        assert_eq!(prev, Some(dp0));
        // dp0 is free again.
        assert!(ctx.is_available(1, dp0));
    }

    #[test]
    fn available_strategies_excludes_taken() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let all: Vec<u32> = ctx.available_strategies(1).map(|(i, _)| i).collect();
        assert_eq!(all.len(), s.valid[1].len());
        let dp2 = s.pool.iter().position(|v| v.mask == 0b100).unwrap() as u32;
        ctx.set_strategy(0, Some(dp2));
        let remaining: Vec<u32> = ctx.available_strategies(1).map(|(i, _)| i).collect();
        assert!(remaining.len() < all.len());
        assert!(remaining
            .iter()
            .all(|&i| s.pool[i as usize].mask & 0b100 == 0));
    }

    #[test]
    fn to_assignment_round_trips_and_validates() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        let dp12 = s.pool.iter().position(|v| v.mask == 0b110).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        ctx.set_strategy(1, Some(dp12));
        let a = ctx.to_assignment();
        assert_eq!(a.assigned_workers(), 2);
        assert!(a.validate(&inst).is_ok());
        // Assignment payoffs match cached context payoffs.
        let ws = ctx.worker_ids();
        let payoffs = a.payoffs(&inst, &ws);
        for (cached, fresh) in ctx.payoffs().iter().zip(payoffs.iter()) {
            assert!((cached - fresh).abs() < 1e-12);
        }
    }

    #[test]
    fn unassigning_returns_to_null() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        ctx.set_strategy(0, None);
        assert_eq!(ctx.payoff(0), 0.0);
        assert_eq!(ctx.own_mask(0), 0);
        assert!(ctx.is_available(1, dp0));
    }
}

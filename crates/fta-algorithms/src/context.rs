//! Shared mutable game state: who currently holds which strategy.
//!
//! Every assignment algorithm in this crate manipulates a [`GameContext`]:
//! the per-worker strategy selection over one center's
//! [`fta_vdps::StrategySpace`], with Definition 8's
//! disjointness tracked as a single `u128` bitmask union — checking whether
//! a candidate VDPS conflicts with everyone else's selection is one AND.

use fta_core::{Assignment, WorkerId};
use fta_vdps::{kernel, ScanKernel, StrategySpace};

/// Counters describing one monotone descending scan over a worker's
/// payoff-sorted strategy list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescScan {
    /// Slots examined (including the one that terminated the scan).
    pub scanned: u64,
    /// Whether the scan stopped before exhausting the worker's list.
    pub early_exit: bool,
}

/// Mutable selection state over one center's strategy space.
#[derive(Debug, Clone)]
pub struct GameContext<'a> {
    space: &'a StrategySpace,
    /// Per local worker: index into `space.pool`, or `None` for the null
    /// strategy.
    selection: Vec<Option<u32>>,
    /// Union of the masks of all selected VDPSs.
    taken: u128,
    /// Cached payoff per local worker (`0.0` for null).
    payoffs: Vec<f64>,
    /// Cached mask per local worker (`0` for null) — avoids the
    /// `pool[idx].mask` indirection on every availability probe.
    own_masks: Vec<u128>,
    /// Running sum of `payoffs` maintained on [`GameContext::set_strategy`]
    /// (replaces the former O(n) re-fold per [`GameContext::total_payoff`]
    /// call). Floating-point drift versus a fresh fold is bounded by a few
    /// ulps per switch, far below every decision margin in this crate.
    total: f64,
    /// Per-slot count of delivery-point bits shared with *other* workers'
    /// current selections (`popcount(mask[slot] & (taken \ own(owner)))`),
    /// maintained incrementally through the space's inverted conflict
    /// index. Empty when the space is below the crossover threshold and
    /// availability falls back to the mask scan.
    conflicts: Vec<u32>,
    /// Per-slot conflict-counter adjustments performed so far (the
    /// `br.index_updates` statistic).
    index_updates: u64,
    /// Which availability-scan kernel the descending probes use. Read
    /// once from the installed hotpath profile at construction; both
    /// kernels return bit-identical results and counters, so this only
    /// affects throughput.
    scan_kernel: ScanKernel,
}

impl<'a> GameContext<'a> {
    /// Creates a context with every worker on the null strategy.
    #[must_use]
    pub fn new(space: &'a StrategySpace) -> Self {
        let n = space.n_workers();
        let conflicts = if space.conflict_sets().is_some() {
            // All workers start on null, so nothing conflicts yet.
            vec![0u32; space.total_slots()]
        } else {
            Vec::new()
        };
        Self {
            space,
            selection: vec![None; n],
            taken: 0,
            payoffs: vec![0.0; n],
            own_masks: vec![0; n],
            total: 0.0,
            conflicts,
            index_updates: 0,
            scan_kernel: fta_vdps::hotpath::current().scan_kernel,
        }
    }

    /// Overrides the availability-scan kernel for this context. Test and
    /// bench hook: lets equivalence suites A/B the kernels without
    /// mutating the process-wide hotpath profile.
    #[doc(hidden)]
    pub fn set_scan_kernel(&mut self, kernel: ScanKernel) {
        self.scan_kernel = kernel;
    }

    /// The strategy space this context plays over.
    #[must_use]
    pub fn space(&self) -> &'a StrategySpace {
        self.space
    }

    /// Number of workers in the population.
    #[must_use]
    pub fn n_workers(&self) -> usize {
        self.selection.len()
    }

    /// The pool index currently selected by the `local`-th worker.
    #[must_use]
    pub fn selection(&self, local: usize) -> Option<u32> {
        self.selection[local]
    }

    /// The current payoff of the `local`-th worker (`0.0` for null).
    #[must_use]
    pub fn payoff(&self, local: usize) -> f64 {
        self.payoffs[local]
    }

    /// The full payoff vector (local-worker order).
    #[must_use]
    pub fn payoffs(&self) -> &[f64] {
        &self.payoffs
    }

    /// Sum of all workers' payoffs (maintained incrementally).
    #[must_use]
    pub fn total_payoff(&self) -> f64 {
        self.total
    }

    /// Whether pool entry `pool_idx` would be disjoint from every *other*
    /// worker's selection if `local` adopted it (the worker's own current
    /// selection does not block it).
    #[must_use]
    pub fn is_available(&self, local: usize, pool_idx: u32) -> bool {
        let candidate = self.space.pool[pool_idx as usize].mask;
        let own = self.own_masks[local];
        candidate & (self.taken & !own) == 0
    }

    /// The mask currently held by the `local`-th worker (0 for null).
    #[must_use]
    pub fn own_mask(&self, local: usize) -> u128 {
        self.own_masks[local]
    }

    /// Whether the incremental conflict index is active for this context
    /// (the space cleared the crossover threshold and built its inverted
    /// index).
    #[must_use]
    pub fn index_active(&self) -> bool {
        !self.conflicts.is_empty()
    }

    /// Conflict-counter adjustments performed so far (each ±1 applied to a
    /// slot's counter counts once).
    #[must_use]
    pub fn index_updates(&self) -> u64 {
        self.index_updates
    }

    /// The union of the delivery-point masks of every worker's current
    /// selection (Definition 8's disjointness invariant: this must always
    /// equal the OR — and the disjoint sum — of the selected VDPS masks).
    #[must_use]
    pub fn taken_mask(&self) -> u128 {
        self.taken
    }

    /// Switches the `local`-th worker to `strategy` (a pool index valid for
    /// that worker, or `None` for null), updating the conflict mask and the
    /// cached payoff. Returns the previous selection.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the strategy is not in the worker's valid
    /// set or conflicts with another worker's selection.
    pub fn set_strategy(&mut self, local: usize, strategy: Option<u32>) -> Option<u32> {
        let prev = self.selection[local];
        let prev_mask = self.own_masks[local];
        self.taken &= !prev_mask;
        let (new_mask, payoff) = match strategy {
            Some(idx) => {
                let payoff = self
                    .space
                    .payoff_of(local, idx)
                    .expect("strategy must be valid for the worker");
                let mask = self.space.pool[idx as usize].mask;
                debug_assert_eq!(
                    mask & self.taken,
                    0,
                    "strategy conflicts with another worker's selection"
                );
                (mask, payoff)
            }
            None => (0, 0.0),
        };
        self.taken |= new_mask;
        self.selection[local] = strategy;
        self.total += payoff - self.payoffs[local];
        self.payoffs[local] = payoff;
        self.own_masks[local] = new_mask;
        if !self.conflicts.is_empty() && prev_mask != new_mask {
            self.apply_mask_delta(local, prev_mask, new_mask);
        }
        prev
    }

    /// Propagates a worker's mask change through the inverted conflict
    /// index: every slot containing a newly-taken bit gains a conflict,
    /// every slot containing a freed bit loses one. The mover's own slots
    /// are skipped — their counters track conflicts with *other* workers
    /// only, which is exactly the availability predicate.
    fn apply_mask_delta(&mut self, local: usize, prev: u128, new: u128) {
        let space: &'a StrategySpace = self.space;
        let sets = space
            .conflict_sets()
            .expect("conflict counters imply an inverted index");
        let range = space.slot_range(local);
        let mut added = new & !prev;
        while added != 0 {
            let bit = added.trailing_zeros();
            for &slot in sets.slots_of(bit) {
                let s = slot as usize;
                if !range.contains(&s) {
                    self.conflicts[s] += 1;
                    self.index_updates += 1;
                }
            }
            added &= added - 1;
        }
        let mut removed = prev & !new;
        while removed != 0 {
            let bit = removed.trailing_zeros();
            for &slot in sets.slots_of(bit) {
                let s = slot as usize;
                if !range.contains(&s) {
                    self.conflicts[s] -= 1;
                    self.index_updates += 1;
                }
            }
            removed &= removed - 1;
        }
    }

    /// Iterator over the pool indices of the `local`-th worker's valid
    /// strategies that are currently available (disjoint from others), in
    /// ascending pool-index order. Streams the space's flat SoA slices;
    /// availability comes from the incremental conflict counters when the
    /// index is active and from a linear mask scan otherwise (identical
    /// results either way).
    pub fn available_strategies(&self, local: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let valid = self.space.valid_of(local);
        let payoffs = self.space.payoffs_of(local);
        let masks = self.space.masks_of(local);
        let other_taken = self.taken & !self.own_masks[local];
        let conflicts: &[u32] = if self.conflicts.is_empty() {
            &[]
        } else {
            &self.conflicts[self.space.slot_range(local)]
        };
        (0..valid.len()).filter_map(move |pos| {
            let open = if conflicts.is_empty() {
                masks[pos] & other_taken == 0
            } else {
                conflicts[pos] == 0
            };
            open.then(|| (valid[pos], payoffs[pos]))
        })
    }

    /// The highest-payoff *available* strategy of the `local`-th worker:
    /// a first-hit scan over the space's payoff-descending slot order with
    /// early exit (payoff ties resolve to the lowest pool index, matching
    /// the exhaustive engines' first-strict-maximum rule). Returns the
    /// winning `(pool index, payoff)` — or `None` when nothing is
    /// available — plus the scan counters.
    #[must_use]
    pub fn best_available_desc(&self, local: usize) -> (Option<(u32, f64)>, DescScan) {
        let pool_idx = self.space.desc_pool_of(local);
        let payoffs = self.space.desc_payoffs_of(local);
        let len = pool_idx.len();
        // Both kernels report the first open position; `scanned` is the
        // number of slots logically examined up to and including the hit,
        // exactly as the historical scalar loop counted them.
        let hit = if self.conflicts.is_empty() {
            let masks = self.space.desc_masks_of(local);
            let other_taken = self.taken & !self.own_masks[local];
            match self.scan_kernel {
                ScanKernel::Chunked => kernel::first_open_chunked(masks, other_taken),
                ScanKernel::Scalar => kernel::first_open_scalar(masks, other_taken),
            }
        } else {
            let slots = self.space.desc_slots_of(local);
            match self.scan_kernel {
                ScanKernel::Chunked => kernel::first_zero_chunked(slots, &self.conflicts),
                ScanKernel::Scalar => kernel::first_zero_scalar(slots, &self.conflicts),
            }
        };
        match hit {
            Some(pos) => (
                Some((pool_idx[pos], payoffs[pos])),
                DescScan {
                    scanned: (pos + 1) as u64,
                    early_exit: pos + 1 < len,
                },
            ),
            None => (
                None,
                DescScan {
                    scanned: len as u64,
                    early_exit: false,
                },
            ),
        }
    }

    /// Collects every *available* strategy of the `local`-th worker whose
    /// payoff strictly exceeds `threshold`, scanning the payoff-descending
    /// order and stopping at the first payoff at or below the threshold
    /// (monotone early exit). The collected candidates are sorted back to
    /// ascending pool-index order so callers observe exactly the sequence
    /// the exhaustive ascending filter would have produced.
    pub fn better_available_desc(
        &self,
        local: usize,
        threshold: f64,
        out: &mut Vec<(u32, f64)>,
    ) -> DescScan {
        out.clear();
        let pool_idx = self.space.desc_pool_of(local);
        let payoffs = self.space.desc_payoffs_of(local);
        let len = pool_idx.len();
        // Payoffs are non-increasing and finite (validated at instance
        // construction), so `p > threshold` holds on exactly a prefix and
        // the monotone cutoff is a binary search, not a linear walk. The
        // counters reproduce the historical scalar loop: positions
        // `0..cut` were examined plus the one that terminated the scan.
        let cut = payoffs.partition_point(|&p| p > threshold);
        let (scanned, early_exit) = if cut < len {
            ((cut + 1) as u64, cut + 1 < len)
        } else {
            (len as u64, false)
        };
        if !self.conflicts.is_empty() {
            let slots = self.space.desc_slots_of(local);
            let push = |pos: usize| out.push((pool_idx[pos], payoffs[pos]));
            match self.scan_kernel {
                ScanKernel::Chunked => {
                    kernel::for_each_zero_chunked(slots, cut, &self.conflicts, push);
                }
                ScanKernel::Scalar => {
                    kernel::for_each_zero_scalar(slots, cut, &self.conflicts, push);
                }
            }
        } else {
            let masks = self.space.desc_masks_of(local);
            let other_taken = self.taken & !self.own_masks[local];
            let push = |pos: usize| out.push((pool_idx[pos], payoffs[pos]));
            match self.scan_kernel {
                ScanKernel::Chunked => {
                    kernel::for_each_open_chunked(masks, cut, other_taken, push);
                }
                ScanKernel::Scalar => {
                    kernel::for_each_open_scalar(masks, cut, other_taken, push);
                }
            }
        }
        out.sort_unstable_by_key(|&(idx, _)| idx);
        DescScan {
            scanned,
            early_exit,
        }
    }

    /// Materialises the current selection as an [`Assignment`].
    ///
    /// Routes are shared with the strategy-space pool (`Arc` refcount
    /// bumps), so this is O(assigned workers · log n) map insertion with
    /// no per-route allocation.
    #[must_use]
    pub fn to_assignment(&self) -> Assignment {
        self.selection
            .iter()
            .enumerate()
            .filter_map(|(local, sel)| {
                sel.map(|idx| {
                    (
                        self.space.worker_id(local),
                        std::sync::Arc::clone(&self.space.pool[idx as usize].route),
                    )
                })
            })
            .collect()
    }

    /// The worker ids of this population, in local order.
    #[must_use]
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        self.space.view.workers.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use fta_core::geometry::Point;
    use fta_core::ids::{CenterId, DeliveryPointId, TaskId};
    use fta_core::Instance;
    use fta_vdps::VdpsConfig;

    /// dc at origin; three dps on a line; two identical workers at dc.
    pub(crate) fn three_dp_instance() -> Instance {
        let dps: Vec<DeliveryPoint> = (0..3)
            .map(|i| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new((i + 1) as f64, 0.0),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = (0..3)
            .map(|i| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: 50.0,
                reward: (i + 1) as f64,
            })
            .collect();
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![
                Worker {
                    id: WorkerId(0),
                    location: Point::new(0.0, 0.5),
                    max_dp: 2,
                    center: CenterId(0),
                },
                Worker {
                    id: WorkerId(1),
                    location: Point::new(0.5, 0.0),
                    max_dp: 2,
                    center: CenterId(0),
                },
            ],
            dps,
            tasks,
            1.0,
        )
        .unwrap()
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(2))
    }

    #[test]
    fn fresh_context_is_all_null() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let ctx = GameContext::new(&s);
        assert_eq!(ctx.n_workers(), 2);
        assert_eq!(ctx.payoffs(), &[0.0, 0.0]);
        assert_eq!(ctx.to_assignment().assigned_workers(), 0);
    }

    #[test]
    fn selection_blocks_conflicting_strategies() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        // Worker 0 takes {dp0} (mask 0b001).
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        assert!(ctx.payoff(0) > 0.0);
        // Worker 1 may not take anything containing dp0.
        let pair = s.pool.iter().position(|v| v.mask == 0b011).unwrap() as u32;
        assert!(!ctx.is_available(1, pair));
        let dp1 = s.pool.iter().position(|v| v.mask == 0b010).unwrap() as u32;
        assert!(ctx.is_available(1, dp1));
        // Worker 0 itself can upgrade to a superset of its own mask.
        assert!(ctx.is_available(0, pair));
    }

    #[test]
    fn set_strategy_releases_previous_mask() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        let dp1 = s.pool.iter().position(|v| v.mask == 0b010).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        let prev = ctx.set_strategy(0, Some(dp1));
        assert_eq!(prev, Some(dp0));
        // dp0 is free again.
        assert!(ctx.is_available(1, dp0));
    }

    #[test]
    fn available_strategies_excludes_taken() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let all: Vec<u32> = ctx.available_strategies(1).map(|(i, _)| i).collect();
        assert_eq!(all.len(), s.strategy_count(1));
        let dp2 = s.pool.iter().position(|v| v.mask == 0b100).unwrap() as u32;
        ctx.set_strategy(0, Some(dp2));
        let remaining: Vec<u32> = ctx.available_strategies(1).map(|(i, _)| i).collect();
        assert!(remaining.len() < all.len());
        assert!(remaining
            .iter()
            .all(|&i| s.pool[i as usize].mask & 0b100 == 0));
    }

    #[test]
    fn to_assignment_round_trips_and_validates() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        let dp12 = s.pool.iter().position(|v| v.mask == 0b110).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        ctx.set_strategy(1, Some(dp12));
        let a = ctx.to_assignment();
        assert_eq!(a.assigned_workers(), 2);
        assert!(a.validate(&inst).is_ok());
        // Assignment payoffs match cached context payoffs.
        let ws = ctx.worker_ids();
        let payoffs = a.payoffs(&inst, &ws);
        for (cached, fresh) in ctx.payoffs().iter().zip(payoffs.iter()) {
            assert!((cached - fresh).abs() < 1e-12);
        }
    }

    #[test]
    fn running_total_matches_fold_and_own_mask_cache_is_exact() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        let dp12 = s.pool.iter().position(|v| v.mask == 0b110).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        ctx.set_strategy(1, Some(dp12));
        let fold: f64 = ctx.payoffs().iter().sum();
        assert!((ctx.total_payoff() - fold).abs() < 1e-12);
        assert_eq!(ctx.own_mask(0), 0b001);
        assert_eq!(ctx.own_mask(1), 0b110);
        ctx.set_strategy(0, None);
        let fold: f64 = ctx.payoffs().iter().sum();
        assert!((ctx.total_payoff() - fold).abs() < 1e-12);
        assert_eq!(ctx.own_mask(0), 0);
    }

    #[test]
    fn best_available_desc_matches_exhaustive_argmax() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        // With nothing taken, the scan must return the max-payoff strategy
        // (first strict maximum in ascending order on ties).
        for local in 0..ctx.n_workers() {
            let expect = ctx.available_strategies(local).fold(
                None::<(u32, f64)>,
                |acc, (idx, p)| match acc {
                    Some((_, bp)) if p <= bp => acc,
                    _ => Some((idx, p)),
                },
            );
            let (got, scan) = ctx.best_available_desc(local);
            assert_eq!(got, expect, "worker {local}");
            assert!(scan.scanned >= 1);
        }
        // Occupy dps so some strategies are blocked, and re-check.
        let dp12 = s.pool.iter().position(|v| v.mask == 0b110).unwrap() as u32;
        ctx.set_strategy(0, Some(dp12));
        let expect =
            ctx.available_strategies(1)
                .fold(None::<(u32, f64)>, |acc, (idx, p)| match acc {
                    Some((_, bp)) if p <= bp => acc,
                    _ => Some((idx, p)),
                });
        let (got, _) = ctx.best_available_desc(1);
        assert_eq!(got, expect);
    }

    #[test]
    fn better_available_desc_matches_exhaustive_filter() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        for threshold in [0.0, 0.5, 1.0, 2.0, 100.0] {
            let expect: Vec<(u32, f64)> = ctx
                .available_strategies(1)
                .filter(|&(_, p)| p > threshold)
                .collect();
            let mut got = Vec::new();
            ctx.better_available_desc(1, threshold, &mut got);
            assert_eq!(got, expect, "threshold {threshold}");
        }
    }

    #[test]
    fn small_spaces_skip_the_conflict_index() {
        let inst = three_dp_instance();
        let s = space(&inst);
        assert!(s.total_slots() < fta_vdps::CONFLICT_INDEX_MIN_SLOTS);
        assert!(s.conflict_sets().is_none());
        let mut ctx = GameContext::new(&s);
        assert!(!ctx.index_active());
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        assert_eq!(ctx.index_updates(), 0);
    }

    #[test]
    fn unassigning_returns_to_null() {
        let inst = three_dp_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let dp0 = s.pool.iter().position(|v| v.mask == 0b001).unwrap() as u32;
        ctx.set_strategy(0, Some(dp0));
        ctx.set_strategy(0, None);
        assert_eq!(ctx.payoff(0), 0.0);
        assert_eq!(ctx.own_mask(0), 0);
        assert!(ctx.is_available(1, dp0));
    }
}

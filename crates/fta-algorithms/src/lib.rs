//! # fta-algorithms — task assignment algorithms for the FTA problem
//!
//! Implements every assignment algorithm evaluated in the paper
//! (Section VII-A) plus two validation baselines:
//!
//! * [`mod@gta`] — **GTA**, Greedy Task Assignment: repeatedly give the worker
//!   with the highest attainable payoff its best available VDPS;
//! * [`mod@mpta`] — **MPTA**, Maximal Payoff Task Assignment: maximises the
//!   *total* payoff (greedy seeding + payoff best-response hill climbing;
//!   the paper uses a tree-decomposition heuristic from external references
//!   — see `DESIGN.md` §3 for the substitution argument);
//! * [`mod@fgt`] — **FGT** (Algorithm 2), the fairness-aware classical game:
//!   sequential asynchronous best response on Inequity-Aversion based
//!   Utility until a pure Nash equilibrium;
//! * [`mod@iegt`] — **IEGT** (Algorithm 3), the improved evolutionary game:
//!   replicator-dynamics-driven strategy adaptation until an improved
//!   evolutionary equilibrium;
//! * [`random`] — random assignment (also the shared random initialisation
//!   of Algorithms 2 and 3, lines 6–16);
//! * [`exact`] — exponential-time exact solvers (minimum payoff difference
//!   and maximum total payoff), used to validate the heuristics on small
//!   instances and to exercise the NP-hardness boundary.
//!
//! All algorithms operate on a [`context::GameContext`] over a
//! per-center [`StrategySpace`](fta_vdps::StrategySpace); the [`solver`]
//! module orchestrates VDPS generation and per-center (optionally
//! threaded) assignment over a whole [`Instance`](fta_core::Instance).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod context;
pub mod degrade;
pub mod exact;
pub mod fgt;
pub mod gta;
pub mod iegt;
pub mod ledger;
pub mod mpta;
pub mod pfgt;
pub mod random;
pub mod report;
pub mod resolve;
pub mod shard;
pub mod solver;
pub mod stats;
pub mod trace;
pub mod warm;

pub use context::{DescScan, GameContext};
pub use degrade::{DegradationEvent, DegradationReport, LadderRung};
pub use exact::{exact_search, ExactObjective};
pub use fgt::{fastpath_sound, fgt, fgt_bounded, fgt_warm_bounded, BestResponseEngine, FgtConfig};
pub use gta::gta;
pub use iegt::{iegt, iegt_bounded, iegt_warm_bounded, IegtConfig, RedrawPolicy};
pub use mpta::{mpta, MptaConfig};
pub use pfgt::{pfgt, pfgt_bounded, pfgt_warm_bounded, PfgtConfig, PrioritySpec};
pub use random::random_assignment;
pub use report::SolveReport;
pub use resolve::{CacheSeed, CenterSeed, ResolveStats, Solver};
pub use shard::{estimate_center_cost, solve_sharded, solve_sharded_with_pool, ShardedSolver};
pub use solver::{
    solve, solve_with_pool, Algorithm, CenterSolveSummary, PanicInjection, SolveConfig,
    SolveOutcome,
};
pub use stats::BestResponseStats;
pub use trace::{ConvergenceTrace, RoundStats};
pub use warm::{profile_of, warm_init, WarmStart};

//! GTA — Greedy Task Assignment (baseline ii of Section VII-A).
//!
//! Repeatedly picks, among the workers not yet served, the worker whose
//! best *available* strategy has the globally highest payoff, and assigns
//! that strategy. Fairness is ignored entirely, which is exactly why the
//! paper uses GTA as the "effective but unfair" baseline.

use crate::context::GameContext;

/// Runs greedy task assignment on `ctx` (which should be freshly created).
///
/// Deterministic: ties between equal payoffs break towards the lower local
/// worker index, then the lower pool index.
pub fn gta(ctx: &mut GameContext<'_>) {
    let n = ctx.n_workers();
    let mut unserved: Vec<bool> = vec![true; n];
    loop {
        // Find the (worker, strategy) pair with the maximum payoff.
        let mut best: Option<(usize, u32, f64)> = None;
        for (local, _) in unserved.iter().enumerate().filter(|&(_, &u)| u) {
            for (idx, payoff) in ctx.available_strategies(local) {
                let better = match best {
                    None => true,
                    Some((_, _, bp)) => payoff > bp,
                };
                if better {
                    best = Some((local, idx, payoff));
                }
            }
        }
        match best {
            Some((local, idx, _)) => {
                ctx.set_strategy(local, Some(idx));
                unserved[local] = false;
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::fig1;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn space(inst: &Instance, max_len: usize) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(max_len))
    }

    #[test]
    fn reproduces_figure_1_greedy_assignment() {
        let inst = fig1::instance();
        let s = space(&inst, 3);
        let mut ctx = GameContext::new(&s);
        gta(&mut ctx);
        let a = ctx.to_assignment();
        assert!(a.validate(&inst).is_ok());
        let payoffs = a.payoffs(&inst, &ctx.worker_ids());
        // The paper's greedy outcome: w1 ≈ 2.80, w2 ≈ 2.09.
        assert!((payoffs[0] - 2.80).abs() < 5e-3, "w1 payoff {}", payoffs[0]);
        assert!((payoffs[1] - 2.09).abs() < 5e-3, "w2 payoff {}", payoffs[1]);
    }

    #[test]
    fn every_worker_gets_their_best_remaining_option() {
        let inst = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 8,
                n_tasks: 80,
                n_delivery_points: 15,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            3,
        );
        let s = space(&inst, 3);
        let mut ctx = GameContext::new(&s);
        gta(&mut ctx);
        // Greedy invariant: no served worker could strictly improve by
        // swapping to a strategy that is still available now (their pick was
        // the global max at selection time, and later picks only shrink the
        // available set... but *released* masks never occur in GTA, so the
        // current availability is a subset of availability at pick time).
        for local in 0..ctx.n_workers() {
            let current = ctx.payoff(local);
            for (_, payoff) in ctx.available_strategies(local) {
                assert!(
                    payoff <= current + 1e-9,
                    "worker {local} could improve from {current} to {payoff}"
                );
            }
        }
    }

    #[test]
    fn gta_is_deterministic() {
        let inst = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 12,
                n_tasks: 100,
                n_delivery_points: 18,
                extent: 2.5,
                ..SynConfig::bench_scale()
            },
            5,
        );
        let s = space(&inst, 3);
        let run = || {
            let mut ctx = GameContext::new(&s);
            gta(&mut ctx);
            ctx.to_assignment()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn workers_without_strategies_stay_null() {
        // Tasks expire immediately: nobody can serve anything.
        let inst = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 4,
                n_tasks: 30,
                n_delivery_points: 10,
                expiry: 0.001,
                extent: 5.0,
                ..SynConfig::bench_scale()
            },
            7,
        );
        let s = space(&inst, 3);
        let mut ctx = GameContext::new(&s);
        gta(&mut ctx);
        assert_eq!(ctx.to_assignment().assigned_workers(), 0);
    }
}

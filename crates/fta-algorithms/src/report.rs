//! Human-readable rendering of a [`SolveOutcome`].
//!
//! [`SolveReport`] replaces the hand-rolled stats `writeln!` chains that
//! used to live in the CLI: every consumer (the `fta solve` command, the
//! bench binaries, tests) renders the same lines from the same place, so
//! the format only has to be kept parseable once.
//!
//! The line formats are load-bearing: the CLI's engine-equivalence test
//! splits the generation line on `" sets from "` and `", dp "` to compare
//! engine-independent work counters, so those separators must not change.

use crate::solver::SolveOutcome;
use std::fmt;

/// Pretty-printer over a [`SolveOutcome`].
///
/// Construct with [`SolveReport::new`], optionally attach a header label
/// and the VDPS engine name, then `Display` it:
///
/// ```
/// use fta_algorithms::{solve, Algorithm, SolveConfig, SolveReport};
/// use fta_data::{generate_syn, SynConfig};
///
/// let inst = generate_syn(&SynConfig::bench_scale(), 7);
/// let outcome = solve(&inst, &SolveConfig::new(Algorithm::Gta));
/// let text = SolveReport::new(&outcome)
///     .label("GTA on syn")
///     .engine("flat")
///     .to_string();
/// assert!(text.contains("vdps generation (flat engine):"));
/// ```
#[derive(Debug, Clone)]
pub struct SolveReport<'a> {
    outcome: &'a SolveOutcome,
    label: Option<&'a str>,
    engine: Option<&'a str>,
    br_engine: Option<(&'a str, bool)>,
}

impl<'a> SolveReport<'a> {
    /// Wraps an outcome for rendering.
    #[must_use]
    pub fn new(outcome: &'a SolveOutcome) -> Self {
        Self {
            outcome,
            label: None,
            engine: None,
            br_engine: None,
        }
    }

    /// Adds a header line (`"<label> (<vdps> VDPS + <assign> assignment):"`).
    #[must_use]
    pub fn label(mut self, label: &'a str) -> Self {
        self.label = Some(label);
        self
    }

    /// Names the VDPS generator engine in the generation line.
    #[must_use]
    pub fn engine(mut self, engine: &'a str) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Names the best-response engine and whether the configured IAU
    /// weights make the monotone fast path sound ([`crate::fastpath_sound`]).
    /// Rendered on the best-response work line, so baselines that never
    /// enter an equilibrium loop stay silent.
    #[must_use]
    pub fn br_engine(mut self, engine: &'a str, fastpath_eligible: bool) -> Self {
        self.br_engine = Some((engine, fastpath_eligible));
        self
    }
}

const fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

impl fmt::Display for SolveReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.outcome;
        if let Some(label) = self.label {
            writeln!(
                f,
                "{label} ({:.1?} VDPS + {:.1?} assignment):",
                o.vdps_time, o.assign_time
            )?;
        }
        if o.gen_stats.vdps_count > 0 {
            let g = &o.gen_stats;
            match self.engine {
                Some(engine) => write!(f, "vdps generation ({engine} engine): ")?,
                None => write!(f, "vdps generation: ")?,
            }
            writeln!(
                f,
                "{} sets from {} states, {} extensions ({} distance-pruned, {} deadline-pruned), dp {:.1} ms + routes {:.1} ms (merge {:.1} ms), {} chunks, {} steals, {} merge collisions",
                g.vdps_count,
                g.states,
                g.extensions_tried,
                g.pruned_by_distance,
                g.pruned_by_deadline,
                ms(g.dp_nanos),
                ms(g.route_nanos),
                ms(g.merge_nanos),
                g.chunks,
                g.steals,
                g.merge_collisions,
            )?;
        }
        if !o.br_stats.is_empty() {
            let s = &o.br_stats;
            if let Some((engine, eligible)) = self.br_engine {
                writeln!(
                    f,
                    "best-response engine: {engine} (fast path {})",
                    if eligible {
                        "eligible"
                    } else {
                        "ineligible: exhaustive fallback"
                    },
                )?;
            }
            writeln!(
                f,
                "best-response work: {} rounds, {} candidate evals, {} switches ({} to null), {} evaluator builds, {} incremental updates, {} slots scanned, {} early exits, {} index updates, {} fast-path rounds",
                s.rounds,
                s.candidate_evaluations,
                s.switches,
                s.null_adoptions,
                s.evaluator_builds,
                s.evaluator_updates,
                s.candidates_scanned,
                s.early_exits,
                s.index_updates,
                s.fastpath_rounds,
            )?;
        }
        if let Some(last) = o.trace.last() {
            writeln!(
                f,
                "convergence: {} recorded rounds, converged={}, final P_dif {:.4}, final avg payoff {:.4}",
                o.trace.len(),
                o.trace.converged,
                last.payoff_difference,
                last.average_payoff,
            )?;
        }
        if !o.degradation.is_empty() {
            writeln!(
                f,
                "degradation: {} events over {} centers — {}",
                o.degradation.events.len(),
                o.degradation.degraded_centers().len(),
                o.degradation,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, Algorithm, SolveConfig};
    use crate::FgtConfig;
    use fta_data::{generate_syn, SynConfig};

    fn outcome(algorithm: Algorithm) -> SolveOutcome {
        let inst = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 8,
                n_tasks: 80,
                n_delivery_points: 14,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            9,
        );
        solve(&inst, &SolveConfig::new(algorithm))
    }

    #[test]
    fn renders_generation_and_label() {
        let o = outcome(Algorithm::Gta);
        let text = SolveReport::new(&o).label("GTA on test").to_string();
        assert!(text.starts_with("GTA on test ("));
        assert!(text.contains("vdps generation: "));
        assert!(text.contains(" sets from "));
        assert!(text.contains(", dp "));
        // Baselines have no best-response loop and no trace.
        assert!(!text.contains("best-response work:"));
        assert!(!text.contains("convergence:"));
    }

    #[test]
    fn engine_name_is_optional_but_formatted_when_present() {
        let o = outcome(Algorithm::Gta);
        let text = SolveReport::new(&o).engine("flat").to_string();
        assert!(text.contains("vdps generation (flat engine):"));
        assert!(!text.contains("assignment):"), "no label line expected");
    }

    #[test]
    fn game_algorithms_report_br_work_and_convergence() {
        let o = outcome(Algorithm::Fgt(FgtConfig::default()));
        let text = SolveReport::new(&o).to_string();
        assert!(text.contains("best-response work:"));
        assert!(text.contains("evaluator builds"));
        assert!(text.contains("slots scanned"));
        assert!(text.contains("fast-path rounds"));
        assert!(text.contains("convergence:"));
        assert!(text.contains("converged=true"));
        // Engine echo is opt-in.
        assert!(!text.contains("best-response engine:"));
    }

    #[test]
    fn br_engine_echo_reports_name_and_eligibility() {
        let o = outcome(Algorithm::Fgt(FgtConfig::default()));
        let text = SolveReport::new(&o).br_engine("fastpath", true).to_string();
        assert!(text.contains("best-response engine: fastpath (fast path eligible)"));
        let text = SolveReport::new(&o)
            .br_engine("exhaustive", false)
            .to_string();
        assert!(text.contains(
            "best-response engine: exhaustive (fast path ineligible: exhaustive fallback)"
        ));
        // Baselines stay silent even with an engine attached.
        let o = outcome(Algorithm::Gta);
        let text = SolveReport::new(&o).br_engine("fastpath", true).to_string();
        assert!(!text.contains("best-response engine:"));
    }
}

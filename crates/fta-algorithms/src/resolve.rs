//! Incremental round-over-round solving: [`Solver`] keeps per-center
//! caches between rounds and spends work only where the instance changed.
//!
//! A round loop (the sim engine, a dispatcher) calls [`Solver::solve`]
//! once and then [`Solver::resolve`] every subsequent round, handing it a
//! [`ChurnSet`] whose `worker_keys` identify physical workers across the
//! dense renumbering each snapshot performs. Per center, `resolve`
//! descends a three-step ladder:
//!
//! 1. **clean** — every input the solve depends on (delivery points,
//!    aggregates, workers, geometry, configuration) is bitwise identical
//!    to the cache: the cached outcome is returned as-is, no work at all;
//! 2. **warm** — the VDPS pool is delta-updated
//!    ([`fta_vdps::delta_update`]) instead of regenerated, the cached
//!    equilibrium profile is remapped onto the new pool (old strategy
//!    masks → delivery-point ids → new masks → new pool indices), and the
//!    game restarts *from that profile* with a single best-response run —
//!    only workers the churn actually disturbed re-deliberate;
//! 3. **cold** — anything the delta updater cannot express (ε change,
//!    relocated center, truncated cache, or a panic in the warm path)
//!    falls back to the ordinary full per-center solve.
//!
//! Caching is only attempted under an unlimited budget and without fault
//! injection: a degraded or quarantined center must be re-solved cold
//! anyway, and budget tokens are wall-clock-dependent, which would poison
//! the bitwise clean check. In those configurations every call simply
//! performs a full solve.
//!
//! The merged [`SolveOutcome`] is assembled by the same code path as
//! [`crate::solver::solve`], so reports, traces, and telemetry look the
//! same to callers either way.

use crate::context::GameContext;
use crate::degrade::{DegradationReport, LadderRung};
use crate::fgt::fgt_warm_bounded;
use crate::gta::gta;
use crate::iegt::iegt_warm_bounded;
use crate::mpta::mpta;
use crate::pfgt::pfgt_warm_bounded;
use crate::random::random_assignment;
use crate::solver::{
    merge_outcomes, solve_center, Algorithm, CenterCapture, CenterOutcome, SolveConfig,
    SolveOutcome,
};
use crate::trace::ConvergenceTrace;
use crate::warm::WarmStart;
use fta_core::instance::{CenterView, DpAggregate};
use fta_core::{CancelToken, CenterId, ChurnSet, DeliveryPointId, Instance};
use fta_vdps::{
    delta_update_with_provenance, GenControl, PoolCache, SlotCache, StrategySpace, VdpsConfig,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// How the last [`Solver::resolve`] call distributed its centers across
/// the clean / warm / cold ladder, plus the warm-start replay tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Centers returned straight from the cache (bitwise-identical input).
    pub centers_clean: usize,
    /// Centers solved via delta update + equilibrium warm start.
    pub centers_warm: usize,
    /// Centers solved cold (no cache, delta fallback, or panic).
    pub centers_cold: usize,
    /// Cached strategies adopted across all warm centers.
    pub warm_adopted: usize,
    /// Cached strategies rejected (vanished or conflicting) across all
    /// warm centers.
    pub warm_rejected: usize,
}

/// Serializable seed of a primed [`Solver`] cache: for every captured
/// center, the equilibrium each worker settled on, expressed as
/// delivery-point strategy *masks* (stable across the dense pool-index
/// renumbering a regeneration performs).
///
/// Together with the solved [`Instance`] and the round's stable worker
/// keys, this is everything [`Solver::rehydrate`] needs to rebuild the
/// cache bit-for-bit: pools are regenerated (delta-updated pools are
/// proptest-pinned bitwise-identical to regeneration), while the
/// equilibria are *installed* rather than re-derived — iterative games
/// reach different equilibria from a cold multi-restart than from a warm
/// start, so re-solving would not reproduce the cached profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSeed {
    /// One entry per captured center.
    pub centers: Vec<CenterSeed>,
}

/// One captured center's equilibrium profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CenterSeed {
    /// Dense center index.
    pub center: u32,
    /// Per local worker (in `CenterView::workers` order): the selected
    /// strategy's delivery-point mask, or `None` for the null strategy.
    pub selections: Vec<Option<u128>>,
}

/// Everything remembered about one fully solved center between rounds.
#[derive(Clone)]
struct CenterCache {
    center: CenterId,
    capture: CenterCapture,
    /// Stable key per local worker (parallel to `capture.workers`).
    worker_keys: Vec<u64>,
    /// Bitwise worker identity: `(x bits, y bits, max_dp)` per local
    /// worker. Catches relocated or re-capacitated workers that keep
    /// their key.
    worker_bits: Vec<(u64, u64, u64)>,
    outcome: CenterOutcome,
}

impl CenterCache {
    fn build(
        instance: &Instance,
        keys: &[u64],
        capture: CenterCapture,
        outcome: CenterOutcome,
    ) -> Self {
        let worker_keys = capture.workers.iter().map(|&w| keys[w.index()]).collect();
        let worker_bits = capture
            .workers
            .iter()
            .map(|&w| {
                let worker = &instance.workers[w.index()];
                (
                    worker.location.x.to_bits(),
                    worker.location.y.to_bits(),
                    worker.max_dp as u64,
                )
            })
            .collect();
        Self {
            center: outcome.center,
            capture,
            worker_keys,
            worker_bits,
            outcome,
        }
    }
}

/// A stateful solver that caches per-center pools and equilibrium
/// profiles between rounds. See the [module docs](self). Cloning
/// snapshots the cache (cheap: cached routes are shared `Arc`s), so a
/// caller can branch "what-if" rounds off one primed state.
#[derive(Clone)]
pub struct Solver {
    config: SolveConfig,
    centers: Vec<CenterCache>,
    last: ResolveStats,
}

impl Solver {
    /// A solver with no cache yet; the first call (either [`Self::solve`]
    /// or [`Self::resolve`]) primes it.
    #[must_use]
    pub fn new(config: SolveConfig) -> Self {
        Self {
            config,
            centers: Vec::new(),
            last: ResolveStats::default(),
        }
    }

    /// The configuration every round is solved under.
    #[must_use]
    pub fn config(&self) -> &SolveConfig {
        &self.config
    }

    /// Whether at least one center currently has a cache entry.
    #[must_use]
    pub fn is_primed(&self) -> bool {
        !self.centers.is_empty()
    }

    /// The clean/warm/cold distribution of the most recent call.
    #[must_use]
    pub fn last_stats(&self) -> ResolveStats {
        self.last
    }

    /// Drops every cached center, forcing the next call to solve cold.
    pub fn invalidate(&mut self) {
        self.centers.clear();
    }

    /// Full cold solve with workers keyed by their own indices. Equivalent
    /// to [`crate::solver::solve`] (sequential) plus cache capture.
    pub fn solve(&mut self, instance: &Instance) -> SolveOutcome {
        let keys: Vec<u64> = (0..instance.workers.len() as u64).collect();
        self.solve_keyed(instance, &keys)
    }

    /// Full cold solve with caller-provided stable worker keys (parallel
    /// to `instance.workers`). The cache is captured under these keys, so
    /// a later [`Self::resolve`] can match workers across renumbering.
    pub fn solve_keyed(&mut self, instance: &Instance, keys: &[u64]) -> SolveOutcome {
        let _span = fta_obs::span("solver.solve");
        let token = if self.config.budget.is_unlimited() {
            None
        } else {
            Some(self.config.budget.token())
        };
        let cancel = token.as_ref();
        let views = instance.center_views();
        let aggregates = instance.dp_aggregates();
        let capture_ok = keys.len() == instance.workers.len()
            && self.config.budget.is_unlimited()
            && self.config.inject_panic.is_none();
        let mut outcomes = Vec::with_capacity(views.len());
        let mut caches = Vec::new();
        for view in views {
            let (outcome, capture) = solve_center(
                instance,
                &aggregates,
                view,
                &self.config,
                None,
                cancel,
                capture_ok,
            );
            if let Some(capture) = capture {
                caches.push(CenterCache::build(instance, keys, capture, outcome.clone()));
            }
            outcomes.push(outcome);
        }
        self.centers = caches;
        self.last = ResolveStats {
            centers_cold: outcomes.len(),
            ..ResolveStats::default()
        };
        let budget_cancelled = cancel.is_some_and(CancelToken::is_cancelled);
        merge_outcomes(outcomes, budget_cancelled)
    }

    /// Exports the cached equilibria as a serializable [`CacheSeed`], or
    /// `None` when the cache is unprimed. The durability layer journals
    /// this next to the solved instance and worker keys so a recovered
    /// process keeps its warm-path speedup.
    #[must_use]
    pub fn cache_seed(&self) -> Option<CacheSeed> {
        if self.centers.is_empty() {
            return None;
        }
        Some(CacheSeed {
            centers: self
                .centers
                .iter()
                .map(|c| CenterSeed {
                    center: c.center.index() as u32,
                    selections: c.capture.selections.clone(),
                })
                .collect(),
        })
    }

    /// Rebuilds the per-center caches from a journaled round: `instance`
    /// is the instance that round solved, `keys` its stable worker keys,
    /// and `seed` the equilibria it captured. Pools are regenerated via
    /// the same budgeted build as a cold solve (bit-identical to the
    /// delta-updated pools the live solver cached) and the seeded
    /// equilibria are installed on top, so the next `resolve` sees
    /// exactly the cache an uninterrupted process would hold.
    ///
    /// Returns `false` — leaving the solver unprimed, which is always
    /// safe (the next round merely solves cold) — when the seed does not
    /// fit the instance, or when this configuration would never have
    /// cached in the first place (bounded budget or panic injection).
    pub fn rehydrate(&mut self, instance: &Instance, keys: &[u64], seed: &CacheSeed) -> bool {
        self.centers.clear();
        if keys.len() != instance.workers.len()
            || !self.config.budget.is_unlimited()
            || self.config.inject_panic.is_some()
        {
            return false;
        }
        let aggregates = instance.dp_aggregates();
        let by_center: HashMap<u32, &CenterSeed> =
            seed.centers.iter().map(|c| (c.center, c)).collect();
        let mut caches = Vec::with_capacity(seed.centers.len());
        for view in instance.center_views() {
            let Some(center_seed) = by_center.get(&(view.center.index() as u32)) else {
                continue;
            };
            let vdps_cfg = clamped_cfg(instance, &view, &self.config);
            let control = GenControl {
                token: None,
                max_states: self.config.budget.max_states,
            };
            let center = view.center;
            let space = StrategySpace::build_budgeted(
                instance,
                &aggregates,
                view,
                &vdps_cfg,
                None,
                control,
            );
            if space.gen_stats.truncations > 0 {
                // A truncated pool is never captured live; a seed claiming
                // one means instance and seed do not belong together.
                self.centers.clear();
                return false;
            }
            if center_seed.selections.len() != space.view.workers.len() {
                self.centers.clear();
                return false;
            }
            let idx_of_mask: HashMap<u128, u32> = space
                .pool
                .iter()
                .enumerate()
                .map(|(i, v)| (v.mask, i as u32))
                .collect();
            let mut ctx = GameContext::new(&space);
            for (local, sel) in center_seed.selections.iter().enumerate() {
                if let Some(mask) = sel {
                    let Some(&idx) = idx_of_mask.get(mask) else {
                        self.centers.clear();
                        return false;
                    };
                    ctx.set_strategy(local, Some(idx));
                }
            }
            let capture = CenterCapture {
                pool_cache: PoolCache::capture(
                    instance,
                    &aggregates,
                    &space.view,
                    &vdps_cfg,
                    &space.pool,
                    &space.gen_stats,
                ),
                slots: SlotCache::capture(&space),
                selections: center_seed.selections.clone(),
                workers: space.view.workers.clone(),
            };
            let outcome = CenterOutcome {
                center,
                assignment: ctx.to_assignment(),
                vdps_time: Duration::ZERO,
                assign_time: Duration::ZERO,
                gen_stats: space.gen_stats,
                trace: ConvergenceTrace::default(),
                report: DegradationReport::default(),
                rung: LadderRung::Full,
            };
            caches.push(CenterCache::build(instance, keys, capture, outcome));
        }
        self.centers = caches;
        fta_obs::counter("resolve.rehydrated_centers", self.centers.len() as u64);
        self.is_primed()
    }

    /// Incremental re-solve of `instance` given what changed since the
    /// cached round. Centers whose inputs are bitwise unchanged return
    /// their cached outcome; churned centers delta-update their pool and
    /// warm-start from the cached equilibrium; everything else (including
    /// an unprimed cache) solves cold. The result is always a complete,
    /// valid solve of `instance` — the cache only changes how much work
    /// that takes.
    pub fn resolve(&mut self, instance: &Instance, churn: &ChurnSet) -> SolveOutcome {
        let keys_ok = churn.worker_keys.len() == instance.workers.len();
        if self.centers.is_empty()
            || !keys_ok
            || !self.config.budget.is_unlimited()
            || self.config.inject_panic.is_some()
        {
            let identity: Vec<u64>;
            let keys: &[u64] = if keys_ok {
                &churn.worker_keys
            } else {
                identity = (0..instance.workers.len() as u64).collect();
                &identity
            };
            return self.solve_keyed(instance, keys);
        }
        let _span = fta_obs::span("solver.resolve");
        let keys = &churn.worker_keys;
        let views = instance.center_views();
        let aggregates = instance.dp_aggregates();
        let mut prev: HashMap<CenterId, CenterCache> = std::mem::take(&mut self.centers)
            .into_iter()
            .map(|c| (c.center, c))
            .collect();
        let mut stats = ResolveStats::default();
        let mut outcomes = Vec::with_capacity(views.len());
        let mut caches = Vec::with_capacity(views.len());
        let mut paths = Vec::with_capacity(views.len());
        for view in views {
            let cached = prev.remove(&view.center);
            let (outcome, cache, path) = resolve_center(
                instance,
                &aggregates,
                view,
                keys,
                cached,
                &self.config,
                &mut stats,
            );
            if let Some(c) = cache {
                caches.push(c);
            }
            outcomes.push(outcome);
            paths.push(path);
        }
        self.centers = caches;
        self.last = stats;
        if fta_obs::enabled() {
            fta_obs::counter("solve.centers_clean", stats.centers_clean as u64);
            fta_obs::counter("solve.centers_warm", stats.centers_warm as u64);
            fta_obs::counter("solve.centers_cold", stats.centers_cold as u64);
            fta_obs::counter("br.warm_adopted", stats.warm_adopted as u64);
            fta_obs::counter("br.warm_rejected", stats.warm_rejected as u64);
        }
        let mut merged = merge_outcomes(outcomes, false);
        for (summary, path) in merged.centers.iter_mut().zip(paths) {
            summary.resolve_path = path;
        }
        merged
    }

    /// Shard-scoped [`Solver::resolve`]: incrementally re-solves only the
    /// given `views` (one shard's centers), replacing the cache with this
    /// round's captures for exactly those centers. The caller (the
    /// sharded solver in [`crate::shard`]) guarantees this solver only
    /// ever sees the same shard's views, an unlimited budget, no panic
    /// injection, and `keys` parallel to `instance.workers` — the
    /// preconditions under which [`Solver::resolve`] takes its
    /// incremental path. Per-center semantics (clean short-circuit, warm
    /// delta-update, cold fallback) are byte-for-byte those of
    /// [`Solver::resolve`]; the clean/warm/cold telemetry counters fire
    /// here, once per shard. Returns per-view outcomes and resolve
    /// paths in the order given, leaving merging to the caller.
    pub(crate) fn resolve_views(
        &mut self,
        instance: &Instance,
        keys: &[u64],
        views: Vec<CenterView>,
        aggregates: &[DpAggregate],
    ) -> (Vec<CenterOutcome>, Vec<&'static str>) {
        debug_assert!(self.config.budget.is_unlimited() && self.config.inject_panic.is_none());
        let mut prev: HashMap<CenterId, CenterCache> = std::mem::take(&mut self.centers)
            .into_iter()
            .map(|c| (c.center, c))
            .collect();
        let mut stats = ResolveStats::default();
        let mut outcomes = Vec::with_capacity(views.len());
        let mut caches = Vec::with_capacity(views.len());
        let mut paths = Vec::with_capacity(views.len());
        for view in views {
            let cached = prev.remove(&view.center);
            let (outcome, cache, path) = resolve_center(
                instance,
                aggregates,
                view,
                keys,
                cached,
                &self.config,
                &mut stats,
            );
            if let Some(c) = cache {
                caches.push(c);
            }
            outcomes.push(outcome);
            paths.push(path);
        }
        self.centers = caches;
        self.last = stats;
        if fta_obs::enabled() {
            fta_obs::counter("solve.centers_clean", stats.centers_clean as u64);
            fta_obs::counter("solve.centers_warm", stats.centers_warm as u64);
            fta_obs::counter("solve.centers_cold", stats.centers_cold as u64);
            fta_obs::counter("br.warm_adopted", stats.warm_adopted as u64);
            fta_obs::counter("br.warm_rejected", stats.warm_rejected as u64);
        }
        (outcomes, paths)
    }
}

/// The per-center VDPS config the solver actually generates under: the
/// configured length cap clamped to the center's largest worker `maxDP`
/// (mirrors the cold path in `solver::solve_center_attempt`).
fn clamped_cfg(instance: &Instance, view: &CenterView, config: &SolveConfig) -> VdpsConfig {
    let center_max_dp = view
        .workers
        .iter()
        .map(|&w| instance.workers[w.index()].max_dp)
        .max()
        .unwrap_or(0);
    VdpsConfig {
        max_len: config.vdps.max_len.min(center_max_dp),
        ..config.vdps
    }
}

/// Whether every input the cached solve depended on is bitwise unchanged,
/// so the cached outcome IS the outcome of solving `view` again.
fn center_is_clean(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: &CenterView,
    keys: &[u64],
    cache: &CenterCache,
    vdps_cfg: &VdpsConfig,
) -> bool {
    let pc = &cache.capture.pool_cache;
    if cache.outcome.rung != LadderRung::Full || pc.truncated {
        return false;
    }
    if view.dps != pc.dp_ids {
        return false;
    }
    let aggs_equal = view.dps.iter().zip(&pc.aggregates).all(|(dp, old)| {
        let a = &aggregates[dp.index()];
        a.task_count == old.task_count
            && a.total_reward.to_bits() == old.total_reward.to_bits()
            && a.earliest_expiry.to_bits() == old.earliest_expiry.to_bits()
    });
    if !aggs_equal {
        return false;
    }
    if view.workers.len() != cache.worker_bits.len() {
        return false;
    }
    let workers_equal = view.workers.iter().enumerate().all(|(local, &w)| {
        let worker = &instance.workers[w.index()];
        keys[w.index()] == cache.worker_keys[local]
            && worker.location.x.to_bits() == cache.worker_bits[local].0
            && worker.location.y.to_bits() == cache.worker_bits[local].1
            && worker.max_dp as u64 == cache.worker_bits[local].2
    });
    if !workers_equal {
        return false;
    }
    if vdps_cfg.max_len != pc.max_len
        || vdps_cfg.epsilon.map(f64::to_bits) != pc.epsilon.map(f64::to_bits)
    {
        return false;
    }
    let dc = instance.centers[view.center.index()].location;
    (dc.x.to_bits(), dc.y.to_bits()) == pc.center_bits && instance.speed.to_bits() == pc.speed_bits
}

/// One center of [`Solver::resolve`]: clean short-circuit, then the warm
/// path (panic-isolated), then the cold fallback. The third element is
/// the resolve path taken (`"clean"` / `"warm"` / `"cold"`) for ledger
/// attribution.
fn resolve_center(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: CenterView,
    keys: &[u64],
    cached: Option<CenterCache>,
    config: &SolveConfig,
    stats: &mut ResolveStats,
) -> (CenterOutcome, Option<CenterCache>, &'static str) {
    if let Some(cache) = cached {
        let vdps_cfg = clamped_cfg(instance, &view, config);
        if center_is_clean(instance, aggregates, &view, keys, &cache, &vdps_cfg) {
            stats.centers_clean += 1;
            let mut outcome = cache.outcome.clone();
            // The cached result is returned verbatim, but no time was
            // spent this round.
            outcome.vdps_time = Duration::ZERO;
            outcome.assign_time = Duration::ZERO;
            return (outcome, Some(cache), "clean");
        }
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            warm_center(
                instance,
                aggregates,
                view.clone(),
                keys,
                &cache,
                config,
                &vdps_cfg,
            )
        }));
        match attempt {
            Ok(Some((outcome, warm, new_cache))) => {
                stats.centers_warm += 1;
                stats.warm_adopted += warm.adopted;
                stats.warm_rejected += warm.rejected;
                return (outcome, Some(new_cache), "warm");
            }
            Ok(None) => {}
            Err(_) => {
                fta_obs::counter("resolve.panic_fallback", 1);
            }
        }
    }
    stats.centers_cold += 1;
    let (outcome, capture) = solve_center(instance, aggregates, view, config, None, None, true);
    let cache = capture.map(|cap| CenterCache::build(instance, keys, cap, outcome.clone()));
    (outcome, cache, "cold")
}

/// Remaps the cached equilibrium onto the freshly built space: each
/// worker's old strategy mask is translated bit by bit through the old
/// delivery-point ids into the new bit order, then looked up in the new
/// pool (masks are unique per pool). Workers without a cached strategy,
/// workers new to the center, and strategies touching a vanished
/// delivery point map to `None`.
fn remap_profile(cache: &CenterCache, keys: &[u64], space: &StrategySpace) -> Vec<Option<u32>> {
    let old_by_key: HashMap<u64, u128> = cache
        .worker_keys
        .iter()
        .zip(&cache.capture.selections)
        .filter_map(|(&k, sel)| sel.map(|mask| (k, mask)))
        .collect();
    let new_bit: HashMap<DeliveryPointId, u32> = space
        .view
        .dps
        .iter()
        .enumerate()
        .map(|(i, &dp)| (dp, i as u32))
        .collect();
    let idx_of_mask: HashMap<u128, u32> = space
        .pool
        .iter()
        .enumerate()
        .map(|(i, v)| (v.mask, i as u32))
        .collect();
    let old_dp_ids = &cache.capture.pool_cache.dp_ids;
    let mut profile = Vec::with_capacity(space.view.workers.len());
    'workers: for &w in &space.view.workers {
        let Some(&old_mask) = old_by_key.get(&keys[w.index()]) else {
            profile.push(None);
            continue;
        };
        let mut new_mask: u128 = 0;
        let mut m = old_mask;
        while m != 0 {
            let bit = m.trailing_zeros() as usize;
            m &= m - 1;
            match new_bit.get(&old_dp_ids[bit]) {
                Some(&b) => new_mask |= 1u128 << b,
                None => {
                    profile.push(None);
                    continue 'workers;
                }
            }
        }
        profile.push(idx_of_mask.get(&new_mask).copied());
    }
    profile
}

/// The warm path for one center: delta-update the pool, rebuild the
/// strategy space around it, replay the remapped equilibrium, and run a
/// single warm best-response pass. Returns `None` when the delta updater
/// declines (unsupported transition), sending the center cold.
fn warm_center(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: CenterView,
    keys: &[u64],
    cache: &CenterCache,
    config: &SolveConfig,
    vdps_cfg: &VdpsConfig,
) -> Option<(CenterOutcome, WarmStart, CenterCache)> {
    let center = view.center;
    let center_u32 = center.index() as u32;
    let _span = fta_obs::span_center("solver.center_warm", center_u32);
    let t0 = Instant::now();
    let (pool, provenance, dstats) = delta_update_with_provenance(
        instance,
        aggregates,
        &view,
        vdps_cfg,
        &cache.capture.pool_cache,
    )?;
    let gen_stats = dstats.as_gen_stats(pool.len());
    // The per-worker slot cache is reusable only when the worker side is
    // bitwise-stable: same workers in the same local order with unchanged
    // location and `maxDP` (travel times to the center are then equal bit
    // for bit, since a successful delta guarantees the center and speed
    // are unchanged). Otherwise validate the pool from scratch.
    let workers_stable = view.workers.len() == cache.worker_keys.len()
        && cache.capture.slots.n_workers() == cache.worker_keys.len()
        && view.workers.iter().enumerate().all(|(local, &w)| {
            let worker = &instance.workers[w.index()];
            keys[w.index()] == cache.worker_keys[local]
                && (
                    worker.location.x.to_bits(),
                    worker.location.y.to_bits(),
                    worker.max_dp as u64,
                ) == cache.worker_bits[local]
        });
    let space = if workers_stable {
        StrategySpace::from_pool_delta(
            instance,
            view,
            pool,
            &provenance,
            &cache.capture.slots,
            gen_stats,
        )
    } else {
        StrategySpace::from_pool_in(instance, view, pool, gen_stats, None)
    };
    let vdps_time = t0.elapsed();

    let profile = remap_profile(cache, keys, &space);
    let algorithm = config.algorithm.salted(u64::from(center.0));
    let t1 = Instant::now();
    let assign_span = fta_obs::span_center("solver.assign", center_u32);
    let mut ctx = GameContext::new(&space);
    let (trace, warm) = match algorithm {
        Algorithm::Fgt(cfg) => fgt_warm_bounded(&mut ctx, &cfg, &profile, None),
        Algorithm::Pfgt(cfg) => pfgt_warm_bounded(&mut ctx, &cfg, &profile, None),
        Algorithm::Iegt(cfg) => iegt_warm_bounded(&mut ctx, &cfg, &profile, None),
        Algorithm::Gta => {
            gta(&mut ctx);
            (ConvergenceTrace::default(), WarmStart::default())
        }
        Algorithm::Mpta(cfg) => {
            mpta(&mut ctx, &cfg);
            (ConvergenceTrace::default(), WarmStart::default())
        }
        Algorithm::Random { seed } => {
            random_assignment(&mut ctx, seed);
            (ConvergenceTrace::default(), WarmStart::default())
        }
    };
    drop(assign_span);
    let assign_time = t1.elapsed();

    if fta_obs::enabled() {
        let algo_name = algorithm.name();
        for r in &trace.rounds {
            fta_obs::round_event(
                algo_name,
                center_u32,
                r.round.min(u32::MAX as usize) as u32,
                r.moves as u64,
                r.payoff_difference,
                r.average_payoff,
                r.potential,
            );
        }
    }

    let selections: Vec<Option<u128>> = (0..ctx.n_workers())
        .map(|l| ctx.selection(l).map(|i| space.pool[i as usize].mask))
        .collect();
    let capture = CenterCapture {
        pool_cache: PoolCache::capture(
            instance,
            aggregates,
            &space.view,
            vdps_cfg,
            &space.pool,
            &space.gen_stats,
        ),
        slots: SlotCache::capture(&space),
        selections,
        workers: space.view.workers.clone(),
    };
    let outcome = CenterOutcome {
        center,
        assignment: ctx.to_assignment(),
        vdps_time,
        assign_time,
        gen_stats: space.gen_stats,
        trace,
        report: DegradationReport::default(),
        rung: LadderRung::Full,
    };
    let new_cache = CenterCache::build(instance, keys, capture, outcome.clone());
    Some((outcome, warm, new_cache))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgt::FgtConfig;
    use fta_data::{generate_syn, SynConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 3,
                n_workers: 24,
                n_tasks: 300,
                n_delivery_points: 45,
                extent: 3.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn identity_churn(instance: &Instance) -> ChurnSet {
        ChurnSet::empty(instance.workers.len())
    }

    #[test]
    fn zero_churn_resolve_is_all_clean_and_bit_identical() {
        for algorithm in [
            Algorithm::Gta,
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Random { seed: 5 },
        ] {
            let inst = instance(1);
            let mut solver = Solver::new(SolveConfig::new(algorithm));
            let first = solver.solve(&inst);
            assert!(solver.is_primed());
            let second = solver.resolve(&inst, &identity_churn(&inst));
            let stats = solver.last_stats();
            assert_eq!(
                stats.centers_clean,
                inst.centers.len(),
                "{}: not all centers clean",
                algorithm.name()
            );
            assert_eq!(stats.centers_warm, 0);
            assert_eq!(stats.centers_cold, 0);
            assert_eq!(first.assignment, second.assignment);
        }
    }

    #[test]
    fn unprimed_resolve_solves_cold_and_primes() {
        let inst = instance(2);
        let mut solver = Solver::new(SolveConfig::new(Algorithm::Gta));
        assert!(!solver.is_primed());
        let out = solver.resolve(&inst, &identity_churn(&inst));
        assert!(out.assignment.validate(&inst).is_ok());
        assert!(solver.is_primed());
        assert_eq!(solver.last_stats().centers_cold, inst.centers.len());
    }

    #[test]
    fn task_churn_takes_the_warm_path_and_matches_cold_for_gta() {
        // GTA is deterministic given the pool, and the delta-updated pool
        // is bit-identical to regeneration, so warm GTA must equal a cold
        // solve of the churned instance exactly.
        let inst = instance(3);
        let mut solver = Solver::new(SolveConfig::new(Algorithm::Gta));
        solver.solve(&inst);

        let mut churned = inst.clone();
        let n = churned.tasks.len();
        churned.tasks.truncate(n - n / 10); // drop the last 10% of tasks
        let warm = solver.resolve(&churned, &identity_churn(&churned));
        let stats = solver.last_stats();
        assert!(
            stats.centers_warm > 0,
            "no center took the warm path: {stats:?}"
        );
        assert_eq!(stats.centers_cold, 0, "unexpected cold centers: {stats:?}");

        let cold = crate::solver::solve(&churned, &SolveConfig::new(Algorithm::Gta));
        assert_eq!(warm.assignment, cold.assignment);
        assert!(warm.assignment.validate(&churned).is_ok());
    }

    #[test]
    fn fgt_warm_resolve_is_valid_and_mostly_adopts() {
        let inst = instance(4);
        let mut solver = Solver::new(SolveConfig::new(Algorithm::Fgt(FgtConfig::default())));
        solver.solve(&inst);

        let mut churned = inst.clone();
        let n = churned.tasks.len();
        churned.tasks.truncate(n - n / 20); // ~5% churn
        let warm = solver.resolve(&churned, &identity_churn(&churned));
        let stats = solver.last_stats();
        assert!(stats.centers_warm > 0, "no warm centers: {stats:?}");
        assert!(
            stats.warm_adopted >= stats.warm_rejected,
            "warm start rejected more than it adopted: {stats:?}"
        );
        assert!(warm.assignment.validate(&churned).is_ok());
        assert!(warm.trace.converged, "warm FGT did not converge");
    }

    #[test]
    fn resolve_repeats_stay_consistent_across_rounds() {
        // Three rounds of shrinking task sets: every round must produce a
        // valid assignment and keep the cache primed.
        let inst = instance(5);
        let mut solver = Solver::new(SolveConfig::new(Algorithm::Fgt(FgtConfig::default())));
        solver.solve(&inst);
        let mut current = inst;
        for round in 0..3 {
            let n = current.tasks.len();
            current.tasks.truncate(n - n / 15);
            let out = solver.resolve(&current, &identity_churn(&current));
            assert!(
                out.assignment.validate(&current).is_ok(),
                "round {round}: invalid assignment"
            );
            assert!(solver.is_primed(), "round {round}: cache lost");
        }
    }

    #[test]
    fn budgeted_solver_never_caches_and_always_solves_cold() {
        let inst = instance(6);
        let config =
            SolveConfig::new(Algorithm::Gta).with_budget(fta_core::SolveBudget::wall_ms(10_000));
        let mut solver = Solver::new(config);
        solver.solve(&inst);
        assert!(!solver.is_primed(), "budgeted solve must not cache");
        let out = solver.resolve(&inst, &identity_churn(&inst));
        assert!(out.assignment.validate(&inst).is_ok());
        assert_eq!(solver.last_stats().centers_cold, inst.centers.len());
    }

    #[test]
    fn invalidate_forces_the_next_round_cold() {
        let inst = instance(7);
        let mut solver = Solver::new(SolveConfig::new(Algorithm::Gta));
        solver.solve(&inst);
        solver.invalidate();
        assert!(!solver.is_primed());
        solver.resolve(&inst, &identity_churn(&inst));
        assert_eq!(solver.last_stats().centers_cold, inst.centers.len());
    }

    #[test]
    fn rehydrated_solver_matches_live_solver_bitwise() {
        // A solver rebuilt from (instance, keys, seed) must behave exactly
        // like the live solver it was seeded from: same clean-path verdicts
        // and the same warm-path equilibria on the next churned round.
        for algorithm in [
            Algorithm::Gta,
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(crate::iegt::IegtConfig::default()),
        ] {
            let inst = instance(9);
            let keys: Vec<u64> = (100..100 + inst.workers.len() as u64).collect();
            let mut live = Solver::new(SolveConfig::new(algorithm));
            live.solve_keyed(&inst, &keys);
            let seed = live.cache_seed().expect("live solver is primed");

            let mut restored = Solver::new(SolveConfig::new(algorithm));
            assert!(
                restored.rehydrate(&inst, &keys, &seed),
                "{}: rehydration failed",
                algorithm.name()
            );

            // Zero churn: the rehydrated cache must be judged clean.
            let churn = ChurnSet {
                worker_keys: keys.clone(),
                ..ChurnSet::empty(inst.workers.len())
            };
            let a = live.resolve(&inst, &churn);
            let b = restored.resolve(&inst, &churn);
            assert_eq!(
                restored.last_stats().centers_clean,
                inst.centers.len(),
                "{}: rehydrated cache not clean",
                algorithm.name()
            );
            assert_eq!(a.assignment, b.assignment, "{}", algorithm.name());

            // Churned round: both must take the same warm path to the same
            // equilibrium, leaving bitwise-equal seeds behind.
            let mut churned = inst.clone();
            let n = churned.tasks.len();
            churned.tasks.truncate(n - n / 12);
            let a = live.resolve(&churned, &churn);
            let b = restored.resolve(&churned, &churn);
            assert_eq!(
                live.last_stats(),
                restored.last_stats(),
                "{}: ladder paths diverged",
                algorithm.name()
            );
            assert_eq!(a.assignment, b.assignment, "{}", algorithm.name());
            assert_eq!(
                live.cache_seed(),
                restored.cache_seed(),
                "{}: post-round caches diverged",
                algorithm.name()
            );
        }
    }

    #[test]
    fn rehydrate_with_mismatched_seed_leaves_solver_unprimed() {
        let inst = instance(10);
        let keys: Vec<u64> = (0..inst.workers.len() as u64).collect();
        let mut live = Solver::new(SolveConfig::new(Algorithm::Gta));
        live.solve_keyed(&inst, &keys);
        let mut seed = live.cache_seed().unwrap();
        // A mask no pool of this instance contains.
        seed.centers[0].selections[0] = Some(u128::MAX);
        let mut restored = Solver::new(SolveConfig::new(Algorithm::Gta));
        assert!(!restored.rehydrate(&inst, &keys, &seed));
        assert!(!restored.is_primed());
        // Unprimed is safe: the next round just solves cold.
        let out = restored.resolve(&inst, &ChurnSet::empty(inst.workers.len()));
        assert!(out.assignment.validate(&inst).is_ok());
    }

    #[test]
    fn worker_key_mismatch_falls_back_to_cold() {
        let inst = instance(8);
        let mut solver = Solver::new(SolveConfig::new(Algorithm::Gta));
        solver.solve(&inst);
        let bad = ChurnSet {
            worker_keys: vec![0; 3], // wrong length
            ..ChurnSet::default()
        };
        let out = solver.resolve(&inst, &bad);
        assert!(out.assignment.validate(&inst).is_ok());
        assert_eq!(solver.last_stats().centers_cold, inst.centers.len());
    }
}

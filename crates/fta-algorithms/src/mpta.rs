//! MPTA — Maximal Payoff Task Assignment (baseline i of Section VII-A).
//!
//! The paper's MPTA identifies the assignment with maximal *total* payoff
//! using a tree-decomposition technique from external references [30, 31].
//! Those papers' algorithm is not specified here, so this module substitutes
//! an anytime maximiser with the same role in the evaluation — "the
//! highest-average-payoff, most expensive, least fair baseline":
//!
//! 1. greedy seeding (GTA);
//! 2. payoff best-response hill climbing: workers take turns switching to
//!    their maximum-payoff available strategy — because one worker's payoff
//!    does not depend on *which* strategies others play (only on which
//!    delivery points remain free), every switch strictly increases the
//!    total payoff, so the climb terminates at a local maximum;
//! 3. optionally several randomised restarts, keeping the best total.
//!
//! On small instances [`crate::exact::exact_search`] certifies how close
//! the climb gets; the integration tests do exactly that.

use crate::context::GameContext;
use crate::gta::gta;
use crate::random::random_assignment;

/// Configuration of the MPTA heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MptaConfig {
    /// Number of randomised restarts in addition to the greedy seed.
    pub restarts: usize,
    /// Cap on best-response rounds per climb.
    pub max_rounds: usize,
    /// Seed for the randomised restarts.
    pub seed: u64,
    /// Cap on eject-and-reassign improvement passes. Each pass tentatively
    /// releases one worker's delivery points and lets everyone re-optimise,
    /// escaping the "one worker blocks a better packing" local maxima that
    /// unilateral moves cannot leave. This is the expensive part that makes
    /// MPTA the slowest algorithm, mirroring the paper's CPU-time panels.
    pub eject_passes: usize,
}

impl Default for MptaConfig {
    fn default() -> Self {
        Self {
            restarts: 2,
            max_rounds: 100,
            seed: 0x4d50_5441, // "MPTA"
            eject_passes: 3,
        }
    }
}

/// Runs MPTA on a fresh context, leaving the best-found selection in `ctx`.
pub fn mpta<'a>(ctx: &mut GameContext<'a>, config: &MptaConfig) {
    // Climb from the greedy seed.
    gta(ctx);
    climb(ctx, config.max_rounds);
    eject_improve(ctx, config);
    let mut best: GameContext<'a> = ctx.clone();

    // Randomised restarts.
    for r in 0..config.restarts {
        let mut trial = GameContext::new(ctx.space());
        random_assignment(&mut trial, config.seed.wrapping_add(r as u64));
        climb(&mut trial, config.max_rounds);
        eject_improve(&mut trial, config);
        if trial.total_payoff() > best.total_payoff() {
            best = trial;
        }
    }
    *ctx = best;
}

/// Eject-and-reassign passes: for each worker in turn, tentatively drop its
/// strategy, let the whole population re-climb, and keep the result only if
/// the total payoff strictly improved.
fn eject_improve(ctx: &mut GameContext<'_>, config: &MptaConfig) {
    for _ in 0..config.eject_passes {
        let mut improved = false;
        for local in 0..ctx.n_workers() {
            if ctx.selection(local).is_none() {
                continue;
            }
            let snapshot = ctx.clone();
            let base = ctx.total_payoff();
            ctx.set_strategy(local, None);
            climb(ctx, config.max_rounds);
            if ctx.total_payoff() > base + 1e-9 {
                improved = true;
            } else {
                *ctx = snapshot;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Payoff best-response rounds until no worker can strictly improve.
fn climb(ctx: &mut GameContext<'_>, max_rounds: usize) {
    for _ in 0..max_rounds {
        let mut moved = false;
        for local in 0..ctx.n_workers() {
            let current = ctx.payoff(local);
            let best = ctx
                .available_strategies(local)
                .max_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((idx, payoff)) = best {
                if payoff > current + 1e-12 {
                    ctx.set_strategy(local, Some(idx));
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn small_instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 10,
                n_tasks: 90,
                n_delivery_points: 16,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn mpta_never_loses_to_gta_on_total_payoff() {
        for seed in 0..5 {
            let inst = small_instance(seed);
            let s = space(&inst);
            let mut greedy = GameContext::new(&s);
            gta(&mut greedy);
            let mut maximal = GameContext::new(&s);
            mpta(&mut maximal, &MptaConfig::default());
            assert!(
                maximal.total_payoff() >= greedy.total_payoff() - 1e-9,
                "seed {seed}: {} < {}",
                maximal.total_payoff(),
                greedy.total_payoff()
            );
        }
    }

    #[test]
    fn result_is_a_valid_assignment() {
        let inst = small_instance(11);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        mpta(&mut ctx, &MptaConfig::default());
        assert!(ctx.to_assignment().validate(&inst).is_ok());
    }

    #[test]
    fn climb_reaches_payoff_local_maximum() {
        let inst = small_instance(23);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        mpta(&mut ctx, &MptaConfig::default());
        for local in 0..ctx.n_workers() {
            let current = ctx.payoff(local);
            for (_, payoff) in ctx.available_strategies(local) {
                assert!(payoff <= current + 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let inst = small_instance(31);
        let s = space(&inst);
        let run = || {
            let mut ctx = GameContext::new(&s);
            mpta(&mut ctx, &MptaConfig::default());
            ctx.to_assignment()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_restarts_and_ejects_equals_pure_climb() {
        let inst = small_instance(41);
        let s = space(&inst);
        let cfg = MptaConfig {
            restarts: 0,
            eject_passes: 0,
            ..MptaConfig::default()
        };
        let mut a = GameContext::new(&s);
        mpta(&mut a, &cfg);
        let mut b = GameContext::new(&s);
        gta(&mut b);
        climb(&mut b, cfg.max_rounds);
        assert_eq!(a.to_assignment(), b.to_assignment());
    }

    #[test]
    fn eject_passes_never_hurt_total_payoff() {
        for seed in 50..55 {
            let inst = small_instance(seed);
            let s = space(&inst);
            let without = {
                let mut c = GameContext::new(&s);
                mpta(
                    &mut c,
                    &MptaConfig {
                        eject_passes: 0,
                        ..MptaConfig::default()
                    },
                );
                c.total_payoff()
            };
            let with = {
                let mut c = GameContext::new(&s);
                mpta(&mut c, &MptaConfig::default());
                c.total_payoff()
            };
            assert!(
                with >= without - 1e-9,
                "seed {seed}: eject passes reduced total payoff {without} → {with}"
            );
        }
    }
}

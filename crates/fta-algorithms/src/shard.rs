//! Geo-sharded scale-out: concurrent shard solves with cost-aware
//! scheduling.
//!
//! The paper's decomposition makes every distribution center an
//! independent subproblem; [`crate::solver::solve_with_pool`] already
//! exploits that with one pool job per center. At scale (hundreds of
//! centers, 10⁵+ workers) two things break down:
//!
//! * **Scheduling.** Center costs are heavy-tailed — one downtown
//!   "whale" center can cost more than fifty suburban ones. FIFO
//!   submission in center order lets such a whale start last and
//!   serialize the tail of the batch.
//! * **Memory.** Interleaving unrelated centers across threads churns
//!   the per-thread generation arenas (`fta_vdps::arena`): buffer sizes
//!   stop repeating, recycling misses, and 10⁵-worker instances thrash
//!   the allocator.
//!
//! This module groups centers into [`ShardPlan`] shards (hash or geo
//! k-means, see [`fta_core::shard`]) and submits **one job per shard**,
//! largest-estimated-cost first ([`TaskScope::map_prioritized`]). A
//! shard's centers solve consecutively on one pool thread — its arena
//! reuse stays coherent — while intra-center layer expansion still fans
//! out through the shared [`TaskScope`], so a whale center can use every
//! idle thread. Costs come from [`estimate_center_cost`]: the previous
//! round's measured [`CenterSolveSummary`] nanoseconds when available,
//! otherwise a closed-form estimate from DP and worker counts.
//!
//! **Determinism.** Shards only *group* work. Every center is solved by
//! the same `solve_center` call with the same center-id-salted seed, and
//! per-shard outcomes are merged back in global center order, so
//! [`solve_sharded`] is bit-identical to the sequential solve for every
//! algorithm and any shard count/partitioner (property-tested in
//! `tests/proptest_shard.rs`).
//!
//! [`ShardedSolver`] composes sharding with incremental re-solve: one
//! [`Solver`] cache per shard, resolved concurrently, so churn
//! warm-starts and the clean/warm/cold ladder fire per shard.

use crate::resolve::{CacheSeed, CenterSeed, ResolveStats, Solver};
use crate::solver::{
    install_exhaustion_hook, merge_outcomes, solve_center, CenterOutcome, CenterSolveSummary,
    SolveConfig, SolveOutcome,
};
use fta_core::instance::CenterView;
use fta_core::{CancelToken, CenterId, ChurnSet, Instance, ShardBy, ShardPlan};
use fta_vdps::{TaskScope, WorkerPool};
use std::collections::HashMap;

/// Estimated cost of solving one center, used to order shard jobs
/// largest-first. When `prior` carries the previous round's measured
/// work counters for this center (`vdps_nanos + assign_nanos > 0`),
/// those nanoseconds are the estimate; otherwise the cost is a
/// closed-form proxy — the number of candidate DP subsets up to the
/// effective length cap, times the workers that will validate them.
/// Only relative magnitudes matter: costs order work, they never change
/// results.
#[must_use]
pub fn estimate_center_cost(
    instance: &Instance,
    view: &CenterView,
    config: &SolveConfig,
    prior: Option<&CenterSolveSummary>,
) -> u64 {
    if let Some(p) = prior {
        let measured = p.vdps_nanos.saturating_add(p.assign_nanos);
        if measured > 0 {
            return measured;
        }
    }
    let d = view.dps.len() as u64;
    let w = view.workers.len() as u64;
    let center_max_dp = view
        .workers
        .iter()
        .map(|&x| instance.workers[x.index()].max_dp)
        .max()
        .unwrap_or(0);
    let len_cap = (config.vdps.max_len.min(center_max_dp) as u64).min(d);
    let mut subsets: u64 = 0;
    for l in 1..=len_cap {
        subsets = subsets.saturating_add(binomial_capped(d, l));
    }
    subsets.max(1).saturating_mul(w.max(1)).saturating_add(d)
}

/// C(n, k), saturating at 2⁴⁰ — beyond that the ordering is settled and
/// exact magnitudes stop mattering.
fn binomial_capped(n: u64, k: u64) -> u64 {
    const CAP: u64 = 1 << 40;
    let k = k.min(n - k);
    let mut c: u64 = 1;
    for i in 0..k {
        // Multiply-before-divide over consecutive integers stays exact.
        c = c.saturating_mul(n - i) / (i + 1);
        if c >= CAP {
            return CAP;
        }
    }
    c
}

/// One shard's slice of the instance: `(global view index, view, cost)`
/// per center, in ascending view order.
type ShardGroup = Vec<(usize, CenterView, u64)>;

/// Partitions the instance's center views into per-shard groups with
/// per-center cost estimates attached.
fn group_views(
    instance: &Instance,
    views: Vec<CenterView>,
    plan: &ShardPlan,
    config: &SolveConfig,
    prior: Option<&[CenterSolveSummary]>,
) -> Vec<ShardGroup> {
    let prior_by_center: HashMap<CenterId, &CenterSolveSummary> =
        prior.unwrap_or(&[]).iter().map(|s| (s.center, s)).collect();
    let mut groups: Vec<ShardGroup> = vec![Vec::new(); plan.shard_count()];
    for (gi, view) in views.into_iter().enumerate() {
        let cost = estimate_center_cost(
            instance,
            &view,
            config,
            prior_by_center.get(&view.center).copied(),
        );
        groups[plan.shard_of(view.center) as usize].push((gi, view, cost));
    }
    groups
}

/// Percentage by which the heaviest load exceeds the mean (0 when empty
/// or all-zero): the shard-balance figure of merit.
fn imbalance_pct(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 0.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    (max / mean - 1.0) * 100.0
}

/// Emits the shard telemetry: `shard.count` / `shard.centers` counters
/// and the `shard.imbalance_pct` gauge (max-aggregated across solves).
fn emit_shard_telemetry(plan: &ShardPlan, groups: &[ShardGroup]) {
    if !fta_obs::enabled() {
        return;
    }
    fta_obs::counter("shard.count", plan.shard_count() as u64);
    fta_obs::counter("shard.centers", groups.iter().map(|g| g.len() as u64).sum());
    let loads: Vec<u64> = groups
        .iter()
        .map(|g| g.iter().fold(0u64, |acc, e| acc.saturating_add(e.2)))
        .collect();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fta_obs::gauge_max("shard.imbalance_pct", imbalance_pct(&loads).round() as u64);
}

/// Like [`solve_sharded`], on a caller-provided pool, optionally seeded
/// with the previous round's per-center summaries as the cost model.
///
/// Shards are submitted heaviest-first and solved concurrently; within a
/// shard, centers run consecutively on one thread (heaviest first) and
/// their DP layer expansion shares `pool` via the nested [`TaskScope`].
/// Outcomes are merged in global center order, so the result is
/// bit-identical to [`crate::solver::solve_with_pool`] on the same
/// instance for any shard count, partitioner, or pool size.
#[must_use]
pub fn solve_sharded_with_pool(
    instance: &Instance,
    config: &SolveConfig,
    pool: &WorkerPool,
    shards: usize,
    by: ShardBy,
    prior: Option<&[CenterSolveSummary]>,
) -> SolveOutcome {
    let _solve_span = fta_obs::span("solver.solve_sharded");
    install_exhaustion_hook();
    let token = if config.budget.is_unlimited() {
        None
    } else {
        Some(config.budget.token())
    };
    let cancel = token.as_ref();
    let views = instance.center_views();
    let aggregates = instance.dp_aggregates();
    let plan = ShardPlan::build(&instance.centers, shards, by);
    let groups = group_views(instance, views, &plan, config, prior);
    emit_shard_telemetry(&plan, &groups);

    let per_shard: Vec<Vec<(usize, CenterOutcome)>> = pool.scope(|ts| {
        let aggregates = &aggregates;
        let jobs: Vec<(u64, _)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .map(|(si, mut group)| {
                // Whales first inside the shard too: their nested layer
                // parallelism overlaps the batch instead of trailing it.
                group.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
                let shard_cost = group.iter().fold(0u64, |acc, e| acc.saturating_add(e.2));
                let job = move |ts: &TaskScope<'_>| {
                    let _shard_span = fta_obs::span_center("solver.shard", si as u32);
                    group
                        .into_iter()
                        .map(|(gi, view, _)| {
                            let outcome = solve_center(
                                instance,
                                aggregates,
                                view,
                                config,
                                Some(ts),
                                cancel,
                                false,
                            )
                            .0;
                            (gi, outcome)
                        })
                        .collect::<Vec<_>>()
                };
                (shard_cost, job)
            })
            .collect();
        ts.map_prioritized(jobs)
    });

    let mut indexed: Vec<(usize, CenterOutcome)> = per_shard.into_iter().flatten().collect();
    indexed.sort_by_key(|&(gi, _)| gi);
    let budget_cancelled = token.as_ref().is_some_and(CancelToken::is_cancelled);
    let mut merged = merge_outcomes(
        indexed.into_iter().map(|(_, o)| o).collect(),
        budget_cancelled,
    );
    for summary in &mut merged.centers {
        summary.shard = Some(plan.shard_of(summary.center));
    }
    merged
}

/// Sharded multi-center solve: groups centers into `shards` shards with
/// partitioner `by` and solves them concurrently with cost-aware
/// scheduling. Bit-identical to [`crate::solver::solve`] on the same
/// instance and config. With `config.parallel` the pool is bounded by
/// `available_parallelism()`; otherwise everything runs inline (the
/// shard layer then only adds attribution).
#[must_use]
pub fn solve_sharded(
    instance: &Instance,
    config: &SolveConfig,
    shards: usize,
    by: ShardBy,
) -> SolveOutcome {
    let pool = if config.parallel {
        WorkerPool::new()
    } else {
        WorkerPool::sequential()
    };
    solve_sharded_with_pool(instance, config, &pool, shards, by, None)
}

/// Sharded incremental re-solve: one [`Solver`] cache per shard, so
/// churn warm-starts compose with sharding. Each round the shard
/// solvers run concurrently (cost-aware, heaviest shard first), each
/// walking its centers down the clean/warm/cold ladder exactly as a
/// single [`Solver`] would — the `solve.centers_{clean,warm,cold}`
/// counters fire once per shard. Results are merged in global center
/// order: for deterministic algorithms the round is bit-identical to an
/// unsharded [`Solver`], for the iterative games it reaches the same
/// equilibria because each center's cache evolves identically.
pub struct ShardedSolver {
    config: SolveConfig,
    shards: usize,
    by: ShardBy,
    solvers: Vec<Solver>,
    last: ResolveStats,
    /// Previous round's merged summaries: the cost model for the next
    /// round's scheduling.
    prior: Vec<CenterSolveSummary>,
}

impl ShardedSolver {
    /// A sharded solver with unprimed caches; the first
    /// [`ShardedSolver::resolve`] call primes them.
    #[must_use]
    pub fn new(config: SolveConfig, shards: usize, by: ShardBy) -> Self {
        Self {
            config,
            shards,
            by,
            solvers: Vec::new(),
            last: ResolveStats::default(),
            prior: Vec::new(),
        }
    }

    /// The configuration every round is solved under.
    #[must_use]
    pub fn config(&self) -> &SolveConfig {
        &self.config
    }

    /// Whether any shard currently holds cache entries.
    #[must_use]
    pub fn is_primed(&self) -> bool {
        self.solvers.iter().any(Solver::is_primed)
    }

    /// The clean/warm/cold distribution of the most recent call, summed
    /// over shards.
    #[must_use]
    pub fn last_stats(&self) -> ResolveStats {
        self.last
    }

    /// Drops every shard's cache, forcing the next round fully cold.
    pub fn invalidate(&mut self) {
        self.solvers.clear();
        self.prior.clear();
    }

    /// Exports the cached equilibria of every shard as one [`CacheSeed`]
    /// (sorted by center, so it is interchangeable with an unsharded
    /// [`Solver::cache_seed`] of the same round), or `None` when no
    /// shard is primed.
    #[must_use]
    pub fn cache_seed(&self) -> Option<CacheSeed> {
        let mut centers: Vec<CenterSeed> = self
            .solvers
            .iter()
            .filter_map(Solver::cache_seed)
            .flat_map(|s| s.centers)
            .collect();
        if centers.is_empty() {
            return None;
        }
        centers.sort_by_key(|c| c.center);
        Some(CacheSeed { centers })
    }

    /// Rebuilds every shard's cache from a journaled round (the sharded
    /// counterpart of [`Solver::rehydrate`]): the seed is partitioned by
    /// the shard plan of `instance` and each shard rehydrates its own
    /// slice. All-or-nothing: if any shard's slice fails to fit, every
    /// shard is left unprimed and `false` is returned (the next round
    /// solves cold, which is always safe).
    pub fn rehydrate(&mut self, instance: &Instance, keys: &[u64], seed: &CacheSeed) -> bool {
        let plan = ShardPlan::build(&instance.centers, self.shards, self.by);
        self.solvers = (0..plan.shard_count())
            .map(|_| Solver::new(self.config))
            .collect();
        self.prior.clear();
        let mut per_shard: Vec<Vec<CenterSeed>> = vec![Vec::new(); plan.shard_count()];
        for c in &seed.centers {
            let idx = c.center as usize;
            if idx >= instance.centers.len() {
                self.solvers.clear();
                return false;
            }
            per_shard[plan.shard_of(CenterId::from_index(idx)) as usize].push(c.clone());
        }
        for (solver, centers) in self.solvers.iter_mut().zip(per_shard) {
            if centers.is_empty() {
                continue;
            }
            if !solver.rehydrate(instance, keys, &CacheSeed { centers }) {
                self.solvers.clear();
                return false;
            }
        }
        self.is_primed()
    }

    /// Incremental sharded re-solve of `instance` given what changed
    /// since the cached round. See the type docs; the semantics per
    /// center are those of [`Solver::resolve`].
    pub fn resolve(&mut self, instance: &Instance, churn: &ChurnSet) -> SolveOutcome {
        // Configurations that can never cache (bounded budget, panic
        // injection) take the plain sharded solve — same fallback rule as
        // the unsharded Solver.
        if !self.config.budget.is_unlimited() || self.config.inject_panic.is_some() {
            self.solvers.clear();
            let pool = self.pool();
            let prior = std::mem::take(&mut self.prior);
            let out = solve_sharded_with_pool(
                instance,
                &self.config,
                &pool,
                self.shards,
                self.by,
                if prior.is_empty() { None } else { Some(&prior) },
            );
            self.last = ResolveStats {
                centers_cold: out.centers.len(),
                ..ResolveStats::default()
            };
            self.prior = out.centers.clone();
            return out;
        }

        let _span = fta_obs::span("solver.resolve_sharded");
        let identity: Vec<u64>;
        let keys: &[u64] = if churn.worker_keys.len() == instance.workers.len() {
            &churn.worker_keys
        } else {
            identity = (0..instance.workers.len() as u64).collect();
            &identity
        };
        let views = instance.center_views();
        let n_views = views.len();
        let aggregates = instance.dp_aggregates();
        let plan = ShardPlan::build(&instance.centers, self.shards, self.by);
        if self.solvers.len() != plan.shard_count() {
            self.solvers = (0..plan.shard_count())
                .map(|_| Solver::new(self.config))
                .collect();
        }
        let groups = group_views(instance, views, &plan, &self.config, Some(&self.prior));
        emit_shard_telemetry(&plan, &groups);

        let pool = self.pool();
        let solvers = std::mem::take(&mut self.solvers);
        type ShardResult = (Solver, Vec<(usize, CenterOutcome)>, Vec<&'static str>);
        let results: Vec<ShardResult> = pool.scope(|ts| {
            let aggregates = &aggregates;
            let jobs: Vec<(u64, _)> = solvers
                .into_iter()
                .zip(groups)
                .enumerate()
                .map(|(si, (mut solver, group))| {
                    let shard_cost = group.iter().fold(0u64, |acc, e| acc.saturating_add(e.2));
                    let job = move |_ts: &TaskScope<'_>| {
                        let _shard_span = fta_obs::span_center("solver.shard", si as u32);
                        let mut gis = Vec::with_capacity(group.len());
                        let mut shard_views = Vec::with_capacity(group.len());
                        for (gi, view, _) in group {
                            gis.push(gi);
                            shard_views.push(view);
                        }
                        let (outcomes, paths) =
                            solver.resolve_views(instance, keys, shard_views, aggregates);
                        (solver, gis.into_iter().zip(outcomes).collect(), paths)
                    };
                    (shard_cost, job)
                })
                .collect();
            ts.map_prioritized(jobs)
        });

        let mut stats = ResolveStats::default();
        let mut paths_by_view: Vec<&'static str> = vec!["cold"; n_views];
        let mut indexed: Vec<(usize, CenterOutcome)> = Vec::with_capacity(n_views);
        for (solver, outcomes, paths) in results {
            let s = solver.last_stats();
            stats.centers_clean += s.centers_clean;
            stats.centers_warm += s.centers_warm;
            stats.centers_cold += s.centers_cold;
            stats.warm_adopted += s.warm_adopted;
            stats.warm_rejected += s.warm_rejected;
            self.solvers.push(solver);
            for ((gi, outcome), path) in outcomes.into_iter().zip(paths) {
                paths_by_view[gi] = path;
                indexed.push((gi, outcome));
            }
        }
        indexed.sort_by_key(|&(gi, _)| gi);
        let mut merged = merge_outcomes(indexed.into_iter().map(|(_, o)| o).collect(), false);
        for (summary, path) in merged.centers.iter_mut().zip(paths_by_view) {
            summary.resolve_path = path;
            summary.shard = Some(plan.shard_of(summary.center));
        }
        self.last = stats;
        self.prior = merged.centers.clone();
        merged
    }

    fn pool(&self) -> WorkerPool {
        if self.config.parallel {
            WorkerPool::new()
        } else {
            WorkerPool::sequential()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, Algorithm};
    use crate::Solver;
    use fta_core::ChurnSet;
    use fta_data::{generate_syn, SynConfig};

    fn instance(n_centers: usize, seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers,
                n_workers: n_centers * 8,
                n_tasks: n_centers * 60,
                n_delivery_points: n_centers * 12,
                extent: 4.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    #[test]
    fn sharded_solve_is_bit_identical_to_sequential() {
        let inst = instance(6, 11);
        for algorithm in [
            Algorithm::Gta,
            Algorithm::Mpta(crate::MptaConfig::default()),
            Algorithm::Random { seed: 5 },
            Algorithm::Fgt(crate::FgtConfig::default()),
        ] {
            let config = SolveConfig::new(algorithm);
            let baseline = solve(&inst, &config);
            for shards in [1, 2, 3, 6, 17] {
                for by in [ShardBy::Hash, ShardBy::Geo] {
                    let sharded = solve_sharded(&inst, &config, shards, by);
                    assert_eq!(
                        sharded.assignment,
                        baseline.assignment,
                        "{} diverged at {shards} shards ({by:?})",
                        algorithm.name()
                    );
                    assert_eq!(
                        sharded.gen_stats.work_counters(),
                        baseline.gen_stats.work_counters()
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_summaries_carry_shard_attribution() {
        let inst = instance(5, 3);
        let config = SolveConfig::new(Algorithm::Gta);
        let plan = ShardPlan::build(&inst.centers, 2, ShardBy::Geo);
        let outcome = solve_sharded(&inst, &config, 2, ShardBy::Geo);
        assert!(!outcome.centers.is_empty());
        for summary in &outcome.centers {
            assert_eq!(summary.shard, Some(plan.shard_of(summary.center)));
        }
        let unsharded = solve(&inst, &config);
        assert!(unsharded.centers.iter().all(|s| s.shard.is_none()));
    }

    #[test]
    fn sharded_solver_composes_with_churn_warm_starts() {
        let inst = instance(6, 21);
        let config = SolveConfig::new(Algorithm::Gta);
        let keys: Vec<u64> = (0..inst.workers.len() as u64).collect();

        let mut flat = Solver::new(config);
        let mut sharded = ShardedSolver::new(config, 3, ShardBy::Geo);

        // Round 1: cold prime on both.
        let churn = ChurnSet::empty(keys.len());
        let a = flat.resolve(&inst, &churn);
        let b = sharded.resolve(&inst, &churn);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(
            flat.last_stats().centers_cold,
            sharded.last_stats().centers_cold
        );
        assert!(sharded.is_primed());

        // Round 2, unchanged instance: every center must come back clean
        // from its shard's cache, matching the unsharded ladder.
        let a2 = flat.resolve(&inst, &churn);
        let b2 = sharded.resolve(&inst, &churn);
        assert_eq!(a2.assignment, b2.assignment);
        assert_eq!(flat.last_stats(), sharded.last_stats());
        assert_eq!(
            sharded.last_stats().centers_clean,
            a2.centers.len(),
            "unchanged round must be fully clean"
        );
        assert!(b2.centers.iter().all(|s| s.resolve_path == "clean"));

        // Round 3: perturb one worker; its center fails the bitwise
        // clean check and goes warm or cold, everything else stays
        // clean — identically on both.
        let mut moved = inst.clone();
        moved.workers[0].location.x += 0.25;
        let a3 = flat.resolve(&moved, &churn);
        let b3 = sharded.resolve(&moved, &churn);
        assert_eq!(a3.assignment, b3.assignment);
        assert_eq!(flat.last_stats(), sharded.last_stats());
        assert!(sharded.last_stats().centers_clean > 0);
        assert!(sharded.last_stats().centers_warm + sharded.last_stats().centers_cold > 0);
    }

    #[test]
    fn sharded_cache_seed_round_trips_through_rehydrate() {
        let inst = instance(4, 9);
        let config = SolveConfig::new(Algorithm::Fgt(crate::FgtConfig::default()));
        let keys: Vec<u64> = (0..inst.workers.len() as u64).collect();
        let churn = ChurnSet::empty(keys.len());

        let mut live = ShardedSolver::new(config, 2, ShardBy::Hash);
        live.resolve(&inst, &churn);
        let seed = live.cache_seed().expect("primed solver exports a seed");

        let mut recovered = ShardedSolver::new(config, 2, ShardBy::Hash);
        assert!(recovered.rehydrate(&inst, &keys, &seed));
        let a = live.resolve(&inst, &churn);
        let b = recovered.resolve(&inst, &churn);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(live.last_stats(), recovered.last_stats());
    }

    #[test]
    fn cost_estimates_prefer_measured_nanos() {
        let inst = instance(2, 2);
        let views = inst.center_views();
        let config = SolveConfig::new(Algorithm::Gta);
        let blind = estimate_center_cost(&inst, &views[0], &config, None);
        assert!(blind > 0);
        let outcome = solve(&inst, &config);
        let with_prior = estimate_center_cost(&inst, &views[0], &config, Some(&outcome.centers[0]));
        assert_eq!(
            with_prior,
            outcome.centers[0].vdps_nanos + outcome.centers[0].assign_nanos
        );
    }

    #[test]
    fn binomials_saturate_instead_of_overflowing() {
        assert_eq!(binomial_capped(6, 2), 15);
        assert_eq!(binomial_capped(128, 64), 1 << 40);
        assert_eq!(binomial_capped(5, 0), 1);
    }
}

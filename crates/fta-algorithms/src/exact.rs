//! Exact (exponential-time) solvers for small instances.
//!
//! The FTA problem is NP-hard (Lemma 1), so these brute-force solvers exist
//! purely to (a) certify the heuristics' quality on small instances in
//! tests and benches and (b) make the intractability concrete: they
//! enumerate every joint strategy, which explodes immediately beyond a
//! handful of workers.

use crate::context::GameContext;
use fta_core::fairness::{average_payoff, payoff_difference};
use fta_core::Assignment;

/// What the exhaustive search optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactObjective {
    /// The FTA objective: lexicographically minimise the payoff difference,
    /// then maximise the average payoff (Section III).
    ///
    /// Taken literally, the lexicographic objective is degenerate: the
    /// all-null assignment has payoff difference 0. The paper implicitly
    /// assumes workers are actually served, so this objective searches only
    /// *addition-maximal* assignments — no worker on the null strategy
    /// could still take an available VDPS. Every algorithm in this crate
    /// produces addition-maximal assignments (for FGT this holds whenever
    /// `β ≤ 1`, which includes the paper's `β = 0.5`: utility is then
    /// non-decreasing in the worker's own payoff).
    MinPayoffDifference,
    /// MPTA's objective: maximise the total (equivalently average) payoff.
    /// The optimum is automatically addition-maximal.
    MaxTotalPayoff,
}

/// Exhaustively searches all joint strategies (each worker: `null` or any
/// of its valid, conflict-free VDPSs) and returns the best assignment with
/// its `(payoff_difference, average_payoff)` score.
///
/// # Panics
///
/// Panics if the joint strategy space exceeds ~10⁷ leaves; use only on
/// tiny instances.
#[must_use]
pub fn exact_search(
    ctx: &mut GameContext<'_>,
    objective: ExactObjective,
) -> (Assignment, f64, f64) {
    let n = ctx.n_workers();
    let mut bound: f64 = 1.0;
    for local in 0..n {
        bound *= (ctx.space().strategy_count(local) + 1) as f64;
        assert!(
            bound <= 1e7,
            "joint strategy space too large for exhaustive search"
        );
    }

    struct Best {
        assignment: Assignment,
        diff: f64,
        avg: f64,
    }
    let mut best: Option<Best> = None;

    // Branch-and-bound bound for the max-total objective: the most a
    // suffix of workers could still add, ignoring conflicts. suffix_max[i]
    // = Σ_{j ≥ i} max payoff of worker j.
    let suffix_max: Vec<f64> = {
        let mut suffix = vec![0.0; n + 1];
        for local in (0..n).rev() {
            let own_max = ctx
                .space()
                .payoffs_of(local)
                .iter()
                .copied()
                .fold(0.0_f64, f64::max);
            suffix[local] = suffix[local + 1] + own_max;
        }
        suffix
    };

    fn better(objective: ExactObjective, diff: f64, avg: f64, b: &Best) -> bool {
        match objective {
            ExactObjective::MinPayoffDifference => {
                diff < b.diff - 1e-12 || ((diff - b.diff).abs() <= 1e-12 && avg > b.avg + 1e-12)
            }
            ExactObjective::MaxTotalPayoff => avg > b.avg + 1e-12,
        }
    }

    fn dfs(
        ctx: &mut GameContext<'_>,
        local: usize,
        objective: ExactObjective,
        suffix_max: &[f64],
        best: &mut Option<Best>,
    ) {
        let n = ctx.n_workers();
        if local == n {
            // The min-diff objective only admits addition-maximal
            // assignments (see the objective's docs).
            if objective == ExactObjective::MinPayoffDifference {
                let addition_maximal = (0..n).all(|w| {
                    ctx.selection(w).is_some() || ctx.available_strategies(w).next().is_none()
                });
                if !addition_maximal {
                    return;
                }
            }
            let diff = payoff_difference(ctx.payoffs());
            let avg = average_payoff(ctx.payoffs());
            let improves = best
                .as_ref()
                .is_none_or(|b| better(objective, diff, avg, b));
            if improves {
                *best = Some(Best {
                    assignment: ctx.to_assignment(),
                    diff,
                    avg,
                });
            }
            return;
        }
        // Branch and bound (max-total objective only): even taking every
        // remaining worker's best conflict-free payoff cannot beat the
        // incumbent — prune the whole subtree.
        if objective == ExactObjective::MaxTotalPayoff {
            if let Some(b) = best.as_ref() {
                let incumbent_total = b.avg * n as f64;
                let optimistic = ctx.total_payoff() + suffix_max[local];
                if optimistic <= incumbent_total + 1e-12 {
                    return;
                }
            }
        }
        // Null branch.
        ctx.set_strategy(local, None);
        dfs(ctx, local + 1, objective, suffix_max, best);
        // Every conflict-free strategy.
        let options: Vec<u32> = ctx.available_strategies(local).map(|(i, _)| i).collect();
        for idx in options {
            ctx.set_strategy(local, Some(idx));
            dfs(ctx, local + 1, objective, suffix_max, best);
        }
        ctx.set_strategy(local, None);
    }

    dfs(ctx, 0, objective, &suffix_max, &mut best);
    let b = best.expect("a maximal assignment always exists and is enumerated");
    (b.assignment, b.diff, b.avg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgt::{fgt, FgtConfig};
    use crate::gta::gta;
    use crate::iegt::{iegt, IegtConfig};
    use crate::mpta::{mpta, MptaConfig};
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn tiny_instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 3,
                n_tasks: 25,
                n_delivery_points: 5,
                extent: 1.5,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn exact_min_diff_dominates_all_heuristics() {
        for seed in 0..5 {
            let inst = tiny_instance(seed);
            let s = space(&inst);
            let ws = s.view.workers.clone();
            let mut ctx = GameContext::new(&s);
            let (opt, opt_diff, _) = exact_search(&mut ctx, ExactObjective::MinPayoffDifference);
            assert!(opt.validate(&inst).is_ok());

            for diff in [
                {
                    let mut c = GameContext::new(&s);
                    gta(&mut c);
                    c.to_assignment().fairness(&inst, &ws).payoff_difference
                },
                {
                    let mut c = GameContext::new(&s);
                    fgt(&mut c, &FgtConfig::default());
                    c.to_assignment().fairness(&inst, &ws).payoff_difference
                },
                {
                    let mut c = GameContext::new(&s);
                    iegt(&mut c, &IegtConfig::default());
                    c.to_assignment().fairness(&inst, &ws).payoff_difference
                },
            ] {
                assert!(
                    opt_diff <= diff + 1e-9,
                    "seed {seed}: exact diff {opt_diff} beaten by heuristic {diff}"
                );
            }
        }
    }

    #[test]
    fn exact_max_total_dominates_mpta() {
        for seed in 0..5 {
            let inst = tiny_instance(10 + seed);
            let s = space(&inst);
            let ws = s.view.workers.clone();
            let mut ctx = GameContext::new(&s);
            let (_, _, opt_avg) = exact_search(&mut ctx, ExactObjective::MaxTotalPayoff);

            let mut c = GameContext::new(&s);
            mpta(&mut c, &MptaConfig::default());
            let heur_avg = c.to_assignment().fairness(&inst, &ws).average_payoff;
            assert!(
                opt_avg >= heur_avg - 1e-9,
                "seed {seed}: exact avg {opt_avg} beaten by MPTA {heur_avg}"
            );
        }
    }

    #[test]
    fn exact_on_figure_1_finds_the_papers_fair_assignment() {
        // The introduction's fair assignment {(w1,{dp1,dp2}),
        // (w2,{dp3,dp4,dp5})} has payoff difference 0.26; the optimum can
        // only match or beat it, and must keep a comparable average.
        let inst = fta_core::fig1::instance();
        let views = inst.center_views();
        let s = StrategySpace::build(&inst, &views[0], &VdpsConfig::unpruned(3));
        let mut ctx = GameContext::new(&s);
        let (assignment, diff, avg) = exact_search(&mut ctx, ExactObjective::MinPayoffDifference);
        assert!(assignment.validate(&inst).is_ok());
        assert!(
            diff <= 0.26 + 1e-9,
            "exact optimum diff {diff} worse than the paper's fair assignment"
        );
        // The literal lexicographic objective trades average for equality
        // aggressively (here both workers end near-equal around 1.6), which
        // is exactly why the paper's heuristics — which keep utility in the
        // loop — are the interesting solutions.
        assert!(avg > 1.0, "fair optimum collapsed, got {avg}");
        // And the max-total optimum is exactly the greedy outcome (2.80 +
        // 2.09) / 2 ≈ 2.44 from the introduction.
        let mut ctx = GameContext::new(&s);
        let (_, _, max_avg) = exact_search(&mut ctx, ExactObjective::MaxTotalPayoff);
        assert!(
            (max_avg - 2.44).abs() < 5e-2,
            "max-total average {max_avg} differs from the paper's greedy outcome"
        );
    }

    #[test]
    fn all_null_is_found_when_nothing_is_feasible() {
        let inst = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 3,
                n_tasks: 20,
                n_delivery_points: 5,
                expiry: 0.0001,
                extent: 5.0,
                ..SynConfig::bench_scale()
            },
            3,
        );
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let (a, diff, avg) = exact_search(&mut ctx, ExactObjective::MinPayoffDifference);
        assert_eq!(a.assigned_workers(), 0);
        assert_eq!(diff, 0.0);
        assert_eq!(avg, 0.0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn refuses_oversized_instances() {
        let inst = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 30,
                n_tasks: 400,
                n_delivery_points: 30,
                extent: 1.5,
                ..SynConfig::bench_scale()
            },
            4,
        );
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let _ = exact_search(&mut ctx, ExactObjective::MinPayoffDifference);
    }
}

//! Whole-instance orchestration: VDPS generation + per-center assignment.
//!
//! Task assignment across distribution centers is independent, so the
//! solver decomposes an [`Instance`] into [`CenterView`]s, builds each
//! center's [`StrategySpace`], runs the selected algorithm per center,
//! and merges the per-center assignments and convergence traces.
//!
//! With `parallel = true` all per-center jobs are submitted to one shared
//! [`WorkerPool`] bounded by `available_parallelism()` — never one OS
//! thread per center — and the *same* pool also serves intra-center DP
//! layer expansion and per-worker validation inside `fta-vdps`, so a
//! single giant center no longer serialises a run and a thousand-center
//! instance no longer oversubscribes the machine. Results are merged in
//! center order and per-center seeds are salted by center id, so the
//! outcome is deterministic regardless of thread count.

use crate::context::GameContext;
use crate::degrade::{DegradationEvent, DegradationReport, LadderRung};
use crate::fgt::{fgt_bounded, FgtConfig};
use crate::gta::gta;
use crate::iegt::{iegt_bounded, IegtConfig};
use crate::mpta::{mpta, MptaConfig};
use crate::pfgt::{pfgt_bounded, PfgtConfig};
use crate::random::random_assignment;
use crate::stats::BestResponseStats;
use crate::trace::ConvergenceTrace;
use fta_core::instance::{CenterView, DpAggregate};
use fta_core::{Assignment, CancelToken, CenterId, Instance, SolveBudget, WorkerId};
use fta_vdps::{
    GenControl, GenerationStats, PoolCache, SlotCache, StrategySpace, TaskScope, VdpsConfig,
    WorkerPool,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The assignment algorithm to run per center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Greedy Task Assignment (baseline, no fairness).
    Gta,
    /// Maximal (total) Payoff Task Assignment (baseline, no fairness).
    Mpta(MptaConfig),
    /// Fairness-aware Game-Theoretic approach (Algorithm 2).
    Fgt(FgtConfig),
    /// Priority-aware FGT (future-work extension; see [`mod@crate::pfgt`]).
    Pfgt(PfgtConfig),
    /// Improved Evolutionary Game-Theoretic approach (Algorithm 3).
    Iegt(IegtConfig),
    /// Uniformly random valid assignment (sanity baseline).
    Random {
        /// Seed of the random choices.
        seed: u64,
    },
}

impl Algorithm {
    /// Short display name matching the paper's legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Gta => "GTA",
            Self::Mpta(_) => "MPTA",
            Self::Fgt(_) => "FGT",
            Self::Pfgt(_) => "PFGT",
            Self::Iegt(_) => "IEGT",
            Self::Random { .. } => "RAND",
        }
    }

    /// Returns a copy with all internal seeds offset by `salt`, so each
    /// distribution center's stochastic steps are decorrelated while the
    /// whole run stays deterministic.
    #[must_use]
    pub(crate) fn salted(self, salt: u64) -> Self {
        let mix = |seed: u64| seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self {
            Self::Gta => Self::Gta,
            Self::Mpta(c) => Self::Mpta(MptaConfig {
                seed: mix(c.seed),
                ..c
            }),
            Self::Fgt(c) => Self::Fgt(FgtConfig {
                seed: mix(c.seed),
                ..c
            }),
            Self::Pfgt(c) => Self::Pfgt(PfgtConfig {
                base: FgtConfig {
                    seed: mix(c.base.seed),
                    ..c.base
                },
                ..c
            }),
            Self::Iegt(c) => Self::Iegt(IegtConfig {
                seed: mix(c.seed),
                ..c
            }),
            Self::Random { seed } => Self::Random { seed: mix(seed) },
        }
    }

    /// Clamps every internal round cap to `cap` (the budget's
    /// [`SolveBudget::max_rounds`]); non-iterative variants are unchanged.
    #[must_use]
    fn with_round_cap(self, cap: usize) -> Self {
        match self {
            Self::Mpta(c) => Self::Mpta(MptaConfig {
                max_rounds: c.max_rounds.min(cap),
                ..c
            }),
            Self::Fgt(c) => Self::Fgt(FgtConfig {
                max_rounds: c.max_rounds.min(cap),
                ..c
            }),
            Self::Pfgt(c) => Self::Pfgt(PfgtConfig {
                base: FgtConfig {
                    max_rounds: c.base.max_rounds.min(cap),
                    ..c.base
                },
                ..c
            }),
            Self::Iegt(c) => Self::Iegt(IegtConfig {
                max_rounds: c.max_rounds.min(cap),
                ..c
            }),
            other => other,
        }
    }

    /// The round cap the algorithm will actually run under (`None` for
    /// the non-iterative baselines).
    #[must_use]
    fn round_cap(&self) -> Option<usize> {
        match self {
            Self::Mpta(c) => Some(c.max_rounds),
            Self::Fgt(c) => Some(c.max_rounds),
            Self::Pfgt(c) => Some(c.base.max_rounds),
            Self::Iegt(c) => Some(c.max_rounds),
            Self::Gta | Self::Random { .. } => None,
        }
    }
}

/// Deterministic chaos knob for tests and drills: makes the solve of one
/// center panic, exercising the quarantine/retry path without unsafe
/// tricks or real bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicInjection {
    /// Index of the center whose solve panics.
    pub center: u32,
    /// Panic again on the degraded retry, forcing the center to be
    /// skipped entirely.
    pub also_on_retry: bool,
}

/// Full solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveConfig {
    /// VDPS generation parameters (ε pruning, length cap).
    pub vdps: VdpsConfig,
    /// The assignment algorithm.
    pub algorithm: Algorithm,
    /// Run distribution centers on separate threads.
    pub parallel: bool,
    /// Resource caps; [`SolveBudget::UNLIMITED`] (the default) makes the
    /// solve bit-identical to an unbudgeted build.
    pub budget: SolveBudget,
    /// Test-only fault injection; `None` (the default) in production.
    pub inject_panic: Option<PanicInjection>,
}

impl SolveConfig {
    /// Convenience constructor with default VDPS settings, sequential
    /// execution, and no budget or fault injection.
    #[must_use]
    pub fn new(algorithm: Algorithm) -> Self {
        Self {
            vdps: VdpsConfig::default(),
            algorithm,
            parallel: false,
            budget: SolveBudget::UNLIMITED,
            inject_panic: None,
        }
    }

    /// Returns a copy with the given budget.
    #[must_use]
    pub fn with_budget(self, budget: SolveBudget) -> Self {
        Self { budget, ..self }
    }
}

/// The result of solving one instance.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The merged assignment over all centers.
    pub assignment: Assignment,
    /// Total CPU time spent generating VDPSs (summed over centers).
    pub vdps_time: Duration,
    /// Total CPU time spent in the assignment algorithm proper.
    pub assign_time: Duration,
    /// Aggregated VDPS generation statistics.
    pub gen_stats: GenerationStats,
    /// Aggregated best-response work counters over all centers and
    /// restarts (all-zero for the non-iterative baselines).
    pub br_stats: BestResponseStats,
    /// Merged convergence trace (FGT/IEGT only; empty for the baselines).
    pub trace: ConvergenceTrace,
    /// Everything that went less than perfectly: budget-driven
    /// degradations and quarantined panics, in center order. Empty when
    /// the budget is unlimited and nothing panicked.
    pub degradation: DegradationReport,
    /// The degradation-ladder rung each center was solved at, in center
    /// order. All [`LadderRung::Full`] on a clean run.
    pub rungs: Vec<(CenterId, LadderRung)>,
    /// Per-center causal attribution for the solve ledger, in center
    /// order: rung, triggering budget axis, resolve path, and work
    /// counters.
    pub centers: Vec<CenterSolveSummary>,
}

/// Per-center causal attribution surfaced on [`SolveOutcome`] for the
/// solve ledger: which rung the center landed on, which budget axis
/// drove it there, how the incremental solver resolved it, and how much
/// work it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CenterSolveSummary {
    /// The distribution center.
    pub center: CenterId,
    /// Degradation-ladder rung the center was solved at.
    pub rung: LadderRung,
    /// The budget axis (or fault class) that drove the degradation;
    /// `None` at [`LadderRung::Full`]. When several events fired, the
    /// most severe wins (`panic` > `wall_ms` > `max_rounds` >
    /// `max_states`).
    pub budget_axis: Option<&'static str>,
    /// Resolve path taken: `"cold"` for a from-scratch solve, patched
    /// to `"clean"`/`"warm"` by the incremental
    /// [`crate::resolve::Solver`].
    pub resolve_path: &'static str,
    /// The shard this center was solved on, patched in by the sharded
    /// solver (see [`crate::shard`]); `None` on unsharded solves.
    pub shard: Option<u32>,
    /// Best-response rounds run for this center (all restarts).
    pub br_rounds: u64,
    /// Candidate strategies evaluated for this center.
    pub br_evaluations: u64,
    /// Strategy switches performed for this center.
    pub br_switches: u64,
    /// VDPSs in the center's final pool.
    pub vdps_count: u64,
    /// DP states materialised during generation.
    pub vdps_states: u64,
    /// Layer-boundary truncations during generation.
    pub vdps_truncations: u64,
    /// Nanoseconds spent generating the pool.
    pub vdps_nanos: u64,
    /// Nanoseconds spent in the assignment algorithm.
    pub assign_nanos: u64,
    /// Human-readable degradation events, in firing order.
    pub events: Vec<String>,
}

/// Most severe budget axis among a center's degradation events.
fn dominant_axis(events: &[DegradationEvent]) -> Option<&'static str> {
    let severity = |axis: &str| match axis {
        "panic" => 3,
        "wall_ms" => 2,
        "max_rounds" => 1,
        _ => 0,
    };
    events
        .iter()
        .map(DegradationEvent::budget_axis)
        .max_by_key(|a| severity(a))
}

impl SolveOutcome {
    /// Total wall CPU time (VDPS generation + assignment).
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.vdps_time + self.assign_time
    }

    /// Whether any center was solved below [`LadderRung::Full`] or any
    /// degradation event fired.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.degradation.is_empty() || self.rungs.iter().any(|&(_, r)| r.is_degraded())
    }
}

/// Per-center result, merged by [`solve`].
#[derive(Clone)]
pub(crate) struct CenterOutcome {
    pub(crate) center: CenterId,
    pub(crate) assignment: Assignment,
    pub(crate) vdps_time: Duration,
    pub(crate) assign_time: Duration,
    pub(crate) gen_stats: GenerationStats,
    pub(crate) trace: ConvergenceTrace,
    pub(crate) report: DegradationReport,
    pub(crate) rung: LadderRung,
}

/// Everything an incremental [`crate::resolve::Solver`] needs to remember
/// about a fully solved center: the VDPS pool snapshot for delta updates
/// and the equilibrium profile (as delivery-point masks, which survive the
/// per-round renumbering of pool indices) for the warm start.
#[derive(Clone)]
pub(crate) struct CenterCapture {
    /// Bitwise snapshot of the generated pool and its inputs.
    pub(crate) pool_cache: PoolCache,
    /// Per-worker (validity, payoff) slot data of the solved space, for
    /// provenance-guided revalidation skips on the next delta update.
    pub(crate) slots: SlotCache,
    /// Selected strategy per local worker, as the strategy's dp mask.
    pub(crate) selections: Vec<Option<u128>>,
    /// The center's workers in local order.
    pub(crate) workers: Vec<WorkerId>,
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fires the configured [`PanicInjection`] when it targets `center`.
fn maybe_inject(config: &SolveConfig, center: CenterId, retrying: bool) {
    if let Some(inj) = config.inject_panic {
        if inj.center == center.0 && (!retrying || inj.also_on_retry) {
            panic!(
                "injected center fault (center {}, retry {retrying})",
                inj.center
            );
        }
    }
}

/// Panic-isolating wrapper around [`solve_center_attempt`]: a panicking
/// center is quarantined (reported, retried once at
/// [`LadderRung::ImmediateSingleStop`]) instead of poisoning the whole
/// round; a second panic skips the center with an empty assignment.
pub(crate) fn solve_center(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: CenterView,
    config: &SolveConfig,
    scope: Option<&TaskScope<'_>>,
    cancel: Option<&CancelToken>,
    want_capture: bool,
) -> (CenterOutcome, Option<CenterCapture>) {
    let center = view.center;
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        solve_center_attempt(
            instance,
            aggregates,
            view.clone(),
            config,
            scope,
            cancel,
            false,
            want_capture,
        )
    }));
    let payload = match attempt {
        Ok(outcome) => return outcome,
        Err(payload) => payload,
    };
    fta_obs::counter("pool.panics_caught", 1);
    // The panic is the anomaly: snapshot the flight ring while the last
    // moments before it are still in the buffers.
    let _ = fta_obs::ring::anomaly_dump("panic-quarantined", Some(center.0));
    let mut report = DegradationReport::default();
    report.push(DegradationEvent::PanicQuarantined {
        center,
        message: panic_message(payload.as_ref()),
    });
    let retry = catch_unwind(AssertUnwindSafe(|| {
        solve_center_attempt(
            instance,
            aggregates,
            view,
            config,
            scope,
            cancel,
            true,
            want_capture,
        )
    }));
    match retry {
        Ok((mut outcome, capture)) => {
            report.merge(std::mem::take(&mut outcome.report));
            outcome.report = report;
            (outcome, capture)
        }
        Err(payload) => {
            fta_obs::counter("pool.panics_caught", 1);
            let _ = fta_obs::ring::anomaly_dump("center-skipped", Some(center.0));
            report.push(DegradationEvent::CenterSkipped {
                center,
                message: panic_message(payload.as_ref()),
            });
            (
                CenterOutcome {
                    center,
                    assignment: Assignment::new(),
                    vdps_time: Duration::ZERO,
                    assign_time: Duration::ZERO,
                    gen_stats: GenerationStats::default(),
                    trace: ConvergenceTrace::default(),
                    report,
                    rung: LadderRung::Skipped,
                },
                None,
            )
        }
    }
}

/// One attempt at solving a center, descending the degradation ladder as
/// the budget demands. `retrying = true` (the post-panic path) forces the
/// bottom useful rung: single-delivery-point routes assigned greedily.
#[allow(clippy::too_many_arguments)]
fn solve_center_attempt(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: CenterView,
    config: &SolveConfig,
    scope: Option<&TaskScope<'_>>,
    cancel: Option<&CancelToken>,
    retrying: bool,
    want_capture: bool,
) -> (CenterOutcome, Option<CenterCapture>) {
    let center = view.center;
    maybe_inject(config, center, retrying);

    let mut report = DegradationReport::default();
    let mut rung = LadderRung::Full;

    // Bottom rung pre-check: deadline already passed before generation
    // (or this is the post-panic retry) — fall straight to greedy
    // single-stop routes, the cheapest formulation that still serves
    // every worker one delivery point.
    let immediate = retrying || cancel.is_some_and(CancelToken::is_cancelled);
    if immediate {
        rung = LadderRung::ImmediateSingleStop;
        report.push(DegradationEvent::FellBackToImmediate { center });
    }

    // The generator caps subsets at `min(config cap, workers' max maxDP)`:
    // larger sets can never be assigned.
    let center_max_dp = view
        .workers
        .iter()
        .map(|&w| instance.workers[w.index()].max_dp)
        .max()
        .unwrap_or(0);
    let configured_len = if immediate { 1 } else { config.vdps.max_len };
    let vdps_cfg = VdpsConfig {
        max_len: configured_len.min(center_max_dp),
        ..config.vdps
    };

    let center_u32 = center.index() as u32;
    let _center_span = fta_obs::span_center("solver.center", center_u32);
    let t0 = Instant::now();
    let control = GenControl {
        token: cancel,
        max_states: config.budget.max_states,
    };
    let space =
        StrategySpace::build_budgeted(instance, aggregates, view, &vdps_cfg, scope, control);
    let vdps_time = t0.elapsed();
    if space.gen_stats.truncations > 0 {
        rung = rung.max(LadderRung::DegradedVdps);
        report.push(DegradationEvent::VdpsTruncated { center });
    }

    let mut algorithm = config.algorithm.salted(u64::from(center.0));
    if let Some(cap) = config.budget.max_rounds {
        algorithm = algorithm.with_round_cap(cap);
    }
    if immediate {
        // Single-stop rung: one greedy pass, no equilibrium loop.
        algorithm = Algorithm::Gta;
    } else if cancel.is_some_and(CancelToken::is_cancelled)
        && matches!(
            algorithm,
            Algorithm::Fgt(_) | Algorithm::Pfgt(_) | Algorithm::Iegt(_)
        )
    {
        // The deadline passed during generation: there is no time left
        // for an equilibrium loop, but a greedy pass over the (possibly
        // truncated) pool is nearly free and strictly better than
        // returning nothing.
        algorithm = Algorithm::Gta;
        rung = rung.max(LadderRung::Gta);
        report.push(DegradationEvent::FellBackToGta { center });
    }

    let effective_cap = algorithm.round_cap();
    let t1 = Instant::now();
    let assign_span = fta_obs::span_center("solver.assign", center_u32);
    let mut ctx = GameContext::new(&space);
    let trace = match algorithm {
        Algorithm::Gta => {
            gta(&mut ctx);
            ConvergenceTrace::default()
        }
        Algorithm::Mpta(cfg) => {
            mpta(&mut ctx, &cfg);
            ConvergenceTrace::default()
        }
        Algorithm::Fgt(cfg) => fgt_bounded(&mut ctx, &cfg, cancel),
        Algorithm::Pfgt(cfg) => pfgt_bounded(&mut ctx, &cfg, cancel),
        Algorithm::Iegt(cfg) => iegt_bounded(&mut ctx, &cfg, cancel),
        Algorithm::Random { seed } => {
            random_assignment(&mut ctx, seed);
            ConvergenceTrace::default()
        }
    };
    drop(assign_span);
    let assign_time = t1.elapsed();

    // Budget-driven early exit from the equilibrium loop: either the
    // cancel token tripped mid-loop, or the budget's round cap bound the
    // run before convergence.
    let capped_by_budget = config.budget.max_rounds.is_some()
        && !trace.converged
        && effective_cap
            .zip(trace.last())
            .is_some_and(|(cap, last)| last.round >= cap);
    if trace.cancelled || capped_by_budget {
        report.push(DegradationEvent::RoundsCapped { center });
    }

    // Round events are replayed from the kept trace (the winning restart)
    // rather than emitted inside the best-response loops: the hot path
    // stays counter-free and the telemetry matches what the trace reports.
    if fta_obs::enabled() {
        let algo_name = algorithm.name();
        for r in &trace.rounds {
            fta_obs::round_event(
                algo_name,
                center_u32,
                r.round.min(u32::MAX as usize) as u32,
                r.moves as u64,
                r.payoff_difference,
                r.average_payoff,
                r.potential,
            );
        }
    }

    // A capture is only useful when the center was solved at the full
    // rung from an untruncated pool: anything degraded must be re-solved
    // cold next round anyway.
    let capture = if want_capture && rung == LadderRung::Full && !trace.cancelled {
        let selections: Vec<Option<u128>> = (0..ctx.n_workers())
            .map(|l| ctx.selection(l).map(|i| space.pool[i as usize].mask))
            .collect();
        Some(CenterCapture {
            pool_cache: PoolCache::capture(
                instance,
                aggregates,
                &space.view,
                &vdps_cfg,
                &space.pool,
                &space.gen_stats,
            ),
            slots: SlotCache::capture(&space),
            selections,
            workers: space.view.workers.clone(),
        })
    } else {
        None
    };

    let outcome = CenterOutcome {
        center,
        assignment: ctx.to_assignment(),
        vdps_time,
        assign_time,
        gen_stats: space.gen_stats,
        trace,
        report,
        rung,
    };
    (outcome, capture)
}

/// Solves a whole instance with the configured algorithm.
///
/// Deterministic regardless of `config.parallel`: per-center randomness is
/// salted by the center id, and results are merged in center order.
///
/// With `parallel = true` this runs on a [`WorkerPool`] bounded by
/// `available_parallelism()`; pass a pool explicitly via
/// [`solve_with_pool`] to control the thread count.
#[must_use]
pub fn solve(instance: &Instance, config: &SolveConfig) -> SolveOutcome {
    let pool = if config.parallel {
        WorkerPool::new()
    } else {
        WorkerPool::sequential()
    };
    solve_with_pool(instance, config, &pool)
}

/// Routes fta-core budget exhaustion into a flight-recorder dump. The
/// observer fires on the first deadline latch of each token; the dump
/// itself is rate-limited process-wide by `fta_obs::ring`.
pub(crate) fn install_exhaustion_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        fta_core::set_exhaustion_observer(Box::new(|_axis| {
            let _ = fta_obs::ring::anomaly_dump("budget-exhausted", None);
        }));
    });
}

/// Like [`solve`], on a caller-provided [`WorkerPool`].
///
/// Every piece of parallelism in the run — per-center jobs, intra-center
/// DP layer expansion, per-worker validation — shares `pool`, so the
/// number of live OS threads never exceeds `pool.threads()` regardless of
/// how many centers the instance has. A sequential pool
/// ([`WorkerPool::sequential`]) runs everything inline on the caller's
/// thread. The result is identical for every pool size.
#[must_use]
pub fn solve_with_pool(
    instance: &Instance,
    config: &SolveConfig,
    pool: &WorkerPool,
) -> SolveOutcome {
    let _solve_span = fta_obs::span("solver.solve");
    install_exhaustion_hook();
    // One cancellation token per solve; `None` when the budget is
    // unlimited so the hot paths skip even the atomic load.
    let token = if config.budget.is_unlimited() {
        None
    } else {
        Some(config.budget.token())
    };
    let cancel = token.as_ref();
    let views = instance.center_views();
    // Computed once per instance, shared by every center job (previously
    // recomputed inside each center's StrategySpace::build).
    let aggregates = instance.dp_aggregates();
    let outcomes: Vec<CenterOutcome> = pool.scope(|ts| {
        let aggregates = &aggregates;
        let jobs: Vec<_> = views
            .into_iter()
            .map(|view| {
                move |ts: &TaskScope<'_>| {
                    solve_center(instance, aggregates, view, config, Some(ts), cancel, false).0
                }
            })
            .collect();
        ts.map(jobs)
    });
    let budget_cancelled = token.as_ref().is_some_and(CancelToken::is_cancelled);
    merge_outcomes(outcomes, budget_cancelled)
}

/// Merges per-center outcomes (in the order given — center order) into one
/// [`SolveOutcome`] and emits the aggregated telemetry counters. Shared by
/// [`solve_with_pool`] and the incremental [`crate::resolve::Solver`].
pub(crate) fn merge_outcomes(outcomes: Vec<CenterOutcome>, budget_cancelled: bool) -> SolveOutcome {
    let mut assignment = Assignment::new();
    let mut vdps_time = Duration::ZERO;
    let mut assign_time = Duration::ZERO;
    let mut gen_stats = GenerationStats::default();
    let mut br_stats = BestResponseStats::default();
    let mut trace: Option<ConvergenceTrace> = None;
    let mut degradation = DegradationReport::default();
    let mut rungs = Vec::with_capacity(outcomes.len());
    let mut centers = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        assignment.merge(outcome.assignment);
        vdps_time += outcome.vdps_time;
        assign_time += outcome.assign_time;
        gen_stats.merge(&outcome.gen_stats);
        br_stats.merge(&outcome.trace.stats);
        centers.push(CenterSolveSummary {
            center: outcome.center,
            rung: outcome.rung,
            budget_axis: dominant_axis(&outcome.report.events),
            resolve_path: "cold",
            shard: None,
            br_rounds: outcome.trace.stats.rounds,
            br_evaluations: outcome.trace.stats.candidate_evaluations,
            br_switches: outcome.trace.stats.switches,
            vdps_count: outcome.gen_stats.vdps_count as u64,
            vdps_states: outcome.gen_stats.states as u64,
            vdps_truncations: outcome.gen_stats.truncations as u64,
            vdps_nanos: outcome.vdps_time.as_nanos() as u64,
            assign_nanos: outcome.assign_time.as_nanos() as u64,
            events: outcome
                .report
                .events
                .iter()
                .map(|e| e.to_string())
                .collect(),
        });
        degradation.merge(outcome.report);
        rungs.push((outcome.center, outcome.rung));
        if !outcome.trace.is_empty() {
            match &mut trace {
                Some(t) => t.merge_parallel(&outcome.trace),
                None => trace = Some(outcome.trace),
            }
        }
    }
    // A rung below Full is itself an anomaly: snapshot the flight ring
    // (rate-limited, so a mass degradation yields a handful of dumps).
    if let Some(&(center, _)) = rungs.iter().find(|&&(_, r)| r.is_degraded()) {
        let _ = fta_obs::ring::anomaly_dump("degraded-rung", Some(center.0));
    }
    if fta_obs::enabled() {
        // Best-response work counters, aggregated over every center and
        // restart. `counter` drops zero deltas, so baselines emit nothing.
        fta_obs::counter("br.rounds", br_stats.rounds);
        fta_obs::counter("br.candidate_evaluations", br_stats.candidate_evaluations);
        fta_obs::counter("br.switches", br_stats.switches);
        fta_obs::counter("br.null_adoptions", br_stats.null_adoptions);
        fta_obs::counter("br.evaluator_builds", br_stats.evaluator_builds);
        fta_obs::counter("br.evaluator_updates", br_stats.evaluator_updates);
        fta_obs::counter("br.candidates_scanned", br_stats.candidates_scanned);
        fta_obs::counter("br.early_exits", br_stats.early_exits);
        fta_obs::counter("br.index_updates", br_stats.index_updates);
        fta_obs::counter("br.fastpath_rounds", br_stats.fastpath_rounds);
        // Degradation counters: centers solved below the full rung, and
        // whether the budget actually bound anywhere.
        let degraded = rungs.iter().filter(|&&(_, r)| r.is_degraded()).count();
        fta_obs::counter("solve.degraded", degraded as u64);
        let exhausted = degradation.budget_exhausted() || budget_cancelled;
        fta_obs::counter("budget.exhausted", u64::from(exhausted));
    }
    SolveOutcome {
        assignment,
        vdps_time,
        assign_time,
        gen_stats,
        br_stats,
        trace: trace.unwrap_or_default(),
        degradation,
        rungs,
        centers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_data::{generate_syn, SynConfig};

    fn multi_center_instance() -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 3,
                n_workers: 24,
                n_tasks: 300,
                n_delivery_points: 45,
                extent: 3.0,
                ..SynConfig::bench_scale()
            },
            77,
        )
    }

    fn all_algorithms() -> Vec<Algorithm> {
        vec![
            Algorithm::Gta,
            Algorithm::Mpta(MptaConfig::default()),
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(IegtConfig::default()),
            Algorithm::Random { seed: 5 },
        ]
    }

    #[test]
    fn every_algorithm_produces_valid_assignments() {
        let inst = multi_center_instance();
        for algo in all_algorithms() {
            let outcome = solve(&inst, &SolveConfig::new(algo));
            assert!(
                outcome.assignment.validate(&inst).is_ok(),
                "{} produced an invalid assignment",
                algo.name()
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let inst = multi_center_instance();
        for algo in all_algorithms() {
            let seq = solve(&inst, &SolveConfig::new(algo));
            let par = solve(
                &inst,
                &SolveConfig {
                    parallel: true,
                    ..SolveConfig::new(algo)
                },
            );
            assert_eq!(
                seq.assignment,
                par.assignment,
                "{} differs between sequential and parallel",
                algo.name()
            );
        }
    }

    #[test]
    fn solve_with_pool_is_thread_count_invariant() {
        // The container may expose a single core; `with_threads` still
        // spins up real workers, so this exercises pooled center jobs,
        // pooled DP layer expansion, and pooled validation.
        let inst = multi_center_instance();
        for algo in all_algorithms() {
            let config = SolveConfig::new(algo);
            let seq = solve_with_pool(&inst, &config, &WorkerPool::sequential());
            for threads in [2, 4, 7] {
                let pooled = solve_with_pool(&inst, &config, &WorkerPool::with_threads(threads));
                assert_eq!(
                    seq.assignment,
                    pooled.assignment,
                    "{} differs between 1 and {threads} threads",
                    algo.name()
                );
                assert_eq!(
                    seq.gen_stats.work_counters(),
                    pooled.gen_stats.work_counters(),
                    "{} generation work differs between 1 and {threads} threads",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn pooled_solve_reports_parallelism_counters() {
        let inst = multi_center_instance();
        let outcome = solve_with_pool(
            &inst,
            &SolveConfig::new(Algorithm::Gta),
            &WorkerPool::with_threads(4),
        );
        // Chunked expansion only kicks in past the frontier-size threshold;
        // at minimum the sequential fallback counts one chunk per layer.
        assert!(outcome.gen_stats.chunks > 0);
    }

    #[test]
    fn game_algorithms_report_traces() {
        let inst = multi_center_instance();
        let fgt_out = solve(
            &inst,
            &SolveConfig::new(Algorithm::Fgt(FgtConfig::default())),
        );
        assert!(!fgt_out.trace.is_empty());
        assert!(fgt_out.trace.converged);

        let gta_out = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        assert!(gta_out.trace.is_empty());
    }

    #[test]
    fn br_stats_surface_for_game_algorithms_only() {
        let inst = multi_center_instance();
        let fgt_out = solve(
            &inst,
            &SolveConfig::new(Algorithm::Fgt(FgtConfig::default())),
        );
        assert!(!fgt_out.br_stats.is_empty());
        assert!(fgt_out.br_stats.rounds > 0);
        assert!(fgt_out.br_stats.candidate_evaluations > 0);
        assert_eq!(fgt_out.br_stats, fgt_out.trace.stats);

        let iegt_out = solve(
            &inst,
            &SolveConfig::new(Algorithm::Iegt(IegtConfig::default())),
        );
        assert!(iegt_out.br_stats.rounds > 0);

        let gta_out = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        assert!(gta_out.br_stats.is_empty());
    }

    #[test]
    fn gen_stats_are_aggregated_across_centers() {
        let inst = multi_center_instance();
        let outcome = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        assert!(outcome.gen_stats.vdps_count > 0);
        assert!(outcome.gen_stats.states >= outcome.gen_stats.vdps_count);
        assert!(outcome.total_time() >= outcome.vdps_time);
    }

    #[test]
    fn algorithm_names_match_paper_legends() {
        assert_eq!(Algorithm::Gta.name(), "GTA");
        assert_eq!(Algorithm::Mpta(MptaConfig::default()).name(), "MPTA");
        assert_eq!(Algorithm::Fgt(FgtConfig::default()).name(), "FGT");
        assert_eq!(Algorithm::Iegt(IegtConfig::default()).name(), "IEGT");
    }

    #[test]
    fn taskless_instance_yields_empty_assignment() {
        let mut inst = multi_center_instance();
        inst.tasks.clear();
        for algo in all_algorithms() {
            let outcome = solve(&inst, &SolveConfig::new(algo));
            assert_eq!(
                outcome.assignment.assigned_workers(),
                0,
                "{} assigned workers with no tasks",
                algo.name()
            );
            assert_eq!(outcome.gen_stats.vdps_count, 0);
        }
    }

    #[test]
    fn workerless_center_is_skipped_gracefully() {
        let mut inst = multi_center_instance();
        // Move every worker to center 0; centers 1 and 2 keep their tasks
        // but have nobody to serve them.
        for w in &mut inst.workers {
            w.center = fta_core::CenterId(0);
        }
        let outcome = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        assert!(outcome.assignment.validate(&inst).is_ok());
        for (_, route) in outcome.assignment.iter() {
            assert_eq!(route.center(), fta_core::CenterId(0));
        }
    }

    #[test]
    fn per_center_seeds_are_decorrelated() {
        // Two centers with identical relative geometry must not replay the
        // same random choices: the salted seeds differ per center. We can't
        // easily build identical centers, so assert the salting itself.
        let a = Algorithm::Fgt(FgtConfig::default()).salted(0);
        let b = Algorithm::Fgt(FgtConfig::default()).salted(1);
        match (a, b) {
            (Algorithm::Fgt(ca), Algorithm::Fgt(cb)) => assert_ne!(ca.seed, cb.seed),
            _ => unreachable!(),
        }
    }

    #[test]
    fn max_len_is_clamped_to_center_max_dp() {
        // maxDP = 2 workers: no VDPS of size 3 may be generated even though
        // the config asks for 3.
        let mut inst = multi_center_instance();
        for w in &mut inst.workers {
            w.max_dp = 2;
        }
        let outcome = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        for (_, route) in outcome.assignment.iter() {
            assert!(route.len() <= 2);
        }
    }

    #[test]
    fn unbudgeted_solve_reports_no_degradation() {
        let inst = multi_center_instance();
        for algo in all_algorithms() {
            let outcome = solve(&inst, &SolveConfig::new(algo));
            assert!(!outcome.is_degraded(), "{} degraded", algo.name());
            assert!(outcome.degradation.is_empty());
            assert_eq!(outcome.rungs.len(), inst.centers.len());
            assert!(outcome.rungs.iter().all(|&(_, r)| r == LadderRung::Full));
            // An explicit unlimited budget is the same as no budget.
            let explicit = solve(
                &inst,
                &SolveConfig::new(algo).with_budget(SolveBudget::UNLIMITED),
            );
            assert_eq!(outcome.assignment, explicit.assignment);
        }
    }

    #[test]
    fn expired_deadline_degrades_to_immediate_single_stop() {
        // A 0 ms wall budget is cancelled before any center starts: every
        // center descends to greedy single-stop routes, yet the partial
        // assignment is still valid.
        let inst = multi_center_instance();
        let cfg = SolveConfig::new(Algorithm::Fgt(FgtConfig::default()))
            .with_budget(SolveBudget::wall_ms(0));
        let outcome = solve(&inst, &cfg);
        assert!(outcome.assignment.validate(&inst).is_ok());
        assert!(outcome.is_degraded());
        assert!(outcome
            .rungs
            .iter()
            .all(|&(_, r)| r == LadderRung::ImmediateSingleStop));
        assert_eq!(
            outcome
                .degradation
                .events
                .iter()
                .filter(|e| e.kind() == "fell_back_to_immediate")
                .count(),
            inst.centers.len()
        );
        // Single-stop rung: every assigned route has exactly one stop.
        for (_, route) in outcome.assignment.iter() {
            assert_eq!(route.len(), 1);
        }
    }

    #[test]
    fn state_cap_degrades_vdps_and_stays_deterministic() {
        // A tiny deterministic state cap truncates generation at a layer
        // boundary; the configured algorithm still runs and the result is
        // reproducible (no wall-clock in the loop).
        let inst = multi_center_instance();
        let cfg = SolveConfig::new(Algorithm::Fgt(FgtConfig::default())).with_budget(SolveBudget {
            max_states: Some(8),
            ..SolveBudget::UNLIMITED
        });
        let a = solve(&inst, &cfg);
        let b = solve(&inst, &cfg);
        assert_eq!(
            a.assignment, b.assignment,
            "state cap must be deterministic"
        );
        assert!(a.assignment.validate(&inst).is_ok());
        assert!(a
            .degradation
            .events
            .iter()
            .any(|e| e.kind() == "vdps_truncated"));
        assert!(a.rungs.iter().any(|&(_, r)| r == LadderRung::DegradedVdps));
        // Truncation caps pool size but the solve still serves workers.
        assert!(a.gen_stats.vdps_count > 0);
    }

    #[test]
    fn round_cap_budget_stops_the_equilibrium_loop() {
        let inst = multi_center_instance();
        let cfg =
            SolveConfig::new(Algorithm::Iegt(IegtConfig::default())).with_budget(SolveBudget {
                max_rounds: Some(1),
                ..SolveBudget::UNLIMITED
            });
        let outcome = solve(&inst, &cfg);
        assert!(outcome.assignment.validate(&inst).is_ok());
        // At most the initialisation round plus one evolution round.
        assert!(outcome.trace.len() <= 2, "rounds: {}", outcome.trace.len());
        // Determinism: the cap is not wall-clock driven.
        let again = solve(&inst, &cfg);
        assert_eq!(outcome.assignment, again.assignment);
    }

    #[test]
    fn injected_panic_quarantines_one_center_and_keeps_the_rest() {
        let inst = multi_center_instance();
        let clean = solve(
            &inst,
            &SolveConfig::new(Algorithm::Fgt(FgtConfig::default())),
        );
        let faulty = solve(
            &inst,
            &SolveConfig {
                inject_panic: Some(PanicInjection {
                    center: 1,
                    also_on_retry: false,
                }),
                ..SolveConfig::new(Algorithm::Fgt(FgtConfig::default()))
            },
        );
        assert!(faulty.assignment.validate(&inst).is_ok());
        // Healthy centers are bit-identical to the clean run.
        for (worker, route) in clean.assignment.iter() {
            if route.center() != CenterId(1) {
                assert_eq!(
                    faulty.assignment.route_of(worker),
                    Some(route),
                    "healthy-center route changed for {worker}"
                );
            }
        }
        // The poisoned center was retried at the bottom rung: single stops.
        for (_, route) in faulty.assignment.iter() {
            if route.center() == CenterId(1) {
                assert_eq!(route.len(), 1);
            }
        }
        assert_eq!(faulty.degradation.panics_caught(), 1);
        assert!(faulty
            .degradation
            .events
            .iter()
            .any(|e| e.kind() == "panic_quarantined" && e.center() == CenterId(1)));
        let rung_of = |c: u32| {
            faulty
                .rungs
                .iter()
                .find(|&&(id, _)| id == CenterId(c))
                .map(|&(_, r)| r)
                .expect("rung recorded")
        };
        assert_eq!(rung_of(0), LadderRung::Full);
        assert_eq!(rung_of(1), LadderRung::ImmediateSingleStop);
        assert_eq!(rung_of(2), LadderRung::Full);
    }

    #[test]
    fn double_panic_skips_the_center_without_killing_the_solve() {
        let inst = multi_center_instance();
        let outcome = solve(
            &inst,
            &SolveConfig {
                inject_panic: Some(PanicInjection {
                    center: 1,
                    also_on_retry: true,
                }),
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        assert!(outcome.assignment.validate(&inst).is_ok());
        // Nobody from the skipped center is assigned.
        for (_, route) in outcome.assignment.iter() {
            assert_ne!(route.center(), CenterId(1));
        }
        // But the healthy centers are served.
        assert!(outcome.assignment.assigned_workers() > 0);
        assert_eq!(outcome.degradation.panics_caught(), 2);
        assert!(outcome
            .degradation
            .events
            .iter()
            .any(|e| e.kind() == "center_skipped"));
        assert!(outcome
            .rungs
            .iter()
            .any(|&(id, r)| id == CenterId(1) && r == LadderRung::Skipped));
    }

    #[test]
    fn panic_isolation_works_under_a_threaded_pool_too() {
        let inst = multi_center_instance();
        let config = SolveConfig {
            inject_panic: Some(PanicInjection {
                center: 0,
                also_on_retry: false,
            }),
            ..SolveConfig::new(Algorithm::Gta)
        };
        let seq = solve_with_pool(&inst, &config, &WorkerPool::sequential());
        let par = solve_with_pool(&inst, &config, &WorkerPool::with_threads(4));
        assert_eq!(seq.assignment, par.assignment);
        assert_eq!(seq.degradation, par.degradation);
        assert_eq!(seq.rungs, par.rungs);
    }
}

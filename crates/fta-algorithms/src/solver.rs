//! Whole-instance orchestration: VDPS generation + per-center assignment.
//!
//! Task assignment across distribution centers is independent, so the
//! solver decomposes an [`Instance`] into [`CenterView`]s, builds each
//! center's [`StrategySpace`], runs the selected algorithm per center,
//! and merges the per-center assignments and convergence traces.
//!
//! With `parallel = true` all per-center jobs are submitted to one shared
//! [`WorkerPool`] bounded by `available_parallelism()` — never one OS
//! thread per center — and the *same* pool also serves intra-center DP
//! layer expansion and per-worker validation inside `fta-vdps`, so a
//! single giant center no longer serialises a run and a thousand-center
//! instance no longer oversubscribes the machine. Results are merged in
//! center order and per-center seeds are salted by center id, so the
//! outcome is deterministic regardless of thread count.

use crate::context::GameContext;
use crate::fgt::{fgt, FgtConfig};
use crate::gta::gta;
use crate::iegt::{iegt, IegtConfig};
use crate::mpta::{mpta, MptaConfig};
use crate::pfgt::{pfgt, PfgtConfig};
use crate::random::random_assignment;
use crate::stats::BestResponseStats;
use crate::trace::ConvergenceTrace;
use fta_core::instance::{CenterView, DpAggregate};
use fta_core::{Assignment, Instance};
use fta_vdps::{GenerationStats, StrategySpace, TaskScope, VdpsConfig, WorkerPool};
use std::time::{Duration, Instant};

/// The assignment algorithm to run per center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Greedy Task Assignment (baseline, no fairness).
    Gta,
    /// Maximal (total) Payoff Task Assignment (baseline, no fairness).
    Mpta(MptaConfig),
    /// Fairness-aware Game-Theoretic approach (Algorithm 2).
    Fgt(FgtConfig),
    /// Priority-aware FGT (future-work extension; see [`mod@crate::pfgt`]).
    Pfgt(PfgtConfig),
    /// Improved Evolutionary Game-Theoretic approach (Algorithm 3).
    Iegt(IegtConfig),
    /// Uniformly random valid assignment (sanity baseline).
    Random {
        /// Seed of the random choices.
        seed: u64,
    },
}

impl Algorithm {
    /// Short display name matching the paper's legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Gta => "GTA",
            Self::Mpta(_) => "MPTA",
            Self::Fgt(_) => "FGT",
            Self::Pfgt(_) => "PFGT",
            Self::Iegt(_) => "IEGT",
            Self::Random { .. } => "RAND",
        }
    }

    /// Returns a copy with all internal seeds offset by `salt`, so each
    /// distribution center's stochastic steps are decorrelated while the
    /// whole run stays deterministic.
    #[must_use]
    fn salted(self, salt: u64) -> Self {
        let mix = |seed: u64| seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self {
            Self::Gta => Self::Gta,
            Self::Mpta(c) => Self::Mpta(MptaConfig {
                seed: mix(c.seed),
                ..c
            }),
            Self::Fgt(c) => Self::Fgt(FgtConfig {
                seed: mix(c.seed),
                ..c
            }),
            Self::Pfgt(c) => Self::Pfgt(PfgtConfig {
                base: FgtConfig {
                    seed: mix(c.base.seed),
                    ..c.base
                },
                ..c
            }),
            Self::Iegt(c) => Self::Iegt(IegtConfig {
                seed: mix(c.seed),
                ..c
            }),
            Self::Random { seed } => Self::Random { seed: mix(seed) },
        }
    }
}

/// Full solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveConfig {
    /// VDPS generation parameters (ε pruning, length cap).
    pub vdps: VdpsConfig,
    /// The assignment algorithm.
    pub algorithm: Algorithm,
    /// Run distribution centers on separate threads.
    pub parallel: bool,
}

impl SolveConfig {
    /// Convenience constructor with default VDPS settings and sequential
    /// execution.
    #[must_use]
    pub fn new(algorithm: Algorithm) -> Self {
        Self {
            vdps: VdpsConfig::default(),
            algorithm,
            parallel: false,
        }
    }
}

/// The result of solving one instance.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The merged assignment over all centers.
    pub assignment: Assignment,
    /// Total CPU time spent generating VDPSs (summed over centers).
    pub vdps_time: Duration,
    /// Total CPU time spent in the assignment algorithm proper.
    pub assign_time: Duration,
    /// Aggregated VDPS generation statistics.
    pub gen_stats: GenerationStats,
    /// Aggregated best-response work counters over all centers and
    /// restarts (all-zero for the non-iterative baselines).
    pub br_stats: BestResponseStats,
    /// Merged convergence trace (FGT/IEGT only; empty for the baselines).
    pub trace: ConvergenceTrace,
}

impl SolveOutcome {
    /// Total wall CPU time (VDPS generation + assignment).
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.vdps_time + self.assign_time
    }
}

/// Per-center result, merged by [`solve`].
struct CenterOutcome {
    assignment: Assignment,
    vdps_time: Duration,
    assign_time: Duration,
    gen_stats: GenerationStats,
    trace: ConvergenceTrace,
}

fn solve_center(
    instance: &Instance,
    aggregates: &[DpAggregate],
    view: CenterView,
    config: &SolveConfig,
    scope: Option<&TaskScope<'_>>,
) -> CenterOutcome {
    // The generator caps subsets at `min(config cap, workers' max maxDP)`:
    // larger sets can never be assigned.
    let center_max_dp = view
        .workers
        .iter()
        .map(|&w| instance.workers[w.index()].max_dp)
        .max()
        .unwrap_or(0);
    let vdps_cfg = VdpsConfig {
        max_len: config.vdps.max_len.min(center_max_dp),
        ..config.vdps
    };

    let center = view.center;
    let center_u32 = center.index() as u32;
    let _center_span = fta_obs::span_center("solver.center", center_u32);
    let t0 = Instant::now();
    let space = StrategySpace::build_in(instance, aggregates, view, &vdps_cfg, scope);
    let vdps_time = t0.elapsed();

    let algorithm = config.algorithm.salted(u64::from(center.0));
    let t1 = Instant::now();
    let assign_span = fta_obs::span_center("solver.assign", center_u32);
    let mut ctx = GameContext::new(&space);
    let trace = match algorithm {
        Algorithm::Gta => {
            gta(&mut ctx);
            ConvergenceTrace::default()
        }
        Algorithm::Mpta(cfg) => {
            mpta(&mut ctx, &cfg);
            ConvergenceTrace::default()
        }
        Algorithm::Fgt(cfg) => fgt(&mut ctx, &cfg),
        Algorithm::Pfgt(cfg) => pfgt(&mut ctx, &cfg),
        Algorithm::Iegt(cfg) => iegt(&mut ctx, &cfg),
        Algorithm::Random { seed } => {
            random_assignment(&mut ctx, seed);
            ConvergenceTrace::default()
        }
    };
    drop(assign_span);
    let assign_time = t1.elapsed();

    // Round events are replayed from the kept trace (the winning restart)
    // rather than emitted inside the best-response loops: the hot path
    // stays counter-free and the telemetry matches what the trace reports.
    if fta_obs::enabled() {
        let algo_name = algorithm.name();
        for r in &trace.rounds {
            fta_obs::round_event(
                algo_name,
                center_u32,
                r.round.min(u32::MAX as usize) as u32,
                r.moves as u64,
                r.payoff_difference,
                r.average_payoff,
                r.potential,
            );
        }
    }

    CenterOutcome {
        assignment: ctx.to_assignment(),
        vdps_time,
        assign_time,
        gen_stats: space.gen_stats,
        trace,
    }
}

/// Solves a whole instance with the configured algorithm.
///
/// Deterministic regardless of `config.parallel`: per-center randomness is
/// salted by the center id, and results are merged in center order.
///
/// With `parallel = true` this runs on a [`WorkerPool`] bounded by
/// `available_parallelism()`; pass a pool explicitly via
/// [`solve_with_pool`] to control the thread count.
#[must_use]
pub fn solve(instance: &Instance, config: &SolveConfig) -> SolveOutcome {
    let pool = if config.parallel {
        WorkerPool::new()
    } else {
        WorkerPool::sequential()
    };
    solve_with_pool(instance, config, &pool)
}

/// Like [`solve`], on a caller-provided [`WorkerPool`].
///
/// Every piece of parallelism in the run — per-center jobs, intra-center
/// DP layer expansion, per-worker validation — shares `pool`, so the
/// number of live OS threads never exceeds `pool.threads()` regardless of
/// how many centers the instance has. A sequential pool
/// ([`WorkerPool::sequential`]) runs everything inline on the caller's
/// thread. The result is identical for every pool size.
#[must_use]
pub fn solve_with_pool(
    instance: &Instance,
    config: &SolveConfig,
    pool: &WorkerPool,
) -> SolveOutcome {
    let _solve_span = fta_obs::span("solver.solve");
    let views = instance.center_views();
    // Computed once per instance, shared by every center job (previously
    // recomputed inside each center's StrategySpace::build).
    let aggregates = instance.dp_aggregates();
    let outcomes: Vec<CenterOutcome> = pool.scope(|ts| {
        let aggregates = &aggregates;
        let jobs: Vec<_> = views
            .into_iter()
            .map(|view| {
                move |ts: &TaskScope<'_>| solve_center(instance, aggregates, view, config, Some(ts))
            })
            .collect();
        ts.map(jobs)
    });

    let mut assignment = Assignment::new();
    let mut vdps_time = Duration::ZERO;
    let mut assign_time = Duration::ZERO;
    let mut gen_stats = GenerationStats::default();
    let mut br_stats = BestResponseStats::default();
    let mut trace: Option<ConvergenceTrace> = None;
    for outcome in outcomes {
        assignment.merge(outcome.assignment);
        vdps_time += outcome.vdps_time;
        assign_time += outcome.assign_time;
        gen_stats.merge(&outcome.gen_stats);
        br_stats.merge(&outcome.trace.stats);
        if !outcome.trace.is_empty() {
            match &mut trace {
                Some(t) => t.merge_parallel(&outcome.trace),
                None => trace = Some(outcome.trace),
            }
        }
    }
    if fta_obs::enabled() {
        // Best-response work counters, aggregated over every center and
        // restart. `counter` drops zero deltas, so baselines emit nothing.
        fta_obs::counter("br.rounds", br_stats.rounds);
        fta_obs::counter("br.candidate_evaluations", br_stats.candidate_evaluations);
        fta_obs::counter("br.switches", br_stats.switches);
        fta_obs::counter("br.null_adoptions", br_stats.null_adoptions);
        fta_obs::counter("br.evaluator_builds", br_stats.evaluator_builds);
        fta_obs::counter("br.evaluator_updates", br_stats.evaluator_updates);
    }
    SolveOutcome {
        assignment,
        vdps_time,
        assign_time,
        gen_stats,
        br_stats,
        trace: trace.unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_data::{generate_syn, SynConfig};

    fn multi_center_instance() -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 3,
                n_workers: 24,
                n_tasks: 300,
                n_delivery_points: 45,
                extent: 3.0,
                ..SynConfig::bench_scale()
            },
            77,
        )
    }

    fn all_algorithms() -> Vec<Algorithm> {
        vec![
            Algorithm::Gta,
            Algorithm::Mpta(MptaConfig::default()),
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(IegtConfig::default()),
            Algorithm::Random { seed: 5 },
        ]
    }

    #[test]
    fn every_algorithm_produces_valid_assignments() {
        let inst = multi_center_instance();
        for algo in all_algorithms() {
            let outcome = solve(&inst, &SolveConfig::new(algo));
            assert!(
                outcome.assignment.validate(&inst).is_ok(),
                "{} produced an invalid assignment",
                algo.name()
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let inst = multi_center_instance();
        for algo in all_algorithms() {
            let seq = solve(&inst, &SolveConfig::new(algo));
            let par = solve(
                &inst,
                &SolveConfig {
                    parallel: true,
                    ..SolveConfig::new(algo)
                },
            );
            assert_eq!(
                seq.assignment,
                par.assignment,
                "{} differs between sequential and parallel",
                algo.name()
            );
        }
    }

    #[test]
    fn solve_with_pool_is_thread_count_invariant() {
        // The container may expose a single core; `with_threads` still
        // spins up real workers, so this exercises pooled center jobs,
        // pooled DP layer expansion, and pooled validation.
        let inst = multi_center_instance();
        for algo in all_algorithms() {
            let config = SolveConfig::new(algo);
            let seq = solve_with_pool(&inst, &config, &WorkerPool::sequential());
            for threads in [2, 4, 7] {
                let pooled = solve_with_pool(&inst, &config, &WorkerPool::with_threads(threads));
                assert_eq!(
                    seq.assignment,
                    pooled.assignment,
                    "{} differs between 1 and {threads} threads",
                    algo.name()
                );
                assert_eq!(
                    seq.gen_stats.work_counters(),
                    pooled.gen_stats.work_counters(),
                    "{} generation work differs between 1 and {threads} threads",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn pooled_solve_reports_parallelism_counters() {
        let inst = multi_center_instance();
        let outcome = solve_with_pool(
            &inst,
            &SolveConfig::new(Algorithm::Gta),
            &WorkerPool::with_threads(4),
        );
        // Chunked expansion only kicks in past the frontier-size threshold;
        // at minimum the sequential fallback counts one chunk per layer.
        assert!(outcome.gen_stats.chunks > 0);
    }

    #[test]
    fn game_algorithms_report_traces() {
        let inst = multi_center_instance();
        let fgt_out = solve(
            &inst,
            &SolveConfig::new(Algorithm::Fgt(FgtConfig::default())),
        );
        assert!(!fgt_out.trace.is_empty());
        assert!(fgt_out.trace.converged);

        let gta_out = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        assert!(gta_out.trace.is_empty());
    }

    #[test]
    fn br_stats_surface_for_game_algorithms_only() {
        let inst = multi_center_instance();
        let fgt_out = solve(
            &inst,
            &SolveConfig::new(Algorithm::Fgt(FgtConfig::default())),
        );
        assert!(!fgt_out.br_stats.is_empty());
        assert!(fgt_out.br_stats.rounds > 0);
        assert!(fgt_out.br_stats.candidate_evaluations > 0);
        assert_eq!(fgt_out.br_stats, fgt_out.trace.stats);

        let iegt_out = solve(
            &inst,
            &SolveConfig::new(Algorithm::Iegt(IegtConfig::default())),
        );
        assert!(iegt_out.br_stats.rounds > 0);

        let gta_out = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        assert!(gta_out.br_stats.is_empty());
    }

    #[test]
    fn gen_stats_are_aggregated_across_centers() {
        let inst = multi_center_instance();
        let outcome = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        assert!(outcome.gen_stats.vdps_count > 0);
        assert!(outcome.gen_stats.states >= outcome.gen_stats.vdps_count);
        assert!(outcome.total_time() >= outcome.vdps_time);
    }

    #[test]
    fn algorithm_names_match_paper_legends() {
        assert_eq!(Algorithm::Gta.name(), "GTA");
        assert_eq!(Algorithm::Mpta(MptaConfig::default()).name(), "MPTA");
        assert_eq!(Algorithm::Fgt(FgtConfig::default()).name(), "FGT");
        assert_eq!(Algorithm::Iegt(IegtConfig::default()).name(), "IEGT");
    }

    #[test]
    fn taskless_instance_yields_empty_assignment() {
        let mut inst = multi_center_instance();
        inst.tasks.clear();
        for algo in all_algorithms() {
            let outcome = solve(&inst, &SolveConfig::new(algo));
            assert_eq!(
                outcome.assignment.assigned_workers(),
                0,
                "{} assigned workers with no tasks",
                algo.name()
            );
            assert_eq!(outcome.gen_stats.vdps_count, 0);
        }
    }

    #[test]
    fn workerless_center_is_skipped_gracefully() {
        let mut inst = multi_center_instance();
        // Move every worker to center 0; centers 1 and 2 keep their tasks
        // but have nobody to serve them.
        for w in &mut inst.workers {
            w.center = fta_core::CenterId(0);
        }
        let outcome = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        assert!(outcome.assignment.validate(&inst).is_ok());
        for (_, route) in outcome.assignment.iter() {
            assert_eq!(route.center(), fta_core::CenterId(0));
        }
    }

    #[test]
    fn per_center_seeds_are_decorrelated() {
        // Two centers with identical relative geometry must not replay the
        // same random choices: the salted seeds differ per center. We can't
        // easily build identical centers, so assert the salting itself.
        let a = Algorithm::Fgt(FgtConfig::default()).salted(0);
        let b = Algorithm::Fgt(FgtConfig::default()).salted(1);
        match (a, b) {
            (Algorithm::Fgt(ca), Algorithm::Fgt(cb)) => assert_ne!(ca.seed, cb.seed),
            _ => unreachable!(),
        }
    }

    #[test]
    fn max_len_is_clamped_to_center_max_dp() {
        // maxDP = 2 workers: no VDPS of size 3 may be generated even though
        // the config asks for 3.
        let mut inst = multi_center_instance();
        for w in &mut inst.workers {
            w.max_dp = 2;
        }
        let outcome = solve(&inst, &SolveConfig::new(Algorithm::Gta));
        for (_, route) in outcome.assignment.iter() {
            assert!(route.len() <= 2);
        }
    }
}

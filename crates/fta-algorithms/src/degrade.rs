//! Graceful degradation: the ladder a budgeted solve descends instead of
//! failing.
//!
//! A production dispatcher cannot afford a solve that dies — or one that
//! runs forever. When a [`fta_core::SolveBudget`] is exhausted or a
//! per-center computation panics, the solver walks down a fixed ladder of
//! cheaper formulations and reports every step it took:
//!
//! 1. [`LadderRung::Full`] — the configured algorithm over the full
//!    (ε-pruned) strategy space; nothing degraded.
//! 2. [`LadderRung::DegradedVdps`] — the VDPS pool was truncated at a DP
//!    layer boundary (state cap or deadline hit mid-generation); the
//!    configured algorithm runs over the smaller pool.
//! 3. [`LadderRung::Gta`] — the wall-clock deadline passed before the
//!    equilibrium loop could start, so the iterative algorithm
//!    (FGT/PFGT/IEGT) is replaced by one greedy pass.
//! 4. [`LadderRung::ImmediateSingleStop`] — the deadline passed before
//!    generation even began (or a panic forced a retry): each worker gets
//!    at most one single-delivery-point route, assigned greedily.
//! 5. [`LadderRung::Skipped`] — the center panicked twice; it contributes
//!    an empty assignment and a [`DegradationEvent::CenterSkipped`].
//!
//! Every transition emits a [`DegradationEvent`] into the
//! [`DegradationReport`] carried on
//! [`SolveOutcome`](crate::solver::SolveOutcome), so a caller can tell a
//! pristine result from a best-effort one without parsing logs.

use fta_core::CenterId;
use std::fmt;

/// How far down the degradation ladder one center's solve descended.
///
/// Ordered from best to worst: `Full < DegradedVdps < Gta <
/// ImmediateSingleStop < Skipped` (derived ordering follows declaration
/// order), so merging per-center rungs with `max` yields the worst rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LadderRung {
    /// Configured algorithm, full strategy space — nothing degraded.
    #[default]
    Full,
    /// Configured algorithm over a truncated VDPS pool.
    DegradedVdps,
    /// Greedy assignment replaced the configured iterative algorithm.
    Gta,
    /// Greedy single-delivery-point routes only.
    ImmediateSingleStop,
    /// The center was quarantined after repeated panics; empty assignment.
    Skipped,
}

impl LadderRung {
    /// Short display name for reports and traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::DegradedVdps => "degraded-vdps",
            Self::Gta => "gta-fallback",
            Self::ImmediateSingleStop => "immediate-single-stop",
            Self::Skipped => "skipped",
        }
    }

    /// Whether this rung is anything other than the full solve.
    #[must_use]
    pub fn is_degraded(self) -> bool {
        self != Self::Full
    }
}

impl fmt::Display for LadderRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One degradation step taken while solving one center.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradationEvent {
    /// VDPS generation stopped at a layer boundary before exhausting the
    /// subset space (state cap reached or deadline passed mid-generation).
    VdpsTruncated {
        /// The affected distribution center.
        center: CenterId,
    },
    /// The equilibrium loop was stopped by the budget (round cap or
    /// deadline) before converging; the partial selection was kept.
    RoundsCapped {
        /// The affected distribution center.
        center: CenterId,
    },
    /// The configured iterative algorithm was replaced by greedy
    /// assignment because the deadline passed after VDPS generation.
    FellBackToGta {
        /// The affected distribution center.
        center: CenterId,
    },
    /// The center was solved with single-delivery-point routes only
    /// (deadline passed before generation, or panic-retry path).
    FellBackToImmediate {
        /// The affected distribution center.
        center: CenterId,
    },
    /// The center's solve panicked; the panic was caught and the center
    /// retried once at [`LadderRung::ImmediateSingleStop`].
    PanicQuarantined {
        /// The affected distribution center.
        center: CenterId,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The center's retry panicked too; it contributes nothing to the
    /// assignment.
    CenterSkipped {
        /// The affected distribution center.
        center: CenterId,
        /// The panic payload of the failed retry.
        message: String,
    },
}

impl DegradationEvent {
    /// The distribution center the event concerns.
    #[must_use]
    pub fn center(&self) -> CenterId {
        match self {
            Self::VdpsTruncated { center }
            | Self::RoundsCapped { center }
            | Self::FellBackToGta { center }
            | Self::FellBackToImmediate { center }
            | Self::PanicQuarantined { center, .. }
            | Self::CenterSkipped { center, .. } => *center,
        }
    }

    /// Short machine-readable kind tag (used in traces and tests).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::VdpsTruncated { .. } => "vdps_truncated",
            Self::RoundsCapped { .. } => "rounds_capped",
            Self::FellBackToGta { .. } => "fell_back_to_gta",
            Self::FellBackToImmediate { .. } => "fell_back_to_immediate",
            Self::PanicQuarantined { .. } => "panic_quarantined",
            Self::CenterSkipped { .. } => "center_skipped",
        }
    }

    /// The budget axis (or fault class) that caused the event, as
    /// attributed in the solve ledger: `max_states` for VDPS
    /// truncation, `max_rounds` for a capped equilibrium loop,
    /// `wall_ms` for deadline-driven fallbacks, `panic` for quarantines
    /// and skips.
    #[must_use]
    pub fn budget_axis(&self) -> &'static str {
        match self {
            Self::VdpsTruncated { .. } => "max_states",
            Self::RoundsCapped { .. } => "max_rounds",
            Self::FellBackToGta { .. } | Self::FellBackToImmediate { .. } => "wall_ms",
            Self::PanicQuarantined { .. } | Self::CenterSkipped { .. } => "panic",
        }
    }
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::VdpsTruncated { center } => {
                write!(f, "{center}: VDPS pool truncated at a layer boundary")
            }
            Self::RoundsCapped { center } => {
                write!(f, "{center}: equilibrium loop stopped by the budget")
            }
            Self::FellBackToGta { center } => {
                write!(f, "{center}: fell back to greedy assignment")
            }
            Self::FellBackToImmediate { center } => {
                write!(f, "{center}: fell back to single-stop routes")
            }
            Self::PanicQuarantined { center, message } => {
                write!(
                    f,
                    "{center}: panic quarantined ({message}); retried degraded"
                )
            }
            Self::CenterSkipped { center, message } => {
                write!(f, "{center}: skipped after repeated panic ({message})")
            }
        }
    }
}

/// Everything that went *less than perfectly* during a solve.
///
/// Empty exactly when the solve ran at [`LadderRung::Full`] on every
/// center — which is guaranteed whenever the budget is unlimited, no
/// fault is injected, and no center panics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Events in center order (and, per center, in the order they fired).
    pub events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// Whether nothing degraded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records an event.
    pub fn push(&mut self, event: DegradationEvent) {
        self.events.push(event);
    }

    /// Appends all of `other`'s events (used when merging center
    /// outcomes, and by the retry path to keep first-attempt events).
    pub fn merge(&mut self, other: DegradationReport) {
        self.events.extend(other.events);
    }

    /// The distinct centers that degraded, ascending.
    #[must_use]
    pub fn degraded_centers(&self) -> Vec<CenterId> {
        let mut ids: Vec<CenterId> = self.events.iter().map(DegradationEvent::center).collect();
        ids.sort_unstable_by_key(|c| c.0);
        ids.dedup();
        ids
    }

    /// Number of panics caught (quarantined or skipped).
    #[must_use]
    pub fn panics_caught(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    DegradationEvent::PanicQuarantined { .. }
                        | DegradationEvent::CenterSkipped { .. }
                )
            })
            .count()
    }

    /// Whether any event is budget-driven (truncation, round cap, or an
    /// algorithm fallback) as opposed to panic-driven.
    #[must_use]
    pub fn budget_exhausted(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                DegradationEvent::VdpsTruncated { .. }
                    | DegradationEvent::RoundsCapped { .. }
                    | DegradationEvent::FellBackToGta { .. }
                    | DegradationEvent::FellBackToImmediate { .. }
            )
        })
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no degradation");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_ordering_follows_the_ladder() {
        assert!(LadderRung::Full < LadderRung::DegradedVdps);
        assert!(LadderRung::DegradedVdps < LadderRung::Gta);
        assert!(LadderRung::Gta < LadderRung::ImmediateSingleStop);
        assert!(LadderRung::ImmediateSingleStop < LadderRung::Skipped);
        assert!(!LadderRung::Full.is_degraded());
        assert!(LadderRung::default() == LadderRung::Full);
        assert!(LadderRung::Skipped.is_degraded());
    }

    #[test]
    fn report_aggregates_centers_and_panics() {
        let mut r = DegradationReport::default();
        assert!(r.is_empty());
        assert!(!r.budget_exhausted());
        r.push(DegradationEvent::VdpsTruncated {
            center: CenterId(2),
        });
        r.push(DegradationEvent::PanicQuarantined {
            center: CenterId(0),
            message: "boom".into(),
        });
        r.push(DegradationEvent::CenterSkipped {
            center: CenterId(0),
            message: "boom again".into(),
        });
        assert_eq!(r.degraded_centers(), vec![CenterId(0), CenterId(2)]);
        assert_eq!(r.panics_caught(), 2);
        assert!(r.budget_exhausted());
        let text = r.to_string();
        assert!(text.contains("panic quarantined"));
        assert!(text.contains("truncated"));
    }

    #[test]
    fn merge_preserves_event_order() {
        let mut a = DegradationReport::default();
        a.push(DegradationEvent::FellBackToGta {
            center: CenterId(1),
        });
        let mut b = DegradationReport::default();
        b.push(DegradationEvent::RoundsCapped {
            center: CenterId(3),
        });
        a.merge(b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events[0].kind(), "fell_back_to_gta");
        assert_eq!(a.events[1].kind(), "rounds_capped");
        assert_eq!(a.events[1].center(), CenterId(3));
    }
}

//! IEGT — the Improved Evolutionary Game-Theoretic approach (Algorithm 3).
//!
//! Workers of one distribution center form a population that repeatedly
//! plays the assignment game. Utilities are raw payoffs (Section VI-B).
//! Each round evaluates the replicator dynamics (Equation 11): a worker's
//! population share grows or shrinks with the sign of `U_i − Ū`, so a
//! worker whose payoff is below the population average (`σ̇ < 0`) must
//! *evolve* — redraw another available strategy with a strictly higher
//! payoff — or keep being outcompeted. The run stops at an improved
//! evolutionary equilibrium: either all replicator derivatives vanish
//! (equal payoffs) or a whole round passes with no strategy change
//! (Algorithm 3, line 27).

use crate::context::GameContext;
use crate::fgt::BestResponseEngine;
use crate::random::random_init;
use crate::trace::ConvergenceTrace;
use fta_core::iau::{IauParams, RivalSet};
use fta_core::CancelToken;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How a below-average worker picks among its strictly better available
/// strategies. The paper specifies a uniformly random pick; the other
/// policies are ablations (see the `ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedrawPolicy {
    /// Uniformly random among strictly better strategies (the paper's
    /// Algorithm 3, line 24).
    #[default]
    UniformBetter,
    /// The *smallest* strict improvement — a cautious evolution step that
    /// avoids overshooting the population average.
    MinimalBetter,
    /// The best available strategy (degenerates towards greedy behaviour).
    BestAvailable,
}

/// Configuration of the IEGT run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IegtConfig {
    /// Cap on evolution rounds.
    pub max_rounds: usize,
    /// Seed for the initialisation and the random redraws.
    pub seed: u64,
    /// Redraw policy for below-average workers.
    pub redraw: RedrawPolicy,
    /// Tolerance under which payoffs count as "equal to the average" when
    /// testing the `σ̇ = 0` rest point.
    pub equality_tolerance: f64,
    /// Candidate-enumeration engine for the evolution loop. IEGT's
    /// utilities are raw payoffs — trivially strictly increasing in the
    /// own payoff — so [`BestResponseEngine::FastPath`] is always sound
    /// here: the strictly-better candidate set is a prefix of the
    /// payoff-descending slot order and the scan early-exits at the first
    /// payoff at or below the threshold. The other two variants run the
    /// classic full-list filter.
    pub engine: BestResponseEngine,
}

impl Default for IegtConfig {
    fn default() -> Self {
        Self {
            max_rounds: 500,
            seed: 0x4945_4754, // "IEGT"
            redraw: RedrawPolicy::UniformBetter,
            equality_tolerance: 1e-9,
            engine: BestResponseEngine::default(),
        }
    }
}

impl IegtConfig {
    /// Scale-aware slack under which a payoff counts as "at the average"
    /// in the `σ̇ = 0` rest-point test: `equality_tolerance` is applied
    /// *relative* to the average's magnitude (with an absolute floor of
    /// `equality_tolerance` itself near zero), so the test behaves the same
    /// whether payoffs are measured in cents or in thousands.
    #[must_use]
    pub fn rest_slack(&self, average: f64) -> f64 {
        self.equality_tolerance * average.abs().max(1.0)
    }

    /// Scale-aware minimal margin by which a candidate payoff must exceed
    /// the current one to count as a *strict* improvement. The previous
    /// implementation used the absolute constant `f64::EPSILON`
    /// (≈2.2e-16), which vanishes relative to rounding error once payoffs
    /// grow past O(1) and over-filters when they are tiny; deriving the
    /// margin from [`IegtConfig::equality_tolerance`] keeps the two
    /// equality notions of the algorithm consistent at every scale.
    #[must_use]
    pub fn improvement_threshold(&self, current: f64) -> f64 {
        self.equality_tolerance * current.abs().max(1.0)
    }
}

/// Runs IEGT on a fresh context; returns the convergence trace. The final
/// selection (an improved evolutionary equilibrium unless the round cap was
/// hit) is left in `ctx`.
pub fn iegt(ctx: &mut GameContext<'_>, config: &IegtConfig) -> ConvergenceTrace {
    iegt_bounded(ctx, config, None)
}

/// [`iegt`] under cooperative cancellation: the replicator loop checks
/// `cancel` once per round and stops early (with the trace marked
/// [`ConvergenceTrace::cancelled`]) when it trips. The population state
/// reached so far is kept — it is always a valid partial assignment.
/// `cancel = None` is bit-identical to [`iegt`].
pub fn iegt_bounded(
    ctx: &mut GameContext<'_>,
    config: &IegtConfig,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    iegt_run(ctx, config, cancel, true)
}

/// [`iegt_bounded`] warm-started from a cached strategy profile: the
/// profile is replayed onto `ctx` (invalid entries dropped) and the
/// evolution runs from there instead of the random single-dp
/// initialisation. The redraw rng stream is seeded identically to the
/// cold path, so a warm run over an unchanged population replays the same
/// uniform draws. See [`crate::fgt::fgt_warm_bounded`].
pub fn iegt_warm_bounded(
    ctx: &mut GameContext<'_>,
    config: &IegtConfig,
    profile: &[Option<u32>],
    cancel: Option<&CancelToken>,
) -> (ConvergenceTrace, crate::warm::WarmStart) {
    let warm = crate::warm::warm_init(ctx, profile);
    let trace = iegt_run(ctx, config, cancel, false);
    (trace, warm)
}

fn iegt_run(
    ctx: &mut GameContext<'_>,
    config: &IegtConfig,
    cancel: Option<&CancelToken>,
    init: bool,
) -> ConvergenceTrace {
    // The rng also drives the uniform redraws, so it exists on both paths;
    // only the random initialisation is skipped on a warm start.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let index_updates_before = ctx.index_updates();
    if init {
        random_init(ctx, &mut rng);
    }

    let mut trace = ConvergenceTrace::default();
    // IEGT does not evaluate IAU, but the incremental rival engine still
    // pays off: it keeps the population total/average and the fairness
    // metric current in O(1) per read instead of O(n) / O(n log n) scans
    // per round. (The IAU weights inside are irrelevant here.)
    let mut population = RivalSet::with_payoffs(ctx.payoffs(), IauParams::default());
    trace.stats.evaluator_builds += 1;
    trace.record_summary(
        0,
        0,
        population.payoff_difference(),
        population.average(),
        population.total(),
    );

    // The fast path is always sound for IEGT (raw payoffs); the other two
    // engines run the classic full-list filter. Both branches produce the
    // same `better` set in the same (ascending pool-index) order, so the
    // redraw — including the rng stream — is engine-invariant.
    let fastpath = config.engine == BestResponseEngine::FastPath;
    let mut better: Vec<(u32, f64)> = Vec::new();
    let n = ctx.n_workers();
    for round in 1..=config.max_rounds {
        trace.stats.rounds += 1;
        if fastpath {
            trace.stats.fastpath_rounds += 1;
        }
        let average = population.average();
        let mut moves = 0;
        let mut all_at_rest = true;
        for local in 0..n {
            let current = ctx.payoff(local);
            // Replicator dynamics sign: σ̇ = σ (U_i − Ū); σ > 0 for a
            // strategy in play, so σ̇ < 0 ⇔ U_i < Ū.
            if current >= average - config.rest_slack(average) {
                continue;
            }
            all_at_rest = false;
            let margin = config.improvement_threshold(current);
            let threshold = current + margin;
            if fastpath {
                let scan = ctx.better_available_desc(local, threshold, &mut better);
                trace.stats.candidates_scanned += scan.scanned;
                if scan.early_exit {
                    trace.stats.early_exits += 1;
                }
            } else {
                better.clear();
                trace.stats.candidates_scanned += ctx.space().strategy_count(local) as u64;
                for (idx, p) in ctx.available_strategies(local) {
                    trace.stats.candidate_evaluations += 1;
                    if p > threshold {
                        better.push((idx, p));
                    }
                }
            }
            let choice = match config.redraw {
                RedrawPolicy::UniformBetter => better.choose(&mut rng).copied(),
                RedrawPolicy::MinimalBetter => {
                    better.iter().copied().min_by(|a, b| a.1.total_cmp(&b.1))
                }
                RedrawPolicy::BestAvailable => {
                    better.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1))
                }
            };
            if let Some((idx, _)) = choice {
                ctx.set_strategy(local, Some(idx));
                population.remove(current);
                population.insert(ctx.payoff(local));
                trace.stats.evaluator_updates += 2;
                moves += 1;
                trace.stats.switches += 1;
            }
        }
        trace.record_summary(
            round,
            moves,
            population.payoff_difference(),
            population.average(),
            population.total(),
        );
        // Termination (Algorithm 3 line 27): σ̇ = 0 for the whole
        // population, or no worker changed strategy this round.
        if all_at_rest || moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace.stats.index_updates += ctx.index_updates() - index_updates_before;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 12,
                n_tasks: 120,
                n_delivery_points: 20,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn reaches_an_improved_evolutionary_equilibrium() {
        let inst = instance(1);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let cfg = IegtConfig::default();
        let trace = iegt(&mut ctx, &cfg);
        assert!(trace.converged, "IEGT did not converge");
        // At rest, every below-average worker has no strictly better
        // available strategy.
        let average = ctx.total_payoff() / ctx.n_workers() as f64;
        for local in 0..ctx.n_workers() {
            let current = ctx.payoff(local);
            if current < average - cfg.rest_slack(average) {
                let improvable = ctx
                    .available_strategies(local)
                    .any(|(_, p)| p > current + cfg.improvement_threshold(current));
                assert!(
                    !improvable,
                    "worker {local} is below average but could still evolve"
                );
            }
        }
    }

    #[test]
    fn improvement_threshold_scales_with_payoff_magnitude() {
        // Regression: the strict-improvement filter used the absolute
        // constant `f64::EPSILON`, which is meaningless both for payoffs in
        // the thousands (any rounding noise passes as an "improvement") and
        // near zero. The threshold must track the payoff scale.
        let cfg = IegtConfig::default();
        // Large payoffs: a 1-ulp "improvement" of 4096.0 must NOT pass.
        let current = 4096.0_f64;
        let one_ulp_up = f64::from_bits(current.to_bits() + 1);
        assert!(one_ulp_up - current > f64::EPSILON); // old filter admitted it
        assert!(one_ulp_up <= current + cfg.improvement_threshold(current));
        // Genuine improvements still pass at every scale.
        assert!(current + 0.01 > current + cfg.improvement_threshold(current));
        assert!(0.02_f64 > 0.01 + cfg.improvement_threshold(0.01));
        // The slack grows with magnitude but keeps an absolute floor.
        assert!(cfg.improvement_threshold(1e6) > cfg.improvement_threshold(1.0));
        assert_eq!(
            cfg.improvement_threshold(0.0),
            cfg.equality_tolerance,
            "floor near zero"
        );
        assert_eq!(cfg.rest_slack(0.0), cfg.equality_tolerance);
    }

    #[test]
    fn iegt_records_work_counters() {
        let inst = instance(6);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = iegt(&mut ctx, &IegtConfig::default());
        assert_eq!(trace.stats.rounds as usize + 1, trace.len());
        assert_eq!(trace.stats.evaluator_builds, 1);
        assert_eq!(trace.stats.switches, trace.stats.evaluator_updates / 2);
        assert_eq!(
            trace.stats.switches as usize,
            trace.rounds.iter().map(|r| r.moves).sum::<usize>()
        );
    }

    #[test]
    fn produces_valid_assignment() {
        let inst = instance(2);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        iegt(&mut ctx, &IegtConfig::default());
        assert!(ctx.to_assignment().validate(&inst).is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = instance(3);
        let s = space(&inst);
        let run = || {
            let mut ctx = GameContext::new(&s);
            let trace = iegt(&mut ctx, &IegtConfig::default());
            (ctx.to_assignment(), trace.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn payoffs_never_degrade_during_evolution() {
        // Workers only ever redraw strictly better strategies, so the total
        // payoff is non-decreasing round over round.
        let inst = instance(4);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = iegt(&mut ctx, &IegtConfig::default());
        for pair in trace.rounds.windows(2) {
            assert!(
                pair[1].potential >= pair[0].potential - 1e-9,
                "total payoff regressed: {pair:?}"
            );
        }
    }

    #[test]
    fn redraw_policies_all_converge() {
        let inst = instance(5);
        let s = space(&inst);
        for policy in [
            RedrawPolicy::UniformBetter,
            RedrawPolicy::MinimalBetter,
            RedrawPolicy::BestAvailable,
        ] {
            let mut ctx = GameContext::new(&s);
            let trace = iegt(
                &mut ctx,
                &IegtConfig {
                    redraw: policy,
                    ..IegtConfig::default()
                },
            );
            assert!(trace.converged, "{policy:?} did not converge");
            assert!(ctx.to_assignment().validate(&inst).is_ok());
        }
    }

    #[test]
    fn fastpath_matches_incremental_evolution_exactly() {
        // IEGT evolves on raw payoffs, so the monotone fast path is always
        // sound. The descending scan collects *exactly* the candidates the
        // exhaustive filter admits (same threshold float, same ascending
        // order after the re-sort), so the shared rng stream draws the same
        // redraws and the evolution is bit-identical.
        for seed in [41, 42, 43] {
            let inst = instance(seed);
            let s = space(&inst);
            let run = |engine| {
                let mut ctx = GameContext::new(&s);
                let trace = iegt(
                    &mut ctx,
                    &IegtConfig {
                        engine,
                        ..IegtConfig::default()
                    },
                );
                (ctx.to_assignment(), ctx.total_payoff().to_bits(), trace)
            };
            let (inc_asg, inc_bits, inc) = run(BestResponseEngine::Incremental);
            let (fast_asg, fast_bits, fast) = run(BestResponseEngine::FastPath);
            assert_eq!(inc_asg, fast_asg, "seed {seed}: assignments diverge");
            assert_eq!(inc_bits, fast_bits, "seed {seed}: payoffs diverge");
            assert_eq!(inc.len(), fast.len(), "seed {seed}: round counts diverge");
            assert_eq!(inc.stats.switches, fast.stats.switches);
            assert_eq!(inc.stats.fastpath_rounds, 0);
            assert_eq!(fast.stats.fastpath_rounds, fast.stats.rounds);
            assert!(
                fast.stats.candidates_scanned <= inc.stats.candidates_scanned,
                "seed {seed}: fastpath scanned {} vs exhaustive {}",
                fast.stats.candidates_scanned,
                inc.stats.candidates_scanned
            );
        }
    }

    #[test]
    fn warm_start_from_evolutionary_equilibrium_is_a_no_op() {
        for seed in [7, 8] {
            let inst = instance(seed);
            let s = space(&inst);
            let mut cold = GameContext::new(&s);
            let cold_trace = iegt(&mut cold, &IegtConfig::default());
            assert!(cold_trace.converged);
            let profile = crate::warm::profile_of(&cold);

            let mut warm = GameContext::new(&s);
            let (trace, stats) =
                iegt_warm_bounded(&mut warm, &IegtConfig::default(), &profile, None);
            assert!(stats.is_complete(), "seed {seed}: replay rejected entries");
            assert!(trace.converged, "seed {seed}: warm run did not converge");
            assert_eq!(trace.stats.switches, 0, "seed {seed}: equilibrium moved");
            assert_eq!(warm.to_assignment(), cold.to_assignment());
        }
    }

    #[test]
    fn iegt_is_fairer_than_greedy_on_average() {
        // The paper's headline result: IEGT's payoff difference is a small
        // fraction of GTA's (Figures 4–9). Check the direction across seeds.
        let mut iegt_total = 0.0;
        let mut gta_total = 0.0;
        for seed in 0..6 {
            let inst = instance(200 + seed);
            let s = space(&inst);
            let ws = s.view.workers.clone();

            let mut g = GameContext::new(&s);
            crate::gta::gta(&mut g);
            gta_total += g.to_assignment().fairness(&inst, &ws).payoff_difference;

            let mut e = GameContext::new(&s);
            iegt(&mut e, &IegtConfig::default());
            iegt_total += e.to_assignment().fairness(&inst, &ws).payoff_difference;
        }
        assert!(
            iegt_total < gta_total,
            "IEGT mean diff {iegt_total} vs GTA {gta_total}"
        );
    }
}

//! IEGT — the Improved Evolutionary Game-Theoretic approach (Algorithm 3).
//!
//! Workers of one distribution center form a population that repeatedly
//! plays the assignment game. Utilities are raw payoffs (Section VI-B).
//! Each round evaluates the replicator dynamics (Equation 11): a worker's
//! population share grows or shrinks with the sign of `U_i − Ū`, so a
//! worker whose payoff is below the population average (`σ̇ < 0`) must
//! *evolve* — redraw another available strategy with a strictly higher
//! payoff — or keep being outcompeted. The run stops at an improved
//! evolutionary equilibrium: either all replicator derivatives vanish
//! (equal payoffs) or a whole round passes with no strategy change
//! (Algorithm 3, line 27).

use crate::context::GameContext;
use crate::random::random_init;
use crate::trace::ConvergenceTrace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How a below-average worker picks among its strictly better available
/// strategies. The paper specifies a uniformly random pick; the other
/// policies are ablations (see the `ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedrawPolicy {
    /// Uniformly random among strictly better strategies (the paper's
    /// Algorithm 3, line 24).
    #[default]
    UniformBetter,
    /// The *smallest* strict improvement — a cautious evolution step that
    /// avoids overshooting the population average.
    MinimalBetter,
    /// The best available strategy (degenerates towards greedy behaviour).
    BestAvailable,
}

/// Configuration of the IEGT run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IegtConfig {
    /// Cap on evolution rounds.
    pub max_rounds: usize,
    /// Seed for the initialisation and the random redraws.
    pub seed: u64,
    /// Redraw policy for below-average workers.
    pub redraw: RedrawPolicy,
    /// Tolerance under which payoffs count as "equal to the average" when
    /// testing the `σ̇ = 0` rest point.
    pub equality_tolerance: f64,
}

impl Default for IegtConfig {
    fn default() -> Self {
        Self {
            max_rounds: 500,
            seed: 0x4945_4754, // "IEGT"
            redraw: RedrawPolicy::UniformBetter,
            equality_tolerance: 1e-9,
        }
    }
}

/// Runs IEGT on a fresh context; returns the convergence trace. The final
/// selection (an improved evolutionary equilibrium unless the round cap was
/// hit) is left in `ctx`.
pub fn iegt(ctx: &mut GameContext<'_>, config: &IegtConfig) -> ConvergenceTrace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    random_init(ctx, &mut rng);

    let mut trace = ConvergenceTrace::default();
    trace.record(0, 0, ctx.payoffs(), ctx.total_payoff());

    let n = ctx.n_workers();
    for round in 1..=config.max_rounds {
        let average = ctx.total_payoff() / n as f64;
        let mut moves = 0;
        let mut all_at_rest = true;
        for local in 0..n {
            let current = ctx.payoff(local);
            // Replicator dynamics sign: σ̇ = σ (U_i − Ū); σ > 0 for a
            // strategy in play, so σ̇ < 0 ⇔ U_i < Ū.
            if current >= average - config.equality_tolerance {
                continue;
            }
            all_at_rest = false;
            let better: Vec<(u32, f64)> = ctx
                .available_strategies(local)
                .filter(|&(_, p)| p > current + f64::EPSILON)
                .collect();
            let choice = match config.redraw {
                RedrawPolicy::UniformBetter => better.choose(&mut rng).copied(),
                RedrawPolicy::MinimalBetter => better
                    .iter()
                    .copied()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("payoffs are not NaN")),
                RedrawPolicy::BestAvailable => better
                    .iter()
                    .copied()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("payoffs are not NaN")),
            };
            if let Some((idx, _)) = choice {
                ctx.set_strategy(local, Some(idx));
                moves += 1;
            }
        }
        trace.record(round, moves, ctx.payoffs(), ctx.total_payoff());
        // Termination (Algorithm 3 line 27): σ̇ = 0 for the whole
        // population, or no worker changed strategy this round.
        if all_at_rest || moves == 0 {
            trace.converged = true;
            break;
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 12,
                n_tasks: 120,
                n_delivery_points: 20,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn reaches_an_improved_evolutionary_equilibrium() {
        let inst = instance(1);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let cfg = IegtConfig::default();
        let trace = iegt(&mut ctx, &cfg);
        assert!(trace.converged, "IEGT did not converge");
        // At rest, every below-average worker has no strictly better
        // available strategy.
        let average = ctx.total_payoff() / ctx.n_workers() as f64;
        for local in 0..ctx.n_workers() {
            let current = ctx.payoff(local);
            if current < average - 1e-9 {
                let improvable = ctx
                    .available_strategies(local)
                    .any(|(_, p)| p > current + f64::EPSILON);
                assert!(
                    !improvable,
                    "worker {local} is below average but could still evolve"
                );
            }
        }
    }

    #[test]
    fn produces_valid_assignment() {
        let inst = instance(2);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        iegt(&mut ctx, &IegtConfig::default());
        assert!(ctx.to_assignment().validate(&inst).is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = instance(3);
        let s = space(&inst);
        let run = || {
            let mut ctx = GameContext::new(&s);
            let trace = iegt(&mut ctx, &IegtConfig::default());
            (ctx.to_assignment(), trace.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn payoffs_never_degrade_during_evolution() {
        // Workers only ever redraw strictly better strategies, so the total
        // payoff is non-decreasing round over round.
        let inst = instance(4);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = iegt(&mut ctx, &IegtConfig::default());
        for pair in trace.rounds.windows(2) {
            assert!(
                pair[1].potential >= pair[0].potential - 1e-9,
                "total payoff regressed: {pair:?}"
            );
        }
    }

    #[test]
    fn redraw_policies_all_converge() {
        let inst = instance(5);
        let s = space(&inst);
        for policy in [
            RedrawPolicy::UniformBetter,
            RedrawPolicy::MinimalBetter,
            RedrawPolicy::BestAvailable,
        ] {
            let mut ctx = GameContext::new(&s);
            let trace = iegt(
                &mut ctx,
                &IegtConfig {
                    redraw: policy,
                    ..IegtConfig::default()
                },
            );
            assert!(trace.converged, "{policy:?} did not converge");
            assert!(ctx.to_assignment().validate(&inst).is_ok());
        }
    }

    #[test]
    fn iegt_is_fairer_than_greedy_on_average() {
        // The paper's headline result: IEGT's payoff difference is a small
        // fraction of GTA's (Figures 4–9). Check the direction across seeds.
        let mut iegt_total = 0.0;
        let mut gta_total = 0.0;
        for seed in 0..6 {
            let inst = instance(200 + seed);
            let s = space(&inst);
            let ws = s.view.workers.clone();

            let mut g = GameContext::new(&s);
            crate::gta::gta(&mut g);
            gta_total += g.to_assignment().fairness(&inst, &ws).payoff_difference;

            let mut e = GameContext::new(&s);
            iegt(&mut e, &IegtConfig::default());
            iegt_total += e.to_assignment().fairness(&inst, &ws).payoff_difference;
        }
        assert!(
            iegt_total < gta_total,
            "IEGT mean diff {iegt_total} vs GTA {gta_total}"
        );
    }
}

//! FGT — the Fairness-aware Game-Theoretic approach (Algorithm 2).
//!
//! The FTA problem is formulated as an n-player strategic game whose
//! utility is the Inequity Aversion based Utility (Equation 5). The game is
//! an exact potential game with potential `Φ = Σ_i IAU_i` (Lemma 2), and
//! FGT runs the classical best-response mechanism: after a random
//! initialisation with single-delivery-point strategies, workers take
//! turns adopting the strategy (an available VDPS or `null`) that maximises
//! their IAU given everyone else's current choice, until a full round
//! passes with no change — a pure Nash equilibrium.
//!
//! Strategy switches require a *strict* utility improvement (beyond
//! [`FgtConfig::min_improvement`]); together with the round cap this
//! guarantees termination even in the degenerate tie cases the paper's
//! potential argument glosses over.

use crate::context::GameContext;
use crate::random::random_init;
use crate::stats::BestResponseStats;
use crate::trace::ConvergenceTrace;
use fta_core::iau::{IauEvaluator, IauParams, RivalSet};
use fta_core::CancelToken;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the best-response loop evaluates candidate utilities.
///
/// Both engines visit the same candidates in the same order and apply the
/// same strict-improvement rule, so they compute identical equilibria for a
/// fixed seed (asserted by the engine-equivalence tests); they differ only
/// in evaluator maintenance cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BestResponseEngine {
    /// Rebuild a sorted [`IauEvaluator`] over the `n−1` rivals for every
    /// worker in every round: `O(n² log n)` maintenance per round.
    Rebuild,
    /// Maintain one [`RivalSet`] across the whole run and update it with
    /// two `O(log n)` point operations per worker turn: `O(n log n)`
    /// maintenance per round.
    #[default]
    Incremental,
}

/// Configuration of the FGT best-response run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FgtConfig {
    /// Inequity-aversion weights (the paper uses `α = β = 0.5`).
    pub iau: IauParams,
    /// Cap on best-response rounds.
    pub max_rounds: usize,
    /// Seed of the random initialisation.
    pub seed: u64,
    /// Minimal utility gain required to switch strategies. Positive values
    /// also serve as the paper's proposed early-termination refinement.
    pub min_improvement: f64,
    /// Additional restarts from fresh random initialisations. The game can
    /// have many pure Nash equilibria of very different fairness; each
    /// restart converges to one, and the equilibrium best under the FTA
    /// objective (lexicographically minimal payoff difference, then maximal
    /// average payoff) is kept.
    pub restarts: usize,
    /// Utility-evaluation engine for the best-response loop.
    pub engine: BestResponseEngine,
    /// Capture the full payoff vector of every round in the trace
    /// ([`ConvergenceTrace::snapshots`]); off by default because it costs
    /// `O(n)` memory per round.
    pub snapshot_payoffs: bool,
}

impl Default for FgtConfig {
    fn default() -> Self {
        Self {
            iau: IauParams::default(),
            max_rounds: 200,
            seed: 0x4647_5421, // "FGT!"
            min_improvement: 1e-9,
            restarts: 2,
            engine: BestResponseEngine::default(),
            snapshot_payoffs: false,
        }
    }
}

/// The game's exact potential `Φ(st) = Σ_i IAU_i` (Lemma 2), computed in
/// `O(n log n)` via the identity `Σ_i MP_i = Σ_i LP_i = Σ_{i<j} |P_i−P_j|`:
///
/// `Φ = Σ P_i − (α+β) · n · P_dif / 2`.
#[must_use]
pub fn iau_potential(payoffs: &[f64], params: IauParams) -> f64 {
    let n = payoffs.len();
    if n < 2 {
        return payoffs.iter().sum();
    }
    let total: f64 = payoffs.iter().sum();
    let p_dif = fta_core::fairness::payoff_difference(payoffs);
    total - (params.alpha + params.beta) * n as f64 * p_dif / 2.0
}

/// Runs FGT on a fresh context; returns the convergence trace of the kept
/// run. The final selection (a pure Nash equilibrium unless the round cap
/// was hit) is left in `ctx`. With `restarts > 0`, several equilibria are
/// computed from different random initialisations and the one best under
/// the FTA objective is kept.
pub fn fgt<'a>(ctx: &mut GameContext<'a>, config: &FgtConfig) -> ConvergenceTrace {
    fgt_bounded(ctx, config, None)
}

/// [`fgt`] under cooperative cancellation: the best-response loop checks
/// `cancel` once per round and between restarts, stops early when it
/// trips, and marks the trace [`ConvergenceTrace::cancelled`]. The
/// selection reached so far is kept (it is always a valid partial
/// assignment). `cancel = None` is bit-identical to [`fgt`].
pub fn fgt_bounded<'a>(
    ctx: &mut GameContext<'a>,
    config: &FgtConfig,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let mut total_stats = BestResponseStats::default();
    let mut best: Option<(GameContext<'a>, ConvergenceTrace, f64, f64)> = None;
    for attempt in 0..=config.restarts {
        let mut trial = GameContext::new(ctx.space());
        let trace = fgt_once(
            &mut trial,
            config,
            config.seed.wrapping_add(attempt as u64),
            cancel,
        );
        let cancelled = trace.cancelled;
        total_stats.merge(&trace.stats);
        let diff = fta_core::fairness::payoff_difference(trial.payoffs());
        let avg = fta_core::fairness::average_payoff(trial.payoffs());
        let improves = best.as_ref().is_none_or(|&(_, _, bd, ba)| {
            diff < bd - 1e-12 || ((diff - bd).abs() <= 1e-12 && avg > ba + 1e-12)
        });
        if improves {
            best = Some((trial, trace, diff, avg));
        }
        if cancelled {
            // No further restarts under an expired budget.
            break;
        }
    }
    let cut_short = cancel.is_some_and(CancelToken::is_cancelled);
    let (winner, mut trace, _, _) = best.expect("at least one attempt always runs");
    *ctx = winner;
    // The trace rounds describe the winning run, but the work counters
    // account for every restart performed — and cancellation is reported
    // even when the kept (earlier) run finished before the budget expired.
    trace.stats = total_stats;
    trace.cancelled = trace.cancelled || cut_short;
    trace
}

/// One best-response run from one random initialisation, dispatched to the
/// configured [`BestResponseEngine`].
fn fgt_once(
    ctx: &mut GameContext<'_>,
    config: &FgtConfig,
    seed: u64,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    match config.engine {
        BestResponseEngine::Rebuild => fgt_once_rebuild(ctx, config, seed, cancel),
        BestResponseEngine::Incremental => fgt_once_incremental(ctx, config, seed, cancel),
    }
}

fn new_trace(config: &FgtConfig) -> ConvergenceTrace {
    if config.snapshot_payoffs {
        ConvergenceTrace::with_snapshots()
    } else {
        ConvergenceTrace::default()
    }
}

/// Legacy engine: a fresh [`IauEvaluator`] per worker per round.
fn fgt_once_rebuild(
    ctx: &mut GameContext<'_>,
    config: &FgtConfig,
    seed: u64,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    random_init(ctx, &mut rng);

    let mut trace = new_trace(config);
    trace.record(
        0,
        0,
        ctx.payoffs(),
        iau_potential(ctx.payoffs(), config.iau),
    );

    let n = ctx.n_workers();
    for round in 1..=config.max_rounds {
        trace.stats.rounds += 1;
        let mut moves = 0;
        for local in 0..n {
            // Rivals' payoffs stay fixed while this worker deliberates.
            let others: Vec<f64> = (0..n)
                .filter(|&j| j != local)
                .map(|j| ctx.payoff(j))
                .collect();
            let eval = IauEvaluator::new(&others, config.iau);
            trace.stats.evaluator_builds += 1;

            let current_utility = eval.eval(ctx.payoff(local));
            // Candidate set: null (payoff 0) plus every available VDPS.
            let mut best: Option<(Option<u32>, f64)> = Some((None, eval.eval(0.0)));
            trace.stats.candidate_evaluations += 2;
            for (idx, payoff) in ctx.available_strategies(local) {
                let u = eval.eval(payoff);
                trace.stats.candidate_evaluations += 1;
                if best.as_ref().is_none_or(|&(_, bu)| u > bu) {
                    best = Some((Some(idx), u));
                }
            }
            let (choice, utility) = best.expect("null is always a candidate");
            if utility > current_utility + config.min_improvement && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
                trace.stats.switches += 1;
                if choice.is_none() {
                    trace.stats.null_adoptions += 1;
                }
            }
        }
        trace.record(
            round,
            moves,
            ctx.payoffs(),
            iau_potential(ctx.payoffs(), config.iau),
        );
        if moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace
}

/// Incremental engine: one [`RivalSet`] maintained across the whole run.
///
/// Per worker turn the focal payoff is removed (the remaining contents are
/// exactly the rivals), candidates are evaluated, and the adopted payoff is
/// re-inserted — two `O(log n)` point updates instead of an `O(n log n)`
/// rebuild. The structure also keeps `P_dif`, the average, and the exact
/// potential `Φ` current, so the per-round trace entry is `O(1)`.
fn fgt_once_incremental(
    ctx: &mut GameContext<'_>,
    config: &FgtConfig,
    seed: u64,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    random_init(ctx, &mut rng);

    let mut trace = new_trace(config);
    let mut rivals = RivalSet::with_payoffs(ctx.payoffs(), config.iau);
    trace.stats.evaluator_builds += 1;
    trace.snapshot(ctx.payoffs());
    trace.record_summary(
        0,
        0,
        rivals.payoff_difference(),
        rivals.average(),
        rivals.potential(),
    );

    let n = ctx.n_workers();
    for round in 1..=config.max_rounds {
        trace.stats.rounds += 1;
        let mut moves = 0;
        for local in 0..n {
            let own = ctx.payoff(local);
            rivals.remove(own);
            trace.stats.evaluator_updates += 1;

            let current_utility = rivals.eval(own);
            let mut best: Option<(Option<u32>, f64)> = Some((None, rivals.eval(0.0)));
            trace.stats.candidate_evaluations += 2;
            for (idx, payoff) in ctx.available_strategies(local) {
                let u = rivals.eval(payoff);
                trace.stats.candidate_evaluations += 1;
                if best.as_ref().is_none_or(|&(_, bu)| u > bu) {
                    best = Some((Some(idx), u));
                }
            }
            let (choice, utility) = best.expect("null is always a candidate");
            if utility > current_utility + config.min_improvement && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
                trace.stats.switches += 1;
                if choice.is_none() {
                    trace.stats.null_adoptions += 1;
                }
            }
            rivals.insert(ctx.payoff(local));
            trace.stats.evaluator_updates += 1;
        }
        trace.snapshot(ctx.payoffs());
        trace.record_summary(
            round,
            moves,
            rivals.payoff_difference(),
            rivals.average(),
            rivals.potential(),
        );
        if moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 12,
                n_tasks: 120,
                n_delivery_points: 20,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn converges_to_a_nash_equilibrium() {
        let inst = instance(1);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let cfg = FgtConfig::default();
        let trace = fgt(&mut ctx, &cfg);
        assert!(trace.converged, "FGT did not converge");

        // Nash check: no worker can strictly improve unilaterally.
        let n = ctx.n_workers();
        for local in 0..n {
            let others: Vec<f64> = (0..n)
                .filter(|&j| j != local)
                .map(|j| ctx.payoff(j))
                .collect();
            let eval = IauEvaluator::new(&others, cfg.iau);
            let current = eval.eval(ctx.payoff(local));
            assert!(eval.eval(0.0) <= current + 1e-6, "null beats equilibrium");
            for (_, payoff) in ctx.available_strategies(local) {
                assert!(
                    eval.eval(payoff) <= current + 1e-6,
                    "worker {local} has a profitable deviation"
                );
            }
        }
    }

    #[test]
    fn produces_valid_assignment() {
        let inst = instance(2);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        fgt(&mut ctx, &FgtConfig::default());
        assert!(ctx.to_assignment().validate(&inst).is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = instance(3);
        let s = space(&inst);
        let run = |seed| {
            let mut ctx = GameContext::new(&s);
            let trace = fgt(
                &mut ctx,
                &FgtConfig {
                    seed,
                    ..FgtConfig::default()
                },
            );
            (ctx.to_assignment(), trace.len())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn trace_starts_at_round_zero_and_ends_quiet() {
        let inst = instance(4);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = fgt(&mut ctx, &FgtConfig::default());
        assert_eq!(trace.rounds[0].round, 0);
        assert_eq!(trace.last().unwrap().moves, 0);
    }

    #[test]
    fn potential_identity_matches_direct_sum() {
        use fta_core::iau::iau;
        let payoffs = [0.7, 2.1, 1.3, 4.0, 0.0];
        let params = IauParams {
            alpha: 0.4,
            beta: 0.7,
        };
        let direct: f64 = (0..payoffs.len())
            .map(|i| {
                let others: Vec<f64> = payoffs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                iau(payoffs[i], &others, params)
            })
            .sum();
        let fast = iau_potential(&payoffs, params);
        assert!((direct - fast).abs() < 1e-9, "{direct} vs {fast}");
    }

    #[test]
    fn zero_rounds_returns_the_random_initialisation() {
        let inst = instance(5);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = fgt(
            &mut ctx,
            &FgtConfig {
                max_rounds: 0,
                restarts: 0,
                ..FgtConfig::default()
            },
        );
        assert_eq!(trace.len(), 1, "only the initialisation round is recorded");
        assert!(!trace.converged);
        // Initialisation assigns only single-dp strategies.
        for local in 0..ctx.n_workers() {
            if let Some(idx) = ctx.selection(local) {
                assert_eq!(s.pool[idx as usize].len(), 1);
            }
        }
    }

    #[test]
    fn restarts_never_worsen_the_fta_objective() {
        for seed in 20..24 {
            let inst = instance(seed);
            let s = space(&inst);
            let ws = s.view.workers.clone();
            let diff_with = |restarts| {
                let mut ctx = GameContext::new(&s);
                fgt(
                    &mut ctx,
                    &FgtConfig {
                        restarts,
                        ..FgtConfig::default()
                    },
                );
                ctx.to_assignment().fairness(&inst, &ws).payoff_difference
            };
            // The restart set includes the single-run equilibrium, and the
            // selection keeps the min-diff one.
            assert!(diff_with(3) <= diff_with(0) + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn engines_compute_identical_equilibria() {
        // Acceptance: the incremental engine must reproduce the rebuild
        // engine's selections bit-identically for fixed seeds, across
        // several synthetic instances.
        for seed in [11, 12, 13, 14, 15] {
            let inst = instance(seed);
            let s = space(&inst);
            let run = |engine| {
                let mut ctx = GameContext::new(&s);
                let trace = fgt(
                    &mut ctx,
                    &FgtConfig {
                        engine,
                        ..FgtConfig::default()
                    },
                );
                (ctx.to_assignment(), trace.len(), trace.converged)
            };
            let (a_asg, a_len, a_conv) = run(BestResponseEngine::Rebuild);
            let (b_asg, b_len, b_conv) = run(BestResponseEngine::Incremental);
            assert_eq!(a_asg, b_asg, "seed {seed}: assignments diverge");
            assert_eq!(a_len, b_len, "seed {seed}: round counts diverge");
            assert_eq!(a_conv, b_conv, "seed {seed}: convergence diverges");
        }
    }

    #[test]
    fn engines_agree_on_search_work_but_not_maintenance() {
        let inst = instance(16);
        let s = space(&inst);
        let run = |engine| {
            let mut ctx = GameContext::new(&s);
            fgt(
                &mut ctx,
                &FgtConfig {
                    engine,
                    ..FgtConfig::default()
                },
            )
            .stats
        };
        let rebuild = run(BestResponseEngine::Rebuild);
        let incremental = run(BestResponseEngine::Incremental);
        // Identical search: same rounds, evaluations, and switches.
        assert_eq!(rebuild.rounds, incremental.rounds);
        assert_eq!(
            rebuild.candidate_evaluations,
            incremental.candidate_evaluations
        );
        assert_eq!(rebuild.switches, incremental.switches);
        assert_eq!(rebuild.null_adoptions, incremental.null_adoptions);
        // Different maintenance: n builds per round vs one per restart.
        let restarts = FgtConfig::default().restarts as u64 + 1;
        assert_eq!(incremental.evaluator_builds, restarts);
        assert_eq!(
            rebuild.evaluator_builds,
            rebuild.rounds * s.n_workers() as u64
        );
        assert_eq!(rebuild.evaluator_updates, 0);
        assert!(incremental.evaluator_updates > 0);
    }

    #[test]
    fn payoff_snapshots_are_opt_in() {
        let inst = instance(17);
        let s = space(&inst);
        let lean = {
            let mut ctx = GameContext::new(&s);
            fgt(
                &mut ctx,
                &FgtConfig {
                    restarts: 0,
                    ..FgtConfig::default()
                },
            )
        };
        assert!(lean.snapshots.is_empty());
        let full = {
            let mut ctx = GameContext::new(&s);
            fgt(
                &mut ctx,
                &FgtConfig {
                    restarts: 0,
                    snapshot_payoffs: true,
                    ..FgtConfig::default()
                },
            )
        };
        assert_eq!(full.snapshots.len(), full.rounds.len());
        assert!(full
            .snapshots
            .iter()
            .all(|snap| snap.len() == s.n_workers()));
        // Same equilibrium either way.
        assert_eq!(lean.rounds, full.rounds);
    }

    #[test]
    fn fgt_is_fairer_than_greedy_on_average() {
        // FGT's payoff difference should generally be no worse than GTA's
        // (the paper's Figures 4–9 show a clear gap). The old form of this
        // test summed six seeds and compared the totals, which a single
        // adversarial instance could tip over the 1.05 ratio whenever the
        // algorithms shifted by an ulp. Judge per seed over a wider pool
        // instead: FGT must match or beat GTA (within 5% slack) on a clear
        // majority of instances.
        let seeds = 100u64..110;
        let total = seeds.end - seeds.start;
        let mut wins = 0;
        for seed in seeds {
            let inst = instance(seed);
            let s = space(&inst);
            let ws: Vec<_> = s.view.workers.clone();

            let mut g = GameContext::new(&s);
            crate::gta::gta(&mut g);
            let gta_diff = g.to_assignment().fairness(&inst, &ws).payoff_difference;

            let mut f = GameContext::new(&s);
            fgt(&mut f, &FgtConfig::default());
            let fgt_diff = f.to_assignment().fairness(&inst, &ws).payoff_difference;

            if fgt_diff <= gta_diff * 1.05 + 1e-9 {
                wins += 1;
            }
        }
        assert!(
            wins * 3 >= total * 2,
            "FGT fairer than GTA on only {wins}/{total} seeds"
        );
    }
}

//! FGT — the Fairness-aware Game-Theoretic approach (Algorithm 2).
//!
//! The FTA problem is formulated as an n-player strategic game whose
//! utility is the Inequity Aversion based Utility (Equation 5). The game is
//! an exact potential game with potential `Φ = Σ_i IAU_i` (Lemma 2), and
//! FGT runs the classical best-response mechanism: after a random
//! initialisation with single-delivery-point strategies, workers take
//! turns adopting the strategy (an available VDPS or `null`) that maximises
//! their IAU given everyone else's current choice, until a full round
//! passes with no change — a pure Nash equilibrium.
//!
//! Strategy switches require a *strict* utility improvement (beyond
//! [`FgtConfig::min_improvement`]); together with the round cap this
//! guarantees termination even in the degenerate tie cases the paper's
//! potential argument glosses over.

use crate::context::GameContext;
use crate::random::random_init;
use crate::stats::BestResponseStats;
use crate::trace::ConvergenceTrace;
use fta_core::iau::{IauEvaluator, IauParams, RivalSet};
use fta_core::CancelToken;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the best-response loop evaluates candidate utilities.
///
/// All engines apply the same strict-improvement rule and produce the same
/// sequence of strategy switches for a fixed seed (asserted by the
/// engine-equivalence tests and proptests); they differ only in how much
/// work a worker's deliberation costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BestResponseEngine {
    /// Rebuild a sorted [`IauEvaluator`] over the `n−1` rivals for every
    /// worker in every round: `O(n² log n)` maintenance per round.
    Rebuild,
    /// Maintain one [`RivalSet`] across the whole run and update it with
    /// two `O(log n)` point operations per worker turn: `O(n log n)`
    /// maintenance per round — but still evaluate the IAU of *every*
    /// available candidate.
    Incremental,
    /// Monotone fast path: because the IAU is strictly increasing in the
    /// own payoff whenever `β < 1` and `α ≥ 0` (see
    /// [`fastpath_sound`]), the best response is simply the
    /// highest-payoff available strategy — a first-hit scan over the
    /// payoff-descending slot order with early exit and exactly two IAU
    /// evaluations per turn. When the IAU parameters leave the sound
    /// regime the run transparently falls back to the [`Incremental`]
    /// loop, bit-identically (observable as
    /// `BestResponseStats::fastpath_rounds == 0`).
    ///
    /// [`Incremental`]: BestResponseEngine::Incremental
    #[default]
    FastPath,
}

impl BestResponseEngine {
    /// Stable lowercase name used by the CLI and the solve report.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Rebuild => "exhaustive",
            Self::Incremental => "incremental",
            Self::FastPath => "fastpath",
        }
    }
}

/// Whether the monotone fast path is sound for the given IAU weights.
///
/// # Monotonicity proof
///
/// Fix the rivals' payoffs `r_1 ≤ … ≤ r_{n−1}` and view Equation 5 as a
/// function of the own payoff `p`:
///
/// ```text
/// U(p) = p − α/(n−1) · Σ_{r_j > p} (r_j − p) − β/(n−1) · Σ_{r_j < p} (p − r_j)
/// ```
///
/// `U` is continuous and piecewise linear in `p`, with kinks only at rival
/// payoffs. On any open interval between consecutive rivals let `k_above`
/// (`k_below`) be the number of rivals strictly above (below) `p`; then
///
/// ```text
/// dU/dp = 1 + α·k_above/(n−1) − β·k_below/(n−1).
/// ```
///
/// Since `k_below ≤ n−1` and `k_above ≥ 0`, `dU/dp ≥ 1 − β` whenever
/// `α ≥ 0`; for `β < 1` every linear piece therefore has strictly positive
/// slope and `U` is *strictly increasing* in `p`. The argmax of `U` over
/// the candidate set `{0} ∪ {available payoffs}` is then exactly the
/// maximum-payoff candidate, and the exhaustive engines' tie-break (first
/// strict maximum over null followed by candidates in ascending pool-index
/// order) is reproduced by scanning the payoff-descending order — ties
/// sorted by ascending pool index — and taking the first available hit,
/// adopting null unless its payoff strictly exceeds 0. The same argument
/// applies to the priority-aware IAU, which evaluates inequity on the
/// normalised payoffs `q = p/ρ` with `ρ > 0` (a strictly increasing map),
/// and trivially to IEGT's raw-payoff utilities.
///
/// The equivalence is exact in real arithmetic; in floating point it holds
/// unless two candidate utilities within one turn round to the *same* f64
/// despite distinct payoffs, which requires payoff gaps on the order of an
/// ulp of the inequity sums (property-tested never to occur on generated
/// instances).
#[must_use]
pub fn fastpath_sound(params: IauParams) -> bool {
    params.beta < 1.0 && params.alpha >= 0.0
}

/// Configuration of the FGT best-response run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FgtConfig {
    /// Inequity-aversion weights (the paper uses `α = β = 0.5`).
    pub iau: IauParams,
    /// Cap on best-response rounds.
    pub max_rounds: usize,
    /// Seed of the random initialisation.
    pub seed: u64,
    /// Minimal utility gain required to switch strategies. Positive values
    /// also serve as the paper's proposed early-termination refinement.
    pub min_improvement: f64,
    /// Additional restarts from fresh random initialisations. The game can
    /// have many pure Nash equilibria of very different fairness; each
    /// restart converges to one, and the equilibrium best under the FTA
    /// objective (lexicographically minimal payoff difference, then maximal
    /// average payoff) is kept.
    pub restarts: usize,
    /// Utility-evaluation engine for the best-response loop.
    pub engine: BestResponseEngine,
    /// Capture the full payoff vector of every round in the trace
    /// ([`ConvergenceTrace::snapshots`]); off by default because it costs
    /// `O(n)` memory per round.
    pub snapshot_payoffs: bool,
}

impl Default for FgtConfig {
    fn default() -> Self {
        Self {
            iau: IauParams::default(),
            max_rounds: 200,
            seed: 0x4647_5421, // "FGT!"
            min_improvement: 1e-9,
            restarts: 2,
            engine: BestResponseEngine::default(),
            snapshot_payoffs: false,
        }
    }
}

/// The game's exact potential `Φ(st) = Σ_i IAU_i` (Lemma 2), computed in
/// `O(n log n)` via the identity `Σ_i MP_i = Σ_i LP_i = Σ_{i<j} |P_i−P_j|`:
///
/// `Φ = Σ P_i − (α+β) · n · P_dif / 2`.
#[must_use]
pub fn iau_potential(payoffs: &[f64], params: IauParams) -> f64 {
    let n = payoffs.len();
    if n < 2 {
        return payoffs.iter().sum();
    }
    let total: f64 = payoffs.iter().sum();
    let p_dif = fta_core::fairness::payoff_difference(payoffs);
    total - (params.alpha + params.beta) * n as f64 * p_dif / 2.0
}

/// Runs FGT on a fresh context; returns the convergence trace of the kept
/// run. The final selection (a pure Nash equilibrium unless the round cap
/// was hit) is left in `ctx`. With `restarts > 0`, several equilibria are
/// computed from different random initialisations and the one best under
/// the FTA objective is kept.
pub fn fgt<'a>(ctx: &mut GameContext<'a>, config: &FgtConfig) -> ConvergenceTrace {
    fgt_bounded(ctx, config, None)
}

/// [`fgt`] under cooperative cancellation: the best-response loop checks
/// `cancel` once per round and between restarts, stops early when it
/// trips, and marks the trace [`ConvergenceTrace::cancelled`]. The
/// selection reached so far is kept (it is always a valid partial
/// assignment). `cancel = None` is bit-identical to [`fgt`].
pub fn fgt_bounded<'a>(
    ctx: &mut GameContext<'a>,
    config: &FgtConfig,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let mut total_stats = BestResponseStats::default();
    let mut best: Option<(GameContext<'a>, ConvergenceTrace, f64, f64)> = None;
    for attempt in 0..=config.restarts {
        let mut trial = GameContext::new(ctx.space());
        let trace = fgt_once(
            &mut trial,
            config,
            Some(config.seed.wrapping_add(attempt as u64)),
            cancel,
        );
        let cancelled = trace.cancelled;
        total_stats.merge(&trace.stats);
        let diff = fta_core::fairness::payoff_difference(trial.payoffs());
        let avg = fta_core::fairness::average_payoff(trial.payoffs());
        let improves = best.as_ref().is_none_or(|&(_, _, bd, ba)| {
            diff < bd - 1e-12 || ((diff - bd).abs() <= 1e-12 && avg > ba + 1e-12)
        });
        if improves {
            best = Some((trial, trace, diff, avg));
        }
        if cancelled {
            // No further restarts under an expired budget.
            break;
        }
    }
    let cut_short = cancel.is_some_and(CancelToken::is_cancelled);
    let (winner, mut trace, _, _) = best.expect("at least one attempt always runs");
    *ctx = winner;
    // The trace rounds describe the winning run, but the work counters
    // account for every restart performed — and cancellation is reported
    // even when the kept (earlier) run finished before the budget expired.
    trace.stats = total_stats;
    trace.cancelled = trace.cancelled || cut_short;
    trace
}

/// [`fgt_bounded`] warm-started from a cached strategy profile (see
/// [`crate::warm`]): the profile is replayed onto `ctx` (invalid entries
/// dropped) and a *single* best-response run continues from there — no
/// random initialisation and no restarts, since the whole point of the
/// warm start is to converge in the few rounds the churn actually
/// perturbed. The selection is left in `ctx`; the replay tally is
/// returned alongside the trace.
///
/// When `profile` is the equilibrium of an identical space, the run
/// performs zero switches and the outcome is bit-identical to that
/// equilibrium (property-tested).
pub fn fgt_warm_bounded(
    ctx: &mut GameContext<'_>,
    config: &FgtConfig,
    profile: &[Option<u32>],
    cancel: Option<&CancelToken>,
) -> (ConvergenceTrace, crate::warm::WarmStart) {
    let warm = crate::warm::warm_init(ctx, profile);
    let trace = fgt_once(ctx, config, None, cancel);
    (trace, warm)
}

/// One best-response run, dispatched to the configured
/// [`BestResponseEngine`]. `init = Some(seed)` randomly initialises the
/// context first (the cold path); `None` continues from whatever selection
/// `ctx` already holds (the warm path).
fn fgt_once(
    ctx: &mut GameContext<'_>,
    config: &FgtConfig,
    init: Option<u64>,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    match config.engine {
        BestResponseEngine::Rebuild => fgt_once_rebuild(ctx, config, init, cancel),
        BestResponseEngine::Incremental => fgt_once_incremental(ctx, config, init, cancel),
        BestResponseEngine::FastPath => {
            if fastpath_sound(config.iau) {
                fgt_once_fastpath(ctx, config, init, cancel)
            } else {
                // Out of the monotone regime: fall back bit-identically to
                // exhaustive IAU evaluation (fastpath_rounds stays 0).
                fgt_once_incremental(ctx, config, init, cancel)
            }
        }
    }
}

fn new_trace(config: &FgtConfig) -> ConvergenceTrace {
    if config.snapshot_payoffs {
        ConvergenceTrace::with_snapshots()
    } else {
        ConvergenceTrace::default()
    }
}

/// Legacy engine: a fresh [`IauEvaluator`] per worker per round.
fn fgt_once_rebuild(
    ctx: &mut GameContext<'_>,
    config: &FgtConfig,
    init: Option<u64>,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let index_updates_before = ctx.index_updates();
    if let Some(seed) = init {
        let mut rng = StdRng::seed_from_u64(seed);
        random_init(ctx, &mut rng);
    }

    let mut trace = new_trace(config);
    trace.record(
        0,
        0,
        ctx.payoffs(),
        iau_potential(ctx.payoffs(), config.iau),
    );

    let n = ctx.n_workers();
    for round in 1..=config.max_rounds {
        trace.stats.rounds += 1;
        let mut moves = 0;
        for local in 0..n {
            // Rivals' payoffs stay fixed while this worker deliberates.
            let others: Vec<f64> = (0..n)
                .filter(|&j| j != local)
                .map(|j| ctx.payoff(j))
                .collect();
            let eval = IauEvaluator::new(&others, config.iau);
            trace.stats.evaluator_builds += 1;

            let current_utility = eval.eval(ctx.payoff(local));
            // Candidate set: null (payoff 0) plus every available VDPS.
            // The availability filter probes the worker's entire list.
            trace.stats.candidates_scanned += ctx.space().strategy_count(local) as u64;
            let mut best: Option<(Option<u32>, f64)> = Some((None, eval.eval(0.0)));
            trace.stats.candidate_evaluations += 2;
            for (idx, payoff) in ctx.available_strategies(local) {
                let u = eval.eval(payoff);
                trace.stats.candidate_evaluations += 1;
                if best.as_ref().is_none_or(|&(_, bu)| u > bu) {
                    best = Some((Some(idx), u));
                }
            }
            let (choice, utility) = best.expect("null is always a candidate");
            if utility > current_utility + config.min_improvement && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
                trace.stats.switches += 1;
                if choice.is_none() {
                    trace.stats.null_adoptions += 1;
                }
            }
        }
        trace.record(
            round,
            moves,
            ctx.payoffs(),
            iau_potential(ctx.payoffs(), config.iau),
        );
        if moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace.stats.index_updates += ctx.index_updates() - index_updates_before;
    trace
}

/// Incremental engine: one [`RivalSet`] maintained across the whole run.
///
/// Per worker turn the focal payoff is removed (the remaining contents are
/// exactly the rivals), candidates are evaluated, and the adopted payoff is
/// re-inserted — two `O(log n)` point updates instead of an `O(n log n)`
/// rebuild. The structure also keeps `P_dif`, the average, and the exact
/// potential `Φ` current, so the per-round trace entry is `O(1)`.
fn fgt_once_incremental(
    ctx: &mut GameContext<'_>,
    config: &FgtConfig,
    init: Option<u64>,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let index_updates_before = ctx.index_updates();
    if let Some(seed) = init {
        let mut rng = StdRng::seed_from_u64(seed);
        random_init(ctx, &mut rng);
    }

    let mut trace = new_trace(config);
    let mut rivals = RivalSet::with_payoffs(ctx.payoffs(), config.iau);
    trace.stats.evaluator_builds += 1;
    trace.snapshot(ctx.payoffs());
    trace.record_summary(
        0,
        0,
        rivals.payoff_difference(),
        rivals.average(),
        rivals.potential(),
    );

    let n = ctx.n_workers();
    for round in 1..=config.max_rounds {
        trace.stats.rounds += 1;
        let mut moves = 0;
        for local in 0..n {
            let own = ctx.payoff(local);
            rivals.remove(own);
            trace.stats.evaluator_updates += 1;

            let current_utility = rivals.eval(own);
            trace.stats.candidates_scanned += ctx.space().strategy_count(local) as u64;
            let mut best: Option<(Option<u32>, f64)> = Some((None, rivals.eval(0.0)));
            trace.stats.candidate_evaluations += 2;
            for (idx, payoff) in ctx.available_strategies(local) {
                let u = rivals.eval(payoff);
                trace.stats.candidate_evaluations += 1;
                if best.as_ref().is_none_or(|&(_, bu)| u > bu) {
                    best = Some((Some(idx), u));
                }
            }
            let (choice, utility) = best.expect("null is always a candidate");
            if utility > current_utility + config.min_improvement && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
                trace.stats.switches += 1;
                if choice.is_none() {
                    trace.stats.null_adoptions += 1;
                }
            }
            rivals.insert(ctx.payoff(local));
            trace.stats.evaluator_updates += 1;
        }
        trace.snapshot(ctx.payoffs());
        trace.record_summary(
            round,
            moves,
            rivals.payoff_difference(),
            rivals.average(),
            rivals.potential(),
        );
        if moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace.stats.index_updates += ctx.index_updates() - index_updates_before;
    trace
}

/// Monotone fast-path engine: one [`RivalSet`] maintained across the run
/// (exactly like the incremental engine, so the trace summaries are
/// bit-identical), but the best response is found *without* evaluating the
/// IAU of every candidate: by the monotonicity argument documented on
/// [`fastpath_sound`], the utility-argmax equals the payoff-argmax, so a
/// first-hit scan over the payoff-descending slot order (early exit at the
/// first available slot) identifies the candidate, and only two IAU
/// evaluations remain per turn — the current utility and the candidate's.
/// The strict-improvement switch rule is then applied to the same floats
/// the exhaustive engines would have computed.
///
/// Only dispatched when [`fastpath_sound`] holds for the configured IAU
/// weights; [`fgt_once`] otherwise falls back to the incremental loop.
fn fgt_once_fastpath(
    ctx: &mut GameContext<'_>,
    config: &FgtConfig,
    init: Option<u64>,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    debug_assert!(fastpath_sound(config.iau));
    let index_updates_before = ctx.index_updates();
    if let Some(seed) = init {
        let mut rng = StdRng::seed_from_u64(seed);
        random_init(ctx, &mut rng);
    }

    let mut trace = new_trace(config);
    let mut rivals = RivalSet::with_payoffs(ctx.payoffs(), config.iau);
    trace.stats.evaluator_builds += 1;
    trace.snapshot(ctx.payoffs());
    trace.record_summary(
        0,
        0,
        rivals.payoff_difference(),
        rivals.average(),
        rivals.potential(),
    );

    let n = ctx.n_workers();
    for round in 1..=config.max_rounds {
        trace.stats.rounds += 1;
        trace.stats.fastpath_rounds += 1;
        let mut moves = 0;
        for local in 0..n {
            let own = ctx.payoff(local);
            rivals.remove(own);
            trace.stats.evaluator_updates += 1;

            let current_utility = rivals.eval(own);
            // Monotone best response: highest-payoff available strategy,
            // null unless its payoff strictly exceeds 0.
            let (found, scan) = ctx.best_available_desc(local);
            trace.stats.candidates_scanned += scan.scanned;
            if scan.early_exit {
                trace.stats.early_exits += 1;
            }
            let (choice, utility) = match found {
                Some((idx, payoff)) if payoff > 0.0 => (Some(idx), rivals.eval(payoff)),
                _ => (None, rivals.eval(0.0)),
            };
            trace.stats.candidate_evaluations += 2;
            if utility > current_utility + config.min_improvement && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
                trace.stats.switches += 1;
                if choice.is_none() {
                    trace.stats.null_adoptions += 1;
                }
            }
            rivals.insert(ctx.payoff(local));
            trace.stats.evaluator_updates += 1;
        }
        trace.snapshot(ctx.payoffs());
        trace.record_summary(
            round,
            moves,
            rivals.payoff_difference(),
            rivals.average(),
            rivals.potential(),
        );
        if moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace.stats.index_updates += ctx.index_updates() - index_updates_before;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 12,
                n_tasks: 120,
                n_delivery_points: 20,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn engines_agree_when_the_conflict_index_is_active() {
        // A sparse-but-large space that clears BOTH halves of the conflict
        // index crossover: `max_dp = 1` makes every strategy a singleton,
        // so with ~120 delivery points and ~60 workers the slot count
        // exceeds CONFLICT_INDEX_MIN_SLOTS while each bit's posting list
        // stays around the worker count (<= CONFLICT_INDEX_MAX_SLOTS_PER_BIT).
        let inst = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 60,
                n_tasks: 1_200,
                n_delivery_points: 120,
                max_dp: 1,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            9,
        );
        let views = inst.center_views();
        let s = StrategySpace::build(&inst, &views[0], &VdpsConfig::unpruned(1));
        assert!(
            s.total_slots() >= fta_vdps::CONFLICT_INDEX_MIN_SLOTS,
            "fixture too small ({} slots) to activate the index",
            s.total_slots()
        );
        assert!(
            s.conflict_sets().is_some(),
            "fixture too dense to activate the index"
        );
        let run = |engine| {
            let mut ctx = GameContext::new(&s);
            let trace = fgt(
                &mut ctx,
                &FgtConfig {
                    engine,
                    ..FgtConfig::default()
                },
            );
            (ctx.to_assignment(), trace)
        };
        let (inc_asg, inc) = run(BestResponseEngine::Incremental);
        let (fast_asg, fast) = run(BestResponseEngine::FastPath);
        assert_eq!(inc_asg, fast_asg, "index-backed engines diverged");
        assert_eq!(inc.len(), fast.len());
        // The index really was maintained: strategy switches propagated
        // conflict-counter deltas through the inverted bit lists.
        assert!(inc.stats.switches > 0);
        assert!(inc.stats.index_updates > 0, "index never updated");
        assert_eq!(inc.stats.index_updates, fast.stats.index_updates);
    }

    #[test]
    fn converges_to_a_nash_equilibrium() {
        let inst = instance(1);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let cfg = FgtConfig::default();
        let trace = fgt(&mut ctx, &cfg);
        assert!(trace.converged, "FGT did not converge");

        // Nash check: no worker can strictly improve unilaterally.
        let n = ctx.n_workers();
        for local in 0..n {
            let others: Vec<f64> = (0..n)
                .filter(|&j| j != local)
                .map(|j| ctx.payoff(j))
                .collect();
            let eval = IauEvaluator::new(&others, cfg.iau);
            let current = eval.eval(ctx.payoff(local));
            assert!(eval.eval(0.0) <= current + 1e-6, "null beats equilibrium");
            for (_, payoff) in ctx.available_strategies(local) {
                assert!(
                    eval.eval(payoff) <= current + 1e-6,
                    "worker {local} has a profitable deviation"
                );
            }
        }
    }

    #[test]
    fn produces_valid_assignment() {
        let inst = instance(2);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        fgt(&mut ctx, &FgtConfig::default());
        assert!(ctx.to_assignment().validate(&inst).is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = instance(3);
        let s = space(&inst);
        let run = |seed| {
            let mut ctx = GameContext::new(&s);
            let trace = fgt(
                &mut ctx,
                &FgtConfig {
                    seed,
                    ..FgtConfig::default()
                },
            );
            (ctx.to_assignment(), trace.len())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn trace_starts_at_round_zero_and_ends_quiet() {
        let inst = instance(4);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = fgt(&mut ctx, &FgtConfig::default());
        assert_eq!(trace.rounds[0].round, 0);
        assert_eq!(trace.last().unwrap().moves, 0);
    }

    #[test]
    fn potential_identity_matches_direct_sum() {
        use fta_core::iau::iau;
        let payoffs = [0.7, 2.1, 1.3, 4.0, 0.0];
        let params = IauParams {
            alpha: 0.4,
            beta: 0.7,
        };
        let direct: f64 = (0..payoffs.len())
            .map(|i| {
                let others: Vec<f64> = payoffs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                iau(payoffs[i], &others, params)
            })
            .sum();
        let fast = iau_potential(&payoffs, params);
        assert!((direct - fast).abs() < 1e-9, "{direct} vs {fast}");
    }

    #[test]
    fn zero_rounds_returns_the_random_initialisation() {
        let inst = instance(5);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = fgt(
            &mut ctx,
            &FgtConfig {
                max_rounds: 0,
                restarts: 0,
                ..FgtConfig::default()
            },
        );
        assert_eq!(trace.len(), 1, "only the initialisation round is recorded");
        assert!(!trace.converged);
        // Initialisation assigns only single-dp strategies.
        for local in 0..ctx.n_workers() {
            if let Some(idx) = ctx.selection(local) {
                assert_eq!(s.pool[idx as usize].len(), 1);
            }
        }
    }

    #[test]
    fn restarts_never_worsen_the_fta_objective() {
        for seed in 20..24 {
            let inst = instance(seed);
            let s = space(&inst);
            let ws = s.view.workers.clone();
            let diff_with = |restarts| {
                let mut ctx = GameContext::new(&s);
                fgt(
                    &mut ctx,
                    &FgtConfig {
                        restarts,
                        ..FgtConfig::default()
                    },
                );
                ctx.to_assignment().fairness(&inst, &ws).payoff_difference
            };
            // The restart set includes the single-run equilibrium, and the
            // selection keeps the min-diff one.
            assert!(diff_with(3) <= diff_with(0) + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn engines_compute_identical_equilibria() {
        // Acceptance: the incremental engine must reproduce the rebuild
        // engine's selections bit-identically for fixed seeds, across
        // several synthetic instances.
        for seed in [11, 12, 13, 14, 15] {
            let inst = instance(seed);
            let s = space(&inst);
            let run = |engine| {
                let mut ctx = GameContext::new(&s);
                let trace = fgt(
                    &mut ctx,
                    &FgtConfig {
                        engine,
                        ..FgtConfig::default()
                    },
                );
                (ctx.to_assignment(), trace.len(), trace.converged)
            };
            let (a_asg, a_len, a_conv) = run(BestResponseEngine::Rebuild);
            let (b_asg, b_len, b_conv) = run(BestResponseEngine::Incremental);
            assert_eq!(a_asg, b_asg, "seed {seed}: assignments diverge");
            assert_eq!(a_len, b_len, "seed {seed}: round counts diverge");
            assert_eq!(a_conv, b_conv, "seed {seed}: convergence diverges");
        }
    }

    #[test]
    fn engines_agree_on_search_work_but_not_maintenance() {
        let inst = instance(16);
        let s = space(&inst);
        let run = |engine| {
            let mut ctx = GameContext::new(&s);
            fgt(
                &mut ctx,
                &FgtConfig {
                    engine,
                    ..FgtConfig::default()
                },
            )
            .stats
        };
        let rebuild = run(BestResponseEngine::Rebuild);
        let incremental = run(BestResponseEngine::Incremental);
        // Identical search: same rounds, evaluations, and switches.
        assert_eq!(rebuild.rounds, incremental.rounds);
        assert_eq!(
            rebuild.candidate_evaluations,
            incremental.candidate_evaluations
        );
        assert_eq!(rebuild.switches, incremental.switches);
        assert_eq!(rebuild.null_adoptions, incremental.null_adoptions);
        // Different maintenance: n builds per round vs one per restart.
        let restarts = FgtConfig::default().restarts as u64 + 1;
        assert_eq!(incremental.evaluator_builds, restarts);
        assert_eq!(
            rebuild.evaluator_builds,
            rebuild.rounds * s.n_workers() as u64
        );
        assert_eq!(rebuild.evaluator_updates, 0);
        assert!(incremental.evaluator_updates > 0);
    }

    #[test]
    fn fastpath_engine_matches_both_exhaustive_engines() {
        // Tentpole acceptance: identical selections, traces, and payoffs
        // across all three engines for fixed seeds (β = 0.5 < 1).
        for seed in [11, 12, 13, 14, 15] {
            let inst = instance(seed);
            let s = space(&inst);
            let run = |engine| {
                let mut ctx = GameContext::new(&s);
                let trace = fgt(
                    &mut ctx,
                    &FgtConfig {
                        engine,
                        ..FgtConfig::default()
                    },
                );
                let payoffs: Vec<u64> = ctx.payoffs().iter().map(|p| p.to_bits()).collect();
                (ctx.to_assignment(), trace.rounds, trace.converged, payoffs)
            };
            let (r_asg, r_rounds, r_conv, r_pay) = run(BestResponseEngine::Rebuild);
            let (i_asg, i_rounds, i_conv, i_pay) = run(BestResponseEngine::Incremental);
            let (f_asg, f_rounds, f_conv, f_pay) = run(BestResponseEngine::FastPath);
            assert_eq!(r_asg, f_asg, "seed {seed}: fastpath vs rebuild diverge");
            assert_eq!(i_asg, f_asg, "seed {seed}: fastpath vs incremental diverge");
            assert_eq!(i_rounds, f_rounds, "seed {seed}: round summaries diverge");
            assert_eq!(r_rounds.len(), f_rounds.len());
            assert_eq!((r_conv, i_conv), (f_conv, f_conv));
            assert_eq!(r_pay, f_pay, "seed {seed}: payoffs not bit-identical");
            assert_eq!(i_pay, f_pay);
        }
    }

    #[test]
    fn fastpath_scans_fewer_candidates_and_counts_rounds() {
        let inst = instance(16);
        let s = space(&inst);
        let run = |engine| {
            let mut ctx = GameContext::new(&s);
            fgt(
                &mut ctx,
                &FgtConfig {
                    engine,
                    ..FgtConfig::default()
                },
            )
            .stats
        };
        let incremental = run(BestResponseEngine::Incremental);
        let fast = run(BestResponseEngine::FastPath);
        assert_eq!(incremental.fastpath_rounds, 0);
        assert_eq!(incremental.early_exits, 0);
        assert_eq!(fast.fastpath_rounds, fast.rounds);
        assert_eq!(fast.rounds, incremental.rounds);
        assert_eq!(fast.switches, incremental.switches);
        assert!(fast.candidates_scanned > 0);
        assert!(
            fast.candidates_scanned < incremental.candidates_scanned,
            "fast path scanned {} vs exhaustive {}",
            fast.candidates_scanned,
            incremental.candidates_scanned
        );
        // Exactly two IAU evaluations per worker turn on the fast path.
        assert_eq!(
            fast.candidate_evaluations,
            2 * fast.rounds * s.n_workers() as u64
        );
    }

    #[test]
    fn unsound_iau_weights_fall_back_to_exhaustive_evaluation() {
        // β ≥ 1 breaks monotonicity (a worker can prefer a *lower* payoff
        // to reduce guilt), so the FastPath engine must run the exhaustive
        // loop — provably, via fastpath_rounds == 0 — and match the
        // Incremental engine bit-for-bit.
        assert!(!fastpath_sound(IauParams {
            alpha: 0.5,
            beta: 1.0
        }));
        assert!(!fastpath_sound(IauParams {
            alpha: -0.1,
            beta: 0.5
        }));
        assert!(fastpath_sound(IauParams {
            alpha: 0.0,
            beta: 0.999
        }));
        let inst = instance(18);
        let s = space(&inst);
        let guilty = IauParams {
            alpha: 0.5,
            beta: 1.3,
        };
        let run = |engine| {
            let mut ctx = GameContext::new(&s);
            let trace = fgt(
                &mut ctx,
                &FgtConfig {
                    engine,
                    iau: guilty,
                    ..FgtConfig::default()
                },
            );
            (ctx.to_assignment(), trace.rounds, trace.stats)
        };
        let (i_asg, i_rounds, i_stats) = run(BestResponseEngine::Incremental);
        let (f_asg, f_rounds, f_stats) = run(BestResponseEngine::FastPath);
        assert_eq!(f_stats.fastpath_rounds, 0, "fallback must not fast-path");
        assert_eq!(f_asg, i_asg);
        assert_eq!(f_rounds, i_rounds);
        assert_eq!(f_stats, i_stats);
    }

    #[test]
    fn payoff_snapshots_are_opt_in() {
        let inst = instance(17);
        let s = space(&inst);
        let lean = {
            let mut ctx = GameContext::new(&s);
            fgt(
                &mut ctx,
                &FgtConfig {
                    restarts: 0,
                    ..FgtConfig::default()
                },
            )
        };
        assert!(lean.snapshots.is_empty());
        let full = {
            let mut ctx = GameContext::new(&s);
            fgt(
                &mut ctx,
                &FgtConfig {
                    restarts: 0,
                    snapshot_payoffs: true,
                    ..FgtConfig::default()
                },
            )
        };
        assert_eq!(full.snapshots.len(), full.rounds.len());
        assert!(full
            .snapshots
            .iter()
            .all(|snap| snap.len() == s.n_workers()));
        // Same equilibrium either way.
        assert_eq!(lean.rounds, full.rounds);
    }

    #[test]
    fn warm_start_from_equilibrium_is_a_no_op_and_bit_identical() {
        for seed in [21, 22, 23] {
            let inst = instance(seed);
            let s = space(&inst);
            let mut cold = GameContext::new(&s);
            let cold_trace = fgt(&mut cold, &FgtConfig::default());
            assert!(cold_trace.converged);
            let profile = crate::warm::profile_of(&cold);

            let mut warm = GameContext::new(&s);
            let (trace, stats) = fgt_warm_bounded(&mut warm, &FgtConfig::default(), &profile, None);
            assert!(stats.is_complete(), "seed {seed}: replay rejected entries");
            assert!(trace.converged, "seed {seed}: warm run did not converge");
            assert_eq!(trace.stats.switches, 0, "seed {seed}: equilibrium moved");
            assert_eq!(warm.to_assignment(), cold.to_assignment());
            let cold_bits: Vec<u64> = cold.payoffs().iter().map(|p| p.to_bits()).collect();
            let warm_bits: Vec<u64> = warm.payoffs().iter().map(|p| p.to_bits()).collect();
            assert_eq!(cold_bits, warm_bits, "seed {seed}: payoffs diverge");
        }
    }

    #[test]
    fn warm_start_from_garbage_still_converges_validly() {
        let inst = instance(24);
        let s = space(&inst);
        // A profile full of invalid indices degenerates to a null start.
        let profile = vec![Some(u32::MAX); s.n_workers()];
        let mut ctx = GameContext::new(&s);
        let (trace, stats) = fgt_warm_bounded(&mut ctx, &FgtConfig::default(), &profile, None);
        assert_eq!(stats.adopted, 0);
        assert_eq!(stats.rejected, s.n_workers());
        assert!(trace.converged);
        assert!(ctx.to_assignment().validate(&inst).is_ok());
    }

    #[test]
    fn fgt_is_fairer_than_greedy_on_average() {
        // FGT's payoff difference should generally be no worse than GTA's
        // (the paper's Figures 4–9 show a clear gap). The old form of this
        // test summed six seeds and compared the totals, which a single
        // adversarial instance could tip over the 1.05 ratio whenever the
        // algorithms shifted by an ulp. Judge per seed over a wider pool
        // instead: FGT must match or beat GTA (within 5% slack) on a clear
        // majority of instances.
        let seeds = 100u64..110;
        let total = seeds.end - seeds.start;
        let mut wins = 0;
        for seed in seeds {
            let inst = instance(seed);
            let s = space(&inst);
            let ws: Vec<_> = s.view.workers.clone();

            let mut g = GameContext::new(&s);
            crate::gta::gta(&mut g);
            let gta_diff = g.to_assignment().fairness(&inst, &ws).payoff_difference;

            let mut f = GameContext::new(&s);
            fgt(&mut f, &FgtConfig::default());
            let fgt_diff = f.to_assignment().fairness(&inst, &ws).payoff_difference;

            if fgt_diff <= gta_diff * 1.05 + 1e-9 {
                wins += 1;
            }
        }
        assert!(
            wins * 3 >= total * 2,
            "FGT fairer than GTA on only {wins}/{total} seeds"
        );
    }
}

//! FGT — the Fairness-aware Game-Theoretic approach (Algorithm 2).
//!
//! The FTA problem is formulated as an n-player strategic game whose
//! utility is the Inequity Aversion based Utility (Equation 5). The game is
//! an exact potential game with potential `Φ = Σ_i IAU_i` (Lemma 2), and
//! FGT runs the classical best-response mechanism: after a random
//! initialisation with single-delivery-point strategies, workers take
//! turns adopting the strategy (an available VDPS or `null`) that maximises
//! their IAU given everyone else's current choice, until a full round
//! passes with no change — a pure Nash equilibrium.
//!
//! Strategy switches require a *strict* utility improvement (beyond
//! [`FgtConfig::min_improvement`]); together with the round cap this
//! guarantees termination even in the degenerate tie cases the paper's
//! potential argument glosses over.

use crate::context::GameContext;
use crate::random::random_init;
use crate::trace::ConvergenceTrace;
use fta_core::iau::{IauEvaluator, IauParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the FGT best-response run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FgtConfig {
    /// Inequity-aversion weights (the paper uses `α = β = 0.5`).
    pub iau: IauParams,
    /// Cap on best-response rounds.
    pub max_rounds: usize,
    /// Seed of the random initialisation.
    pub seed: u64,
    /// Minimal utility gain required to switch strategies. Positive values
    /// also serve as the paper's proposed early-termination refinement.
    pub min_improvement: f64,
    /// Additional restarts from fresh random initialisations. The game can
    /// have many pure Nash equilibria of very different fairness; each
    /// restart converges to one, and the equilibrium best under the FTA
    /// objective (lexicographically minimal payoff difference, then maximal
    /// average payoff) is kept.
    pub restarts: usize,
}

impl Default for FgtConfig {
    fn default() -> Self {
        Self {
            iau: IauParams::default(),
            max_rounds: 200,
            seed: 0x4647_5421, // "FGT!"
            min_improvement: 1e-9,
            restarts: 2,
        }
    }
}

/// The game's exact potential `Φ(st) = Σ_i IAU_i` (Lemma 2), computed in
/// `O(n log n)` via the identity `Σ_i MP_i = Σ_i LP_i = Σ_{i<j} |P_i−P_j|`:
///
/// `Φ = Σ P_i − (α+β) · n · P_dif / 2`.
#[must_use]
pub fn iau_potential(payoffs: &[f64], params: IauParams) -> f64 {
    let n = payoffs.len();
    if n < 2 {
        return payoffs.iter().sum();
    }
    let total: f64 = payoffs.iter().sum();
    let p_dif = fta_core::fairness::payoff_difference(payoffs);
    total - (params.alpha + params.beta) * n as f64 * p_dif / 2.0
}

/// Runs FGT on a fresh context; returns the convergence trace of the kept
/// run. The final selection (a pure Nash equilibrium unless the round cap
/// was hit) is left in `ctx`. With `restarts > 0`, several equilibria are
/// computed from different random initialisations and the one best under
/// the FTA objective is kept.
pub fn fgt<'a>(ctx: &mut GameContext<'a>, config: &FgtConfig) -> ConvergenceTrace {
    let mut best: Option<(GameContext<'a>, ConvergenceTrace, f64, f64)> = None;
    for attempt in 0..=config.restarts {
        let mut trial = GameContext::new(ctx.space());
        let trace = fgt_once(&mut trial, config, config.seed.wrapping_add(attempt as u64));
        let diff = fta_core::fairness::payoff_difference(trial.payoffs());
        let avg = fta_core::fairness::average_payoff(trial.payoffs());
        let improves = best.as_ref().is_none_or(|&(_, _, bd, ba)| {
            diff < bd - 1e-12 || ((diff - bd).abs() <= 1e-12 && avg > ba + 1e-12)
        });
        if improves {
            best = Some((trial, trace, diff, avg));
        }
    }
    let (winner, trace, _, _) = best.expect("at least one attempt always runs");
    *ctx = winner;
    trace
}

/// One best-response run from one random initialisation.
fn fgt_once(ctx: &mut GameContext<'_>, config: &FgtConfig, seed: u64) -> ConvergenceTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    random_init(ctx, &mut rng);

    let mut trace = ConvergenceTrace::default();
    trace.record(
        0,
        0,
        ctx.payoffs(),
        iau_potential(ctx.payoffs(), config.iau),
    );

    let n = ctx.n_workers();
    for round in 1..=config.max_rounds {
        let mut moves = 0;
        for local in 0..n {
            // Rivals' payoffs stay fixed while this worker deliberates.
            let others: Vec<f64> = (0..n)
                .filter(|&j| j != local)
                .map(|j| ctx.payoff(j))
                .collect();
            let eval = IauEvaluator::new(&others, config.iau);

            let current_utility = eval.eval(ctx.payoff(local));
            // Candidate set: null (payoff 0) plus every available VDPS.
            let mut best: Option<(Option<u32>, f64)> = Some((None, eval.eval(0.0)));
            for (idx, payoff) in ctx.available_strategies(local) {
                let u = eval.eval(payoff);
                if best.as_ref().is_none_or(|&(_, bu)| u > bu) {
                    best = Some((Some(idx), u));
                }
            }
            let (choice, utility) = best.expect("null is always a candidate");
            if utility > current_utility + config.min_improvement && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
            }
        }
        trace.record(
            round,
            moves,
            ctx.payoffs(),
            iau_potential(ctx.payoffs(), config.iau),
        );
        if moves == 0 {
            trace.converged = true;
            break;
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 12,
                n_tasks: 120,
                n_delivery_points: 20,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn converges_to_a_nash_equilibrium() {
        let inst = instance(1);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let cfg = FgtConfig::default();
        let trace = fgt(&mut ctx, &cfg);
        assert!(trace.converged, "FGT did not converge");

        // Nash check: no worker can strictly improve unilaterally.
        let n = ctx.n_workers();
        for local in 0..n {
            let others: Vec<f64> = (0..n)
                .filter(|&j| j != local)
                .map(|j| ctx.payoff(j))
                .collect();
            let eval = IauEvaluator::new(&others, cfg.iau);
            let current = eval.eval(ctx.payoff(local));
            assert!(eval.eval(0.0) <= current + 1e-6, "null beats equilibrium");
            for (_, payoff) in ctx.available_strategies(local) {
                assert!(
                    eval.eval(payoff) <= current + 1e-6,
                    "worker {local} has a profitable deviation"
                );
            }
        }
    }

    #[test]
    fn produces_valid_assignment() {
        let inst = instance(2);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        fgt(&mut ctx, &FgtConfig::default());
        assert!(ctx.to_assignment().validate(&inst).is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = instance(3);
        let s = space(&inst);
        let run = |seed| {
            let mut ctx = GameContext::new(&s);
            let trace = fgt(
                &mut ctx,
                &FgtConfig {
                    seed,
                    ..FgtConfig::default()
                },
            );
            (ctx.to_assignment(), trace.len())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn trace_starts_at_round_zero_and_ends_quiet() {
        let inst = instance(4);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = fgt(&mut ctx, &FgtConfig::default());
        assert_eq!(trace.rounds[0].round, 0);
        assert_eq!(trace.last().unwrap().moves, 0);
    }

    #[test]
    fn potential_identity_matches_direct_sum() {
        use fta_core::iau::iau;
        let payoffs = [0.7, 2.1, 1.3, 4.0, 0.0];
        let params = IauParams {
            alpha: 0.4,
            beta: 0.7,
        };
        let direct: f64 = (0..payoffs.len())
            .map(|i| {
                let others: Vec<f64> = payoffs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                iau(payoffs[i], &others, params)
            })
            .sum();
        let fast = iau_potential(&payoffs, params);
        assert!((direct - fast).abs() < 1e-9, "{direct} vs {fast}");
    }

    #[test]
    fn zero_rounds_returns_the_random_initialisation() {
        let inst = instance(5);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = fgt(
            &mut ctx,
            &FgtConfig {
                max_rounds: 0,
                restarts: 0,
                ..FgtConfig::default()
            },
        );
        assert_eq!(trace.len(), 1, "only the initialisation round is recorded");
        assert!(!trace.converged);
        // Initialisation assigns only single-dp strategies.
        for local in 0..ctx.n_workers() {
            if let Some(idx) = ctx.selection(local) {
                assert_eq!(s.pool[idx as usize].len(), 1);
            }
        }
    }

    #[test]
    fn restarts_never_worsen_the_fta_objective() {
        for seed in 20..24 {
            let inst = instance(seed);
            let s = space(&inst);
            let ws = s.view.workers.clone();
            let diff_with = |restarts| {
                let mut ctx = GameContext::new(&s);
                fgt(
                    &mut ctx,
                    &FgtConfig {
                        restarts,
                        ..FgtConfig::default()
                    },
                );
                ctx.to_assignment().fairness(&inst, &ws).payoff_difference
            };
            // The restart set includes the single-run equilibrium, and the
            // selection keeps the min-diff one.
            assert!(diff_with(3) <= diff_with(0) + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn fgt_is_fairer_than_greedy_on_average() {
        // Across several seeds, FGT's payoff difference should generally be
        // no worse than GTA's (the paper's Figures 4–9 show a clear gap).
        let mut fgt_total = 0.0;
        let mut gta_total = 0.0;
        for seed in 0..6 {
            let inst = instance(100 + seed);
            let s = space(&inst);
            let ws: Vec<_> = s.view.workers.clone();

            let mut g = GameContext::new(&s);
            crate::gta::gta(&mut g);
            gta_total += g
                .to_assignment()
                .fairness(&inst, &ws)
                .payoff_difference;

            let mut f = GameContext::new(&s);
            fgt(&mut f, &FgtConfig::default());
            fgt_total += f
                .to_assignment()
                .fairness(&inst, &ws)
                .payoff_difference;
        }
        assert!(
            fgt_total <= gta_total * 1.05,
            "FGT mean diff {fgt_total} vs GTA {gta_total}"
        );
    }
}

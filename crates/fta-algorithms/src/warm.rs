//! Warm-starting the game loops from a cached equilibrium profile.
//!
//! An incremental re-solve replays the previous round's equilibrium onto a
//! freshly built [`GameContext`] before running best responses: workers
//! whose cached strategy survived the churn keep it, everyone else starts
//! from `null` and re-enters deliberation. Replay must tolerate an
//! arbitrary profile — strategies may have disappeared from the pool,
//! point at a different worker's list, or conflict with a strategy adopted
//! earlier in the replay — so every entry is validated against the new
//! space before [`GameContext::set_strategy`] (which panics on invalid
//! input by design) is called.
//!
//! # Soundness
//!
//! Replaying a *subset* of a valid strategy profile is always conflict-free
//! when the surviving strategies' delivery-point masks are unchanged: the
//! cached profile was mutually disjoint, and dropping members preserves
//! disjointness. Validation therefore only ever rejects entries whose
//! strategy genuinely changed identity (different pool, different mask) —
//! it never has to arbitrate between survivors. The subsequent
//! best-response run is an ordinary potential-game descent from a
//! non-random start, so every convergence guarantee of the cold path
//! (strict improvement, round cap) applies unchanged.

use crate::context::GameContext;

/// Outcome of replaying a cached profile onto a fresh context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStart {
    /// Workers whose cached strategy was valid in the new space and was
    /// adopted as their starting selection.
    pub adopted: usize,
    /// Workers whose cached strategy no longer exists, is out of range, or
    /// conflicts in the new space; they start from `null`.
    pub rejected: usize,
}

impl WarmStart {
    /// Whether every non-null cached strategy was adopted.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.rejected == 0
    }
}

/// Replays `profile` (one entry per local worker, `None` = null strategy)
/// onto `ctx`, adopting each cached strategy that is still valid and
/// available. Entries beyond `ctx.n_workers()` are ignored; a short profile
/// leaves the remaining workers at `null`.
pub fn warm_init(ctx: &mut GameContext<'_>, profile: &[Option<u32>]) -> WarmStart {
    let mut out = WarmStart::default();
    let n = ctx.n_workers();
    for (local, entry) in profile.iter().enumerate().take(n) {
        let Some(idx) = *entry else { continue };
        let valid = ctx.space().payoff_of(local, idx).is_some();
        if valid && ctx.is_available(local, idx) {
            ctx.set_strategy(local, Some(idx));
            out.adopted += 1;
        } else {
            out.rejected += 1;
        }
    }
    out
}

/// The current strategy profile of `ctx`, in the form [`warm_init`]
/// replays: one pool index (or `None`) per local worker.
#[must_use]
pub fn profile_of(ctx: &GameContext<'_>) -> Vec<Option<u32>> {
    (0..ctx.n_workers()).map(|l| ctx.selection(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgt::{fgt, FgtConfig};
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 10,
                n_tasks: 100,
                n_delivery_points: 18,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    #[test]
    fn replaying_an_equilibrium_reproduces_it_bitwise() {
        let inst = instance(1);
        let s = space(&inst);
        let mut cold = GameContext::new(&s);
        fgt(&mut cold, &FgtConfig::default());
        let profile = profile_of(&cold);

        let mut warm = GameContext::new(&s);
        let stats = warm_init(&mut warm, &profile);
        assert!(stats.is_complete(), "equilibrium replay rejected entries");
        assert_eq!(
            stats.adopted,
            profile.iter().filter(|e| e.is_some()).count()
        );
        assert_eq!(profile_of(&warm), profile);
        let cold_bits: Vec<u64> = cold.payoffs().iter().map(|p| p.to_bits()).collect();
        let warm_bits: Vec<u64> = warm.payoffs().iter().map(|p| p.to_bits()).collect();
        assert_eq!(cold_bits, warm_bits, "payoffs not bit-identical");
    }

    #[test]
    fn invalid_entries_are_rejected_not_panicked() {
        let inst = instance(2);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        // Out-of-range pool index and a likely-invalid slot for worker 0.
        let profile = vec![Some(u32::MAX), None];
        let stats = warm_init(&mut ctx, &profile);
        assert_eq!(stats.adopted, 0);
        assert_eq!(stats.rejected, 1);
        assert!(ctx.selection(0).is_none());
    }

    #[test]
    fn conflicting_duplicate_keeps_first_adopter() {
        let inst = instance(3);
        let s = space(&inst);
        // Find a pool index valid for two different workers.
        let shared = (0..s.pool.len() as u32).find(|&idx| {
            let a = s.payoff_of(0, idx).is_some();
            let b = s.payoff_of(1, idx).is_some();
            a && b
        });
        let Some(idx) = shared else {
            return; // fixture has no shared strategy; nothing to test
        };
        let mut ctx = GameContext::new(&s);
        let stats = warm_init(&mut ctx, &[Some(idx), Some(idx)]);
        assert_eq!(stats.adopted, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(ctx.selection(0), Some(idx));
        assert!(ctx.selection(1).is_none());
    }

    #[test]
    fn short_and_long_profiles_are_tolerated() {
        let inst = instance(4);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let stats = warm_init(&mut ctx, &[]);
        assert_eq!(stats, WarmStart::default());
        let long = vec![None; ctx.n_workers() + 5];
        let stats = warm_init(&mut ctx, &long);
        assert_eq!(stats, WarmStart::default());
    }
}

//! Random assignment and the shared random initialisation of the games.
//!
//! Algorithms 2 and 3 both start by randomly assigning each worker one
//! single-delivery-point VDPS (lines 6–16), removing it from everyone
//! else's strategy space; [`random_init`] implements exactly that.
//! [`random_assignment`] is a pure baseline that gives every worker a
//! uniformly random available strategy of any size.

use crate::context::GameContext;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Random initialisation of a game (Algorithm 2 lines 6–16): every worker,
/// in local order, receives a uniformly random *available*
/// single-delivery-point VDPS, or the null strategy if none remains.
pub fn random_init(ctx: &mut GameContext<'_>, rng: &mut StdRng) {
    let n = ctx.n_workers();
    for local in 0..n {
        let singles: Vec<u32> = ctx
            .available_strategies(local)
            .filter(|&(idx, _)| ctx.space().pool[idx as usize].len() == 1)
            .map(|(idx, _)| idx)
            .collect();
        let choice = singles.choose(rng).copied();
        ctx.set_strategy(local, choice);
    }
}

/// Random baseline: every worker, in a random order, receives a uniformly
/// random available strategy (of any size), or null if none remains.
pub fn random_assignment(ctx: &mut GameContext<'_>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..ctx.n_workers()).collect();
    order.shuffle(&mut rng);
    for local in order {
        let options: Vec<u32> = ctx
            .available_strategies(local)
            .map(|(idx, _)| idx)
            .collect();
        if options.is_empty() {
            ctx.set_strategy(local, None);
        } else {
            let pick = options[rng.gen_range(0..options.len())];
            ctx.set_strategy(local, Some(pick));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn small_instance() -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 10,
                n_tasks: 120,
                n_delivery_points: 20,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            17,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::pruned(1.0, 3))
    }

    #[test]
    fn random_init_assigns_disjoint_singletons() {
        let inst = small_instance();
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let mut rng = StdRng::seed_from_u64(1);
        random_init(&mut ctx, &mut rng);
        for local in 0..ctx.n_workers() {
            if let Some(idx) = ctx.selection(local) {
                assert_eq!(s.pool[idx as usize].len(), 1, "init must use singletons");
            }
        }
        let a = ctx.to_assignment();
        assert!(a.validate(&inst).is_ok());
    }

    #[test]
    fn random_init_is_deterministic_per_seed() {
        let inst = small_instance();
        let s = space(&inst);
        let run = |seed| {
            let mut ctx = GameContext::new(&s);
            let mut rng = StdRng::seed_from_u64(seed);
            random_init(&mut ctx, &mut rng);
            (0..ctx.n_workers())
                .map(|l| ctx.selection(l))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn random_assignment_is_valid_and_seeded() {
        let inst = small_instance();
        let s = space(&inst);
        let mut a_ctx = GameContext::new(&s);
        random_assignment(&mut a_ctx, 9);
        let a = a_ctx.to_assignment();
        assert!(a.validate(&inst).is_ok());

        let mut b_ctx = GameContext::new(&s);
        random_assignment(&mut b_ctx, 9);
        assert_eq!(a, b_ctx.to_assignment());
    }

    #[test]
    fn random_assignment_uses_multi_dp_strategies() {
        // With any-size strategies allowed, at least one seed must produce
        // a route longer than one delivery point on a dense instance.
        let inst = small_instance();
        let s = space(&inst);
        let found = (0..20).any(|seed| {
            let mut ctx = GameContext::new(&s);
            random_assignment(&mut ctx, seed);
            ctx.to_assignment().iter().any(|(_, r)| r.len() > 1)
        });
        assert!(found, "no multi-dp strategy chosen across 20 seeds");
    }
}

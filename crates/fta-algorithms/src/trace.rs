//! Convergence traces of the iterative game-theoretic algorithms.
//!
//! The paper's Figure 12 plots per-iteration behaviour of FGT and IEGT to
//! demonstrate convergence; [`ConvergenceTrace`] records exactly the series
//! needed to regenerate that figure, and is also what the convergence tests
//! assert on.

use crate::stats::BestResponseStats;
use fta_core::fairness::{average_payoff, payoff_difference};

/// Metrics of one best-response / replicator round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round number, starting at 1 (round 0 is the random initialisation).
    pub round: usize,
    /// Number of workers that changed strategy this round.
    pub moves: usize,
    /// Payoff difference `P_dif` after the round.
    pub payoff_difference: f64,
    /// Average worker payoff after the round.
    pub average_payoff: f64,
    /// The algorithm's potential after the round: the sum of IAU values for
    /// FGT (Lemma 2's exact potential), the sum of payoffs for IEGT.
    pub potential: f64,
}

/// The full per-round history of one algorithm run on one center.
///
/// Per-round entries are `O(1)` summaries ([`RoundStats`]); the incremental
/// engines feed them via [`ConvergenceTrace::record_summary`] from metrics
/// their rival structure already maintains, so tracing adds no per-round
/// `O(n log n)` scan. Full per-round payoff vectors are **opt-in** through
/// [`ConvergenceTrace::with_snapshots`] (they cost `O(n)` memory per round
/// and are only needed to regenerate distribution-style plots).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceTrace {
    /// One entry per round, including the initialisation round 0.
    pub rounds: Vec<RoundStats>,
    /// Whether the run reached its fixed point (no moves / replicator rest
    /// point) rather than the round cap.
    pub converged: bool,
    /// Whether the run was cut short by a [`fta_core::CancelToken`]
    /// (wall-clock budget or external cancellation) before reaching either
    /// its fixed point or its round cap. Mutually exclusive with
    /// `converged` for a single run; a merged trace can carry both when
    /// different centers ended differently.
    pub cancelled: bool,
    /// Counters of the best-response work performed by the run(s) behind
    /// this trace (summed across restarts and merged centers).
    pub stats: BestResponseStats,
    /// Full payoff vectors per recorded round; empty unless the trace was
    /// created via [`ConvergenceTrace::with_snapshots`].
    pub snapshots: Vec<Vec<f64>>,
    /// Whether [`ConvergenceTrace::snapshot`] captures.
    capture_snapshots: bool,
}

impl ConvergenceTrace {
    /// Creates a trace that additionally captures the full payoff vector of
    /// every recorded round in [`ConvergenceTrace::snapshots`].
    #[must_use]
    pub fn with_snapshots() -> Self {
        Self {
            capture_snapshots: true,
            ..Self::default()
        }
    }

    /// Whether this trace captures full payoff snapshots.
    #[must_use]
    pub fn captures_snapshots(&self) -> bool {
        self.capture_snapshots
    }

    /// Stores a copy of `payoffs` if snapshot capture is enabled; a no-op
    /// (and allocation-free) otherwise.
    pub fn snapshot(&mut self, payoffs: &[f64]) {
        if self.capture_snapshots {
            self.snapshots.push(payoffs.to_vec());
        }
    }

    /// Records a round from a payoff vector and a potential value,
    /// computing the summary metrics in `O(n log n)` (and capturing a
    /// snapshot when enabled). The incremental engines avoid this cost via
    /// [`ConvergenceTrace::record_summary`].
    pub fn record(&mut self, round: usize, moves: usize, payoffs: &[f64], potential: f64) {
        self.snapshot(payoffs);
        self.record_summary(
            round,
            moves,
            payoff_difference(payoffs),
            average_payoff(payoffs),
            potential,
        );
    }

    /// Records a round from precomputed summary metrics in `O(1)`. Callers
    /// owning incrementally-maintained statistics (e.g.
    /// [`fta_core::iau::RivalSet`]) use this to keep tracing off the hot
    /// path; pair with [`ConvergenceTrace::snapshot`] when payoff vectors
    /// are wanted too.
    pub fn record_summary(
        &mut self,
        round: usize,
        moves: usize,
        payoff_difference: f64,
        average_payoff: f64,
        potential: f64,
    ) {
        self.rounds.push(RoundStats {
            round,
            moves,
            payoff_difference,
            average_payoff,
            potential,
        });
    }

    /// Number of rounds recorded (including round 0).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The last recorded round, if any.
    #[must_use]
    pub fn last(&self) -> Option<&RoundStats> {
        self.rounds.last()
    }

    /// Merges another center's trace into this one round-by-round, summing
    /// moves and averaging metrics; used when reporting a whole-instance
    /// convergence curve from per-center runs. Work counters are summed;
    /// payoff snapshots stay per-center (this trace keeps its own).
    pub fn merge_parallel(&mut self, other: &ConvergenceTrace) {
        self.stats.merge(&other.stats);
        let n = self.rounds.len().max(other.rounds.len());
        let take = |t: &ConvergenceTrace, i: usize| -> Option<RoundStats> {
            t.rounds
                .get(i)
                .copied()
                .or_else(|| t.rounds.last().copied())
        };
        let mut merged = Vec::with_capacity(n);
        for i in 0..n {
            match (take(self, i), take(other, i)) {
                (Some(a), Some(b)) => merged.push(RoundStats {
                    round: i,
                    moves: a.moves + b.moves,
                    payoff_difference: f64::midpoint(a.payoff_difference, b.payoff_difference),
                    average_payoff: f64::midpoint(a.average_payoff, b.average_payoff),
                    potential: a.potential + b.potential,
                }),
                (Some(a), None) => merged.push(RoundStats { round: i, ..a }),
                (None, Some(b)) => merged.push(RoundStats { round: i, ..b }),
                (None, None) => unreachable!("i < n implies at least one side has rounds"),
            }
        }
        self.rounds = merged;
        self.converged = self.converged && other.converged;
        self.cancelled = self.cancelled || other.cancelled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_computes_metrics() {
        let mut t = ConvergenceTrace::default();
        t.record(0, 0, &[1.0, 3.0], 4.0);
        t.record(1, 2, &[2.0, 2.0], 4.5);
        assert_eq!(t.len(), 2);
        assert!((t.rounds[0].payoff_difference - 2.0).abs() < 1e-12);
        assert_eq!(t.rounds[1].payoff_difference, 0.0);
        assert_eq!(t.last().unwrap().moves, 2);
    }

    #[test]
    fn merge_pads_shorter_trace_with_final_state() {
        let mut a = ConvergenceTrace::default();
        a.record(0, 1, &[1.0], 1.0);
        a.record(1, 0, &[2.0], 2.0);
        a.converged = true;
        let mut b = ConvergenceTrace::default();
        b.record(0, 3, &[4.0], 4.0);
        b.converged = true;
        a.merge_parallel(&b);
        assert_eq!(a.rounds.len(), 2);
        assert_eq!(a.rounds[0].moves, 4);
        // Round 1: b padded with its last state (moves replayed as-is).
        assert_eq!(a.rounds[1].moves, 3);
        assert!((a.rounds[1].potential - 6.0).abs() < 1e-12);
        assert!(a.converged);
    }

    #[test]
    fn merge_propagates_non_convergence() {
        let mut a = ConvergenceTrace {
            converged: true,
            ..Default::default()
        };
        a.record(0, 0, &[1.0], 1.0);
        let mut b = ConvergenceTrace::default();
        b.record(0, 0, &[1.0], 1.0);
        b.converged = false;
        a.merge_parallel(&b);
        assert!(!a.converged);
    }

    #[test]
    fn empty_trace_reports_empty() {
        let t = ConvergenceTrace::default();
        assert!(t.is_empty());
        assert!(t.last().is_none());
    }

    #[test]
    fn snapshots_are_opt_in() {
        let mut off = ConvergenceTrace::default();
        off.record(0, 0, &[1.0, 2.0], 3.0);
        assert!(!off.captures_snapshots());
        assert!(off.snapshots.is_empty());

        let mut on = ConvergenceTrace::with_snapshots();
        on.record(0, 0, &[1.0, 2.0], 3.0);
        on.snapshot(&[2.0, 2.0]);
        assert_eq!(on.snapshots, vec![vec![1.0, 2.0], vec![2.0, 2.0]]);
    }

    #[test]
    fn record_summary_matches_record() {
        let payoffs = [1.0, 3.0, 5.0];
        let mut a = ConvergenceTrace::default();
        a.record(1, 2, &payoffs, 7.0);
        let mut b = ConvergenceTrace::default();
        b.record_summary(
            1,
            2,
            fta_core::fairness::payoff_difference(&payoffs),
            fta_core::fairness::average_payoff(&payoffs),
            7.0,
        );
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn merge_sums_work_counters() {
        let mut a = ConvergenceTrace::default();
        a.record(0, 0, &[1.0], 1.0);
        a.stats.rounds = 2;
        a.stats.evaluator_builds = 1;
        let mut b = ConvergenceTrace::default();
        b.record(0, 0, &[1.0], 1.0);
        b.stats.rounds = 3;
        b.stats.evaluator_updates = 10;
        a.merge_parallel(&b);
        assert_eq!(a.stats.rounds, 5);
        assert_eq!(a.stats.evaluator_builds, 1);
        assert_eq!(a.stats.evaluator_updates, 10);
    }
}

//! Bridges [`SolveOutcome`] into the versioned solve ledger
//! ([`fta_obs::ledger`]).
//!
//! The solver layer knows *why* each center ended up where it did (rung,
//! budget axis, resolve path, work counters); the ledger is the durable
//! record of that attribution plus the fairness outcome. This module is
//! the one place the two vocabularies meet: the CLI's `--ledger-out` and
//! the sim engine's per-round ledger both go through [`solve_record`] /
//! [`center_records`], so a ledger line means the same thing no matter
//! which entry point produced it.

use crate::solver::SolveOutcome;
use fta_core::{FairnessReport, Instance, WorkerId};
use fta_obs::ledger::{CenterRecord, FairnessRecord, SolveRecord};

/// Per-center ledger records for one solve, in center order. Thin
/// field-by-field mapping of
/// [`CenterSolveSummary`](crate::solver::CenterSolveSummary) into the
/// serializable ledger vocabulary.
#[must_use]
pub fn center_records(outcome: &SolveOutcome) -> Vec<CenterRecord> {
    outcome
        .centers
        .iter()
        .map(|c| CenterRecord {
            center: u64::from(c.center.0),
            rung: c.rung.name().to_string(),
            budget_axis: c.budget_axis.map(str::to_string),
            resolve: c.resolve_path.to_string(),
            shard: c.shard.map(u64::from),
            br_rounds: c.br_rounds,
            br_evaluations: c.br_evaluations,
            br_switches: c.br_switches,
            vdps_count: c.vdps_count,
            vdps_states: c.vdps_states,
            vdps_truncations: c.vdps_truncations,
            vdps_nanos: c.vdps_nanos,
            assign_nanos: c.assign_nanos,
            events: c.events.clone(),
        })
        .collect()
}

/// The fairness block of a ledger record: metrics over the full worker
/// population of `instance`, with the raw payoff vector as the income
/// distribution (a one-shot solve has no accumulated earnings, so payoff
/// *is* income).
#[must_use]
pub fn fairness_record(instance: &Instance, outcome: &SolveOutcome) -> FairnessRecord {
    let workers: Vec<WorkerId> = (0..instance.workers.len())
        .map(WorkerId::from_index)
        .collect();
    let payoffs = outcome.assignment.payoffs(instance, &workers);
    fairness_from_incomes(&payoffs)
}

/// A [`FairnessRecord`] over an arbitrary income distribution (the sim
/// engine passes cumulative per-worker earnings here; the one-shot path
/// passes the payoff vector).
#[must_use]
pub fn fairness_from_incomes(incomes: &[f64]) -> FairnessRecord {
    let report = FairnessReport::from_payoffs(incomes);
    FairnessRecord {
        payoff_difference: report.payoff_difference,
        average_payoff: report.average_payoff,
        gini: report.gini,
        incomes: incomes.to_vec(),
    }
}

/// A complete one-shot ledger record for `outcome`: per-center causal
/// attribution plus the fairness block. `round` and `sim_hours` are
/// `None` — the sim engine fills those in itself.
#[must_use]
pub fn solve_record(
    instance: &Instance,
    outcome: &SolveOutcome,
    algo: &str,
    engine: &str,
) -> SolveRecord {
    SolveRecord {
        round: None,
        sim_hours: None,
        algo: algo.to_string(),
        engine: engine.to_string(),
        degraded: outcome.is_degraded(),
        budget_exhausted: outcome.degradation.budget_exhausted(),
        centers: center_records(outcome),
        fairness: fairness_record(instance, outcome),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, Algorithm, SolveConfig};
    use fta_core::fig1;

    #[test]
    fn solve_record_attributes_every_center_and_round_trips() {
        let instance = fig1::instance();
        let outcome = solve(&instance, &SolveConfig::new(Algorithm::Gta));
        let record = solve_record(&instance, &outcome, "GTA", "flat");
        assert_eq!(record.centers.len(), instance.centers.len());
        assert!(!record.degraded);
        assert!(!record.budget_exhausted);
        assert_eq!(record.fairness.incomes.len(), instance.workers.len());
        for center in &record.centers {
            assert_eq!(center.rung, "full");
            assert_eq!(center.resolve, "cold");
            assert!(center.budget_axis.is_none());
            assert!(center.events.is_empty());
        }
        // The record survives the ledger's own serialization.
        let ledger = fta_obs::ledger::Ledger {
            label: "test".to_string(),
            created_unix_ms: 0,
            records: vec![record],
        };
        let parsed =
            fta_obs::ledger::parse(&fta_obs::ledger::to_jsonl(&ledger)).expect("ledger parses");
        assert_eq!(parsed.records[0].centers.len(), instance.centers.len());
        assert_eq!(parsed.records[0].algo, "GTA");
    }

    #[test]
    fn degraded_solve_attributes_the_budget_axis() {
        let instance = fig1::instance();
        let config =
            SolveConfig::new(Algorithm::Gta).with_budget(fta_core::SolveBudget::wall_ms(0));
        let outcome = solve(&instance, &config);
        let record = solve_record(&instance, &outcome, "GTA", "flat");
        assert!(record.degraded);
        assert!(record.budget_exhausted);
        let degraded: Vec<_> = record.centers.iter().filter(|c| c.rung != "full").collect();
        assert!(!degraded.is_empty(), "0 ms budget degraded nothing");
        for center in &degraded {
            assert_eq!(center.budget_axis.as_deref(), Some("wall_ms"));
            assert!(!center.events.is_empty());
        }
    }
}

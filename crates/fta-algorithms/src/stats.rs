//! Instrumentation counters of the iterative game-theoretic algorithms.
//!
//! [`BestResponseStats`] is the equilibrium-loop counterpart of
//! `fta_vdps::GenerationStats`: cheap integer counters incremented on the
//! hot path that make the cost model of FGT/PFGT/IEGT observable — how many
//! candidate utilities were evaluated, how often workers actually switched,
//! and how much work the utility evaluator itself did (full rebuilds vs
//! incremental point updates). The counters are what the `rivalset` bench
//! and the engine-equivalence tests assert on, and they surface through
//! [`crate::SolveOutcome`], the experiment report, and the CLI.

/// Counters of one or more best-response / replicator runs.
///
/// All counters are cumulative: merging traces (restarts, parallel centers)
/// sums them. The two `evaluator_*` counters distinguish the engines:
///
/// * the **rebuild** engine constructs a fresh sorted evaluator for every
///   worker in every round (`evaluator_builds ≈ n · rounds`, no updates);
/// * the **incremental** engine builds one [`fta_core::iau::RivalSet`] per
///   run and maintains it with `O(log n)` point updates
///   (`evaluator_builds` per restart, `evaluator_updates ≈ 2n · rounds`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestResponseStats {
    /// Best-response / evolution rounds executed (round 0 excluded).
    pub rounds: u64,
    /// Candidate utilities evaluated (current strategy, null, and every
    /// available VDPS each count once).
    pub candidate_evaluations: u64,
    /// Strategy switches actually performed.
    pub switches: u64,
    /// Switches that adopted the null strategy.
    pub null_adoptions: u64,
    /// Full evaluator constructions (sort + prefix-sum over all rivals).
    pub evaluator_builds: u64,
    /// Incremental evaluator maintenance operations (one per payoff
    /// removed from or inserted into a rival structure).
    pub evaluator_updates: u64,
    /// Strategy slots examined for availability during best-response
    /// deliberation. The exhaustive engines probe a worker's *entire*
    /// valid list per turn; the monotone fast path stops at the first
    /// available slot of the payoff-descending order.
    pub candidates_scanned: u64,
    /// Fast-path scans that terminated before exhausting the worker's
    /// strategy list (the monotone early exit paying off).
    pub early_exits: u64,
    /// Per-slot conflict-counter adjustments applied through the inverted
    /// DP-bit index on strategy switches (zero when the space is below the
    /// index crossover and availability is mask-scanned).
    pub index_updates: u64,
    /// Rounds executed under the monotone fast-path loop. Stays zero when
    /// the IAU parameters make the fast path unsound (`β ≥ 1` or `α < 0`)
    /// and the run fell back to exhaustive evaluation.
    pub fastpath_rounds: u64,
}

impl BestResponseStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &Self) {
        self.rounds += other.rounds;
        self.candidate_evaluations += other.candidate_evaluations;
        self.switches += other.switches;
        self.null_adoptions += other.null_adoptions;
        self.evaluator_builds += other.evaluator_builds;
        self.evaluator_updates += other.evaluator_updates;
        self.candidates_scanned += other.candidates_scanned;
        self.early_exits += other.early_exits;
        self.index_updates += other.index_updates;
        self.fastpath_rounds += other.fastpath_rounds;
    }

    /// Whether no work was recorded (e.g. a baseline algorithm ran).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let mut a = BestResponseStats {
            rounds: 1,
            candidate_evaluations: 10,
            switches: 3,
            null_adoptions: 1,
            evaluator_builds: 2,
            evaluator_updates: 8,
            candidates_scanned: 20,
            early_exits: 5,
            index_updates: 7,
            fastpath_rounds: 1,
        };
        let b = BestResponseStats {
            rounds: 2,
            candidate_evaluations: 5,
            switches: 1,
            null_adoptions: 0,
            evaluator_builds: 1,
            evaluator_updates: 4,
            candidates_scanned: 10,
            early_exits: 2,
            index_updates: 3,
            fastpath_rounds: 2,
        };
        a.merge(&b);
        assert_eq!(
            a,
            BestResponseStats {
                rounds: 3,
                candidate_evaluations: 15,
                switches: 4,
                null_adoptions: 1,
                evaluator_builds: 3,
                evaluator_updates: 12,
                candidates_scanned: 30,
                early_exits: 7,
                index_updates: 10,
                fastpath_rounds: 3,
            }
        );
    }

    #[test]
    fn default_is_empty() {
        assert!(BestResponseStats::default().is_empty());
        let s = BestResponseStats {
            rounds: 1,
            ..Default::default()
        };
        assert!(!s.is_empty());
    }
}

//! PFGT — Priority-aware Fairness Game-Theoretic assignment (extension).
//!
//! The paper's conclusion proposes priority-aware fairness as a follow-up
//! descriptive model. PFGT is FGT with the utility swapped for the
//! priority-aware IAU of [`fta_core::priority`]: each worker carries an
//! entitlement weight ρ, inequity is perceived on normalised payoffs
//! `P/ρ`, and the equilibrium-selection objective becomes the
//! priority-aware payoff difference. With all priorities equal to 1 PFGT
//! coincides with FGT (tested below).

use crate::context::GameContext;
use crate::fgt::{BestResponseEngine, FgtConfig};
use crate::random::random_init;
use crate::stats::BestResponseStats;
use crate::trace::ConvergenceTrace;
use fta_core::iau::RivalSet;
use fta_core::priority::{priority_payoff_difference, PriorityIauEvaluator, PriorityRivalSet};
use fta_core::{CancelToken, WorkerId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How worker priorities are derived. A plain function pointer keeps the
/// solver's `Algorithm` enum `Copy` while allowing arbitrary priority
/// schemes.
///
/// Equality on the `ByWorker` variant compares function pointers, which is
/// only used to detect "same configuration" in tests — two distinct
/// functions comparing equal after identical-code merging would be
/// harmless there.
#[allow(unpredictable_function_pointer_comparisons)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrioritySpec {
    /// Every worker has priority 1 (PFGT ≡ FGT).
    Uniform,
    /// Priorities computed from the worker id.
    ByWorker(fn(WorkerId) -> f64),
}

impl PrioritySpec {
    /// The priority of `worker`.
    ///
    /// # Panics
    ///
    /// Panics if a `ByWorker` function returns a non-positive or non-finite
    /// value.
    #[must_use]
    pub fn of(&self, worker: WorkerId) -> f64 {
        match self {
            Self::Uniform => 1.0,
            Self::ByWorker(f) => {
                let rho = f(worker);
                assert!(
                    rho.is_finite() && rho > 0.0,
                    "priority of {worker} must be positive, got {rho}"
                );
                rho
            }
        }
    }
}

/// Configuration of a PFGT run: the FGT knobs plus the priority scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfgtConfig {
    /// Best-response parameters (IAU weights, rounds, seed, restarts).
    pub base: FgtConfig,
    /// Worker priority scheme.
    pub priorities: PrioritySpec,
}

impl Default for PfgtConfig {
    fn default() -> Self {
        Self {
            base: FgtConfig::default(),
            priorities: PrioritySpec::Uniform,
        }
    }
}

/// Runs PFGT on a fresh context; the equilibrium best under the
/// priority-aware FTA objective across restarts is kept.
pub fn pfgt<'a>(ctx: &mut GameContext<'a>, config: &PfgtConfig) -> ConvergenceTrace {
    pfgt_bounded(ctx, config, None)
}

/// [`pfgt`] under cooperative cancellation: checks `cancel` once per
/// best-response round and between restarts, stopping early (with the
/// trace marked [`ConvergenceTrace::cancelled`]) when it trips.
/// `cancel = None` is bit-identical to [`pfgt`].
pub fn pfgt_bounded<'a>(
    ctx: &mut GameContext<'a>,
    config: &PfgtConfig,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let priorities: Vec<f64> = (0..ctx.n_workers())
        .map(|local| config.priorities.of(ctx.space().worker_id(local)))
        .collect();

    let mut total_stats = BestResponseStats::default();
    let mut best: Option<(GameContext<'a>, ConvergenceTrace, f64, f64)> = None;
    for attempt in 0..=config.base.restarts {
        let mut trial = GameContext::new(ctx.space());
        let trace = pfgt_once(
            &mut trial,
            config,
            &priorities,
            Some(config.base.seed.wrapping_add(attempt as u64)),
            cancel,
        );
        let cancelled = trace.cancelled;
        total_stats.merge(&trace.stats);
        let diff = priority_payoff_difference(trial.payoffs(), &priorities);
        let avg = fta_core::fairness::average_payoff(trial.payoffs());
        let improves = best.as_ref().is_none_or(|&(_, _, bd, ba)| {
            diff < bd - 1e-12 || ((diff - bd).abs() <= 1e-12 && avg > ba + 1e-12)
        });
        if improves {
            best = Some((trial, trace, diff, avg));
        }
        if cancelled {
            break;
        }
    }
    let cut_short = cancel.is_some_and(CancelToken::is_cancelled);
    let (winner, mut trace, _, _) = best.expect("at least one attempt always runs");
    *ctx = winner;
    trace.stats = total_stats;
    trace.cancelled = trace.cancelled || cut_short;
    trace
}

/// [`pfgt_bounded`] warm-started from a cached strategy profile: the
/// profile is replayed onto `ctx` (invalid entries dropped) and a single
/// priority-aware best-response run continues from there — no random
/// initialisation, no restarts. See [`crate::fgt::fgt_warm_bounded`].
pub fn pfgt_warm_bounded(
    ctx: &mut GameContext<'_>,
    config: &PfgtConfig,
    profile: &[Option<u32>],
    cancel: Option<&CancelToken>,
) -> (ConvergenceTrace, crate::warm::WarmStart) {
    let priorities: Vec<f64> = (0..ctx.n_workers())
        .map(|local| config.priorities.of(ctx.space().worker_id(local)))
        .collect();
    let warm = crate::warm::warm_init(ctx, profile);
    let trace = pfgt_once(ctx, config, &priorities, None, cancel);
    (trace, warm)
}

fn pfgt_once(
    ctx: &mut GameContext<'_>,
    config: &PfgtConfig,
    priorities: &[f64],
    init: Option<u64>,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    match config.base.engine {
        BestResponseEngine::Rebuild => pfgt_once_rebuild(ctx, config, priorities, init, cancel),
        BestResponseEngine::Incremental => {
            pfgt_once_incremental(ctx, config, priorities, init, cancel)
        }
        BestResponseEngine::FastPath => {
            if crate::fgt::fastpath_sound(config.base.iau) {
                pfgt_once_fastpath(ctx, config, priorities, init, cancel)
            } else {
                // Out of the monotone regime: exhaustive fallback,
                // bit-identical (fastpath_rounds stays 0).
                pfgt_once_incremental(ctx, config, priorities, init, cancel)
            }
        }
    }
}

fn new_trace(config: &PfgtConfig) -> ConvergenceTrace {
    if config.base.snapshot_payoffs {
        ConvergenceTrace::with_snapshots()
    } else {
        ConvergenceTrace::default()
    }
}

/// Legacy engine: a fresh [`PriorityIauEvaluator`] per worker per round.
fn pfgt_once_rebuild(
    ctx: &mut GameContext<'_>,
    config: &PfgtConfig,
    priorities: &[f64],
    init: Option<u64>,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let index_updates_before = ctx.index_updates();
    if let Some(seed) = init {
        let mut rng = StdRng::seed_from_u64(seed);
        random_init(ctx, &mut rng);
    }

    let potential = |payoffs: &[f64]| {
        crate::fgt::iau_potential(
            &fta_core::priority::normalized_payoffs(payoffs, priorities),
            config.base.iau,
        )
    };
    let mut trace = new_trace(config);
    trace.record(0, 0, ctx.payoffs(), potential(ctx.payoffs()));

    let n = ctx.n_workers();
    for round in 1..=config.base.max_rounds {
        trace.stats.rounds += 1;
        let mut moves = 0;
        for local in 0..n {
            let others: Vec<(f64, f64)> = (0..n)
                .filter(|&j| j != local)
                .map(|j| (ctx.payoff(j), priorities[j]))
                .collect();
            let eval = PriorityIauEvaluator::new(priorities[local], &others, config.base.iau);
            trace.stats.evaluator_builds += 1;

            let current_utility = eval.eval(ctx.payoff(local));
            trace.stats.candidates_scanned += ctx.space().strategy_count(local) as u64;
            let mut best: Option<(Option<u32>, f64)> = Some((None, eval.eval(0.0)));
            trace.stats.candidate_evaluations += 2;
            for (idx, payoff) in ctx.available_strategies(local) {
                let u = eval.eval(payoff);
                trace.stats.candidate_evaluations += 1;
                if best.as_ref().is_none_or(|&(_, bu)| u > bu) {
                    best = Some((Some(idx), u));
                }
            }
            let (choice, utility) = best.expect("null is always a candidate");
            if utility > current_utility + config.base.min_improvement
                && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
                trace.stats.switches += 1;
                if choice.is_none() {
                    trace.stats.null_adoptions += 1;
                }
            }
        }
        trace.record(round, moves, ctx.payoffs(), potential(ctx.payoffs()));
        if moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace.stats.index_updates += ctx.index_updates() - index_updates_before;
    trace
}

/// Incremental engine: one [`PriorityRivalSet`] (normalised-payoff space,
/// for utilities and the potential) plus one raw [`RivalSet`] (for the
/// trace's raw `P_dif` and average) maintained across the whole run.
fn pfgt_once_incremental(
    ctx: &mut GameContext<'_>,
    config: &PfgtConfig,
    priorities: &[f64],
    init: Option<u64>,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    let index_updates_before = ctx.index_updates();
    if let Some(seed) = init {
        let mut rng = StdRng::seed_from_u64(seed);
        random_init(ctx, &mut rng);
    }

    let mut trace = new_trace(config);
    // One engine in normalised-payoff space drives the best responses; a
    // second raw-payoff engine feeds the unweighted trace statistics.
    let mut q_rivals = PriorityRivalSet::new(config.base.iau);
    for (local, &p) in ctx.payoffs().iter().enumerate() {
        q_rivals.insert(p, priorities[local]);
    }
    let mut raw = RivalSet::with_payoffs(ctx.payoffs(), config.base.iau);
    trace.stats.evaluator_builds += 2;

    trace.snapshot(ctx.payoffs());
    trace.record_summary(
        0,
        0,
        raw.payoff_difference(),
        raw.average(),
        q_rivals.potential(),
    );

    let n = ctx.n_workers();
    for round in 1..=config.base.max_rounds {
        trace.stats.rounds += 1;
        let mut moves = 0;
        for (local, &rho) in priorities.iter().enumerate().take(n) {
            let own = ctx.payoff(local);
            q_rivals.remove(own, rho);
            trace.stats.evaluator_updates += 1;

            let current_utility = q_rivals.eval(own, rho);
            trace.stats.candidates_scanned += ctx.space().strategy_count(local) as u64;
            let mut best: Option<(Option<u32>, f64)> = Some((None, q_rivals.eval(0.0, rho)));
            trace.stats.candidate_evaluations += 2;
            for (idx, payoff) in ctx.available_strategies(local) {
                let u = q_rivals.eval(payoff, rho);
                trace.stats.candidate_evaluations += 1;
                if best.as_ref().is_none_or(|&(_, bu)| u > bu) {
                    best = Some((Some(idx), u));
                }
            }
            let (choice, utility) = best.expect("null is always a candidate");
            if utility > current_utility + config.base.min_improvement
                && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
                trace.stats.switches += 1;
                if choice.is_none() {
                    trace.stats.null_adoptions += 1;
                }
            }
            let adopted = ctx.payoff(local);
            q_rivals.insert(adopted, rho);
            trace.stats.evaluator_updates += 1;
            if adopted != own {
                raw.remove(own);
                raw.insert(adopted);
                trace.stats.evaluator_updates += 2;
            }
        }
        trace.snapshot(ctx.payoffs());
        trace.record_summary(
            round,
            moves,
            raw.payoff_difference(),
            raw.average(),
            q_rivals.potential(),
        );
        if moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace.stats.index_updates += ctx.index_updates() - index_updates_before;
    trace
}

/// Monotone fast-path engine for PFGT: identical evaluator maintenance to
/// [`pfgt_once_incremental`] (so traces are bit-identical), but the best
/// response is the highest-payoff available strategy found by a first-hit
/// scan over the payoff-descending slot order. Soundness: the priority IAU
/// perceives inequity on the normalised payoffs `q = p/ρ` with `ρ > 0`, a
/// strictly increasing map, so the monotonicity argument of
/// [`crate::fgt::fastpath_sound`] carries over verbatim for `β < 1`,
/// `α ≥ 0`.
fn pfgt_once_fastpath(
    ctx: &mut GameContext<'_>,
    config: &PfgtConfig,
    priorities: &[f64],
    init: Option<u64>,
    cancel: Option<&CancelToken>,
) -> ConvergenceTrace {
    debug_assert!(crate::fgt::fastpath_sound(config.base.iau));
    let index_updates_before = ctx.index_updates();
    if let Some(seed) = init {
        let mut rng = StdRng::seed_from_u64(seed);
        random_init(ctx, &mut rng);
    }

    let mut trace = new_trace(config);
    let mut q_rivals = PriorityRivalSet::new(config.base.iau);
    for (local, &p) in ctx.payoffs().iter().enumerate() {
        q_rivals.insert(p, priorities[local]);
    }
    let mut raw = RivalSet::with_payoffs(ctx.payoffs(), config.base.iau);
    trace.stats.evaluator_builds += 2;

    trace.snapshot(ctx.payoffs());
    trace.record_summary(
        0,
        0,
        raw.payoff_difference(),
        raw.average(),
        q_rivals.potential(),
    );

    let n = ctx.n_workers();
    for round in 1..=config.base.max_rounds {
        trace.stats.rounds += 1;
        trace.stats.fastpath_rounds += 1;
        let mut moves = 0;
        for (local, &rho) in priorities.iter().enumerate().take(n) {
            let own = ctx.payoff(local);
            q_rivals.remove(own, rho);
            trace.stats.evaluator_updates += 1;

            let current_utility = q_rivals.eval(own, rho);
            let (found, scan) = ctx.best_available_desc(local);
            trace.stats.candidates_scanned += scan.scanned;
            if scan.early_exit {
                trace.stats.early_exits += 1;
            }
            let (choice, utility) = match found {
                Some((idx, payoff)) if payoff > 0.0 => (Some(idx), q_rivals.eval(payoff, rho)),
                _ => (None, q_rivals.eval(0.0, rho)),
            };
            trace.stats.candidate_evaluations += 2;
            if utility > current_utility + config.base.min_improvement
                && choice != ctx.selection(local)
            {
                ctx.set_strategy(local, choice);
                moves += 1;
                trace.stats.switches += 1;
                if choice.is_none() {
                    trace.stats.null_adoptions += 1;
                }
            }
            let adopted = ctx.payoff(local);
            q_rivals.insert(adopted, rho);
            trace.stats.evaluator_updates += 1;
            if adopted != own {
                raw.remove(own);
                raw.insert(adopted);
                trace.stats.evaluator_updates += 2;
            }
        }
        trace.snapshot(ctx.payoffs());
        trace.record_summary(
            round,
            moves,
            raw.payoff_difference(),
            raw.average(),
            q_rivals.potential(),
        );
        if moves == 0 {
            trace.converged = true;
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            trace.cancelled = true;
            break;
        }
    }
    trace.stats.index_updates += ctx.index_updates() - index_updates_before;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgt::fgt;
    use fta_core::Instance;
    use fta_data::{generate_syn, SynConfig};
    use fta_vdps::{StrategySpace, VdpsConfig};

    fn instance(seed: u64) -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 10,
                n_tasks: 120,
                n_delivery_points: 20,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    }

    fn space(inst: &Instance) -> StrategySpace {
        let views = inst.center_views();
        StrategySpace::build(inst, &views[0], &VdpsConfig::unpruned(3))
    }

    fn tiered(worker: WorkerId) -> f64 {
        if worker.0 % 2 == 0 {
            2.0
        } else {
            1.0
        }
    }

    #[test]
    fn uniform_priorities_reproduce_fgt() {
        let inst = instance(1);
        let s = space(&inst);
        let mut a = GameContext::new(&s);
        fgt(&mut a, &FgtConfig::default());
        let mut b = GameContext::new(&s);
        pfgt(&mut b, &PfgtConfig::default());
        assert_eq!(a.to_assignment(), b.to_assignment());
    }

    #[test]
    fn produces_valid_assignments_under_skewed_priorities() {
        let inst = instance(2);
        let s = space(&inst);
        let mut ctx = GameContext::new(&s);
        let trace = pfgt(
            &mut ctx,
            &PfgtConfig {
                priorities: PrioritySpec::ByWorker(tiered),
                ..PfgtConfig::default()
            },
        );
        assert!(trace.converged);
        assert!(ctx.to_assignment().validate(&inst).is_ok());
    }

    #[test]
    fn pfgt_optimises_priority_fairness_not_plain_fairness() {
        // Averaged over seeds, PFGT under skewed priorities should achieve
        // a lower *priority-aware* payoff difference than plain FGT.
        let mut pfgt_pdiff = 0.0;
        let mut fgt_pdiff = 0.0;
        for seed in 0..6 {
            let inst = instance(100 + seed);
            let s = space(&inst);
            let priorities: Vec<f64> = s.view.workers.iter().map(|&w| tiered(w)).collect();

            let mut f = GameContext::new(&s);
            fgt(&mut f, &FgtConfig::default());
            fgt_pdiff += priority_payoff_difference(f.payoffs(), &priorities);

            let mut p = GameContext::new(&s);
            pfgt(
                &mut p,
                &PfgtConfig {
                    priorities: PrioritySpec::ByWorker(tiered),
                    ..PfgtConfig::default()
                },
            );
            pfgt_pdiff += priority_payoff_difference(p.payoffs(), &priorities);
        }
        assert!(
            pfgt_pdiff <= fgt_pdiff + 1e-9,
            "PFGT priority diff {pfgt_pdiff} > FGT {fgt_pdiff}"
        );
    }

    #[test]
    fn high_priority_workers_earn_more_at_equilibrium() {
        // Averaged over seeds, the mean payoff of priority-2 workers should
        // exceed that of priority-1 workers under PFGT.
        let mut high_total = 0.0;
        let mut low_total = 0.0;
        for seed in 0..8 {
            let inst = instance(200 + seed);
            let s = space(&inst);
            let mut ctx = GameContext::new(&s);
            pfgt(
                &mut ctx,
                &PfgtConfig {
                    priorities: PrioritySpec::ByWorker(tiered),
                    ..PfgtConfig::default()
                },
            );
            for local in 0..ctx.n_workers() {
                if tiered(s.worker_id(local)) > 1.5 {
                    high_total += ctx.payoff(local);
                } else {
                    low_total += ctx.payoff(local);
                }
            }
        }
        assert!(
            high_total > low_total,
            "high-priority workers earned {high_total}, low earned {low_total}"
        );
    }

    #[test]
    fn engines_compute_identical_equilibria_under_priorities() {
        use crate::fgt::BestResponseEngine;
        for seed in [31, 32, 33, 34] {
            let inst = instance(seed);
            let s = space(&inst);
            let run = |engine| {
                let mut ctx = GameContext::new(&s);
                let trace = pfgt(
                    &mut ctx,
                    &PfgtConfig {
                        base: FgtConfig {
                            engine,
                            ..FgtConfig::default()
                        },
                        priorities: PrioritySpec::ByWorker(tiered),
                    },
                );
                (ctx.to_assignment(), trace.len())
            };
            let (a_asg, a_len) = run(BestResponseEngine::Rebuild);
            let (b_asg, b_len) = run(BestResponseEngine::Incremental);
            let (c_asg, c_len) = run(BestResponseEngine::FastPath);
            assert_eq!(a_asg, b_asg, "seed {seed}: assignments diverge");
            assert_eq!(a_len, b_len, "seed {seed}: round counts diverge");
            assert_eq!(b_asg, c_asg, "seed {seed}: fastpath assignment diverges");
            assert_eq!(b_len, c_len, "seed {seed}: fastpath round count diverges");
        }
    }

    #[test]
    fn fastpath_respects_priorities_and_scans_less() {
        use crate::fgt::BestResponseEngine;
        let inst = instance(35);
        let s = space(&inst);
        let run = |engine| {
            let mut ctx = GameContext::new(&s);
            let trace = pfgt(
                &mut ctx,
                &PfgtConfig {
                    base: FgtConfig {
                        engine,
                        ..FgtConfig::default()
                    },
                    priorities: PrioritySpec::ByWorker(tiered),
                },
            );
            (ctx.to_assignment(), trace)
        };
        let (inc_asg, inc) = run(BestResponseEngine::Incremental);
        let (fast_asg, fast) = run(BestResponseEngine::FastPath);
        assert_eq!(inc_asg, fast_asg, "fastpath equilibrium diverges");
        assert_eq!(inc.stats.rounds, fast.stats.rounds);
        assert_eq!(inc.stats.switches, fast.stats.switches);
        assert_eq!(inc.stats.fastpath_rounds, 0);
        assert_eq!(fast.stats.fastpath_rounds, fast.stats.rounds);
        assert!(
            fast.stats.candidates_scanned > 0
                && fast.stats.candidates_scanned < inc.stats.candidates_scanned,
            "fastpath scanned {} vs exhaustive {}",
            fast.stats.candidates_scanned,
            inc.stats.candidates_scanned
        );
    }

    #[test]
    fn warm_start_from_priority_equilibrium_is_a_no_op() {
        let inst = instance(5);
        let s = space(&inst);
        let cfg = PfgtConfig {
            priorities: PrioritySpec::ByWorker(tiered),
            ..PfgtConfig::default()
        };
        let mut cold = GameContext::new(&s);
        let cold_trace = pfgt(&mut cold, &cfg);
        assert!(cold_trace.converged);
        let profile = crate::warm::profile_of(&cold);

        let mut warm = GameContext::new(&s);
        let (trace, stats) = pfgt_warm_bounded(&mut warm, &cfg, &profile, None);
        assert!(stats.is_complete());
        assert!(trace.converged);
        assert_eq!(trace.stats.switches, 0);
        assert_eq!(warm.to_assignment(), cold.to_assignment());
    }

    #[test]
    fn priority_spec_validates_outputs() {
        fn bad(_: WorkerId) -> f64 {
            -1.0
        }
        let spec = PrioritySpec::ByWorker(bad);
        let result = std::panic::catch_unwind(|| spec.of(WorkerId(0)));
        assert!(result.is_err());
    }
}

//! Property-based tests of the geo-sharded solve layer: for *every*
//! random instance, shard count, partitioner, and pool width, sharding
//! must be invisible in the results — it only changes where each center
//! solves, never what it computes.

use fta_algorithms::{
    solve, solve_sharded, solve_sharded_with_pool, Algorithm, FgtConfig, IegtConfig, MptaConfig,
    SolveConfig,
};
use fta_core::{FairnessReport, Instance, ShardBy, WorkerId};
use fta_data::{generate_syn, SynConfig};
use fta_vdps::{VdpsConfig, WorkerPool};
use proptest::prelude::*;

/// Random small multi-center instances driven by a seed and size knobs.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (1u64..500, 2usize..8, 6usize..24, 8usize..24).prop_map(
        |(seed, n_centers, n_workers, n_dps)| {
            generate_syn(
                &SynConfig {
                    n_centers,
                    n_workers,
                    n_tasks: n_dps * 6,
                    n_delivery_points: n_dps,
                    max_dp: 3,
                    extent: 4.0,
                    ..SynConfig::bench_scale()
                },
                seed,
            )
        },
    )
}

fn config(algorithm: Algorithm) -> SolveConfig {
    SolveConfig {
        vdps: VdpsConfig::unpruned(3),
        algorithm,
        ..SolveConfig::new(Algorithm::Gta)
    }
}

fn payoffs(instance: &Instance, outcome: &fta_algorithms::SolveOutcome) -> Vec<f64> {
    let workers: Vec<WorkerId> = (0..instance.workers.len())
        .map(WorkerId::from_index)
        .collect();
    outcome.assignment.payoffs(instance, &workers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_solve_is_bit_identical_to_sequential(
        instance in arb_instance(),
        shards in 1usize..12,
        geo in prop::bool::ANY,
    ) {
        let by = if geo { ShardBy::Geo } else { ShardBy::Hash };
        for algorithm in [
            Algorithm::Gta,
            Algorithm::Mpta(MptaConfig::default()),
            Algorithm::Random { seed: 9 },
        ] {
            let cfg = config(algorithm);
            let flat = solve(&instance, &cfg);
            let sharded = solve_sharded(&instance, &cfg, shards, by);
            prop_assert_eq!(
                &sharded.assignment, &flat.assignment,
                "assignment diverged ({:?}, {} shards, {:?})", by, shards, algorithm
            );
            prop_assert_eq!(payoffs(&instance, &sharded), payoffs(&instance, &flat));
            prop_assert_eq!(sharded.centers.len(), flat.centers.len());
            for (s, f) in sharded.centers.iter().zip(&flat.centers) {
                prop_assert_eq!(s.center, f.center);
                prop_assert_eq!(s.rung, f.rung);
                prop_assert!(s.shard.is_some(), "sharded summary missing attribution");
                prop_assert!(f.shard.is_none(), "flat summary carries attribution");
            }
        }
    }

    #[test]
    fn fairness_metrics_are_shard_count_invariant_for_iterative_games(
        instance in arb_instance(),
        shards in 2usize..10,
    ) {
        for algorithm in [
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(IegtConfig::default()),
        ] {
            let cfg = config(algorithm);
            let one = solve_sharded(&instance, &cfg, 1, ShardBy::Geo);
            let many = solve_sharded(&instance, &cfg, shards, ShardBy::Geo);
            let fair_one = FairnessReport::from_payoffs(&payoffs(&instance, &one));
            let fair_many = FairnessReport::from_payoffs(&payoffs(&instance, &many));
            prop_assert_eq!(
                fair_one, fair_many,
                "fairness metrics varied with shard count ({:?})", algorithm
            );
        }
    }

    #[test]
    fn oversubscribed_pool_agrees_with_sequential(instance in arb_instance()) {
        // Far more shards than pool threads: every center its own shard
        // on a two-thread pool. The queue must drain without deadlock
        // and the merge must stay bit-identical.
        let cfg = config(Algorithm::Gta);
        let flat = solve(&instance, &cfg);
        let pool = WorkerPool::with_threads(2);
        let shards = instance.centers.len();
        let sharded =
            solve_sharded_with_pool(&instance, &cfg, &pool, shards, ShardBy::Hash, None);
        prop_assert_eq!(&sharded.assignment, &flat.assignment);
    }
}

//! Property test: the flight recorder never produces a torn dump under
//! parallel pooled solves. Pool worker threads spray counter/hist/round
//! events into their per-thread rings while the main thread snapshots;
//! `fta_obs::ring::parse` rejects any dump whose per-thread sequence
//! numbers are not strictly increasing ("torn ring"), so a clean parse
//! *is* the no-tearing property.

use fta_algorithms::{solve_with_pool, Algorithm, SolveConfig};
use fta_core::Instance;
use fta_data::{generate_syn, SynConfig};
use fta_vdps::WorkerPool;
use proptest::prelude::*;

/// Random multi-center instances sized so a pooled solve does real work
/// on several threads without making the property slow.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (1u64..500, 2usize..5, 8usize..20, 16usize..32).prop_map(
        |(seed, n_centers, n_workers, n_dps)| {
            generate_syn(
                &SynConfig {
                    n_centers,
                    n_workers,
                    n_tasks: n_dps * 5,
                    n_delivery_points: n_dps,
                    max_dp: 3,
                    extent: 3.0,
                    ..SynConfig::bench_scale()
                },
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dumps taken *while* pooled solves are emitting from worker
    /// threads, and the final quiescent dump, all parse cleanly with
    /// strictly increasing per-thread sequence numbers.
    #[test]
    fn pooled_solves_never_tear_the_flight_ring(instance in arb_instance()) {
        fta_obs::ring::set_armed(true);
        let pool = WorkerPool::new();
        let config = SolveConfig::new(Algorithm::Gta);
        std::thread::scope(|scope| {
            let solver = scope.spawn(|| {
                for _ in 0..3 {
                    let outcome = solve_with_pool(&instance, &config, &pool);
                    assert_eq!(outcome.centers.len(), instance.centers.len());
                }
            });
            // Snapshot concurrently with the emitting pool threads: a
            // mid-flight dump must still be internally consistent.
            while !solver.is_finished() {
                let text = fta_obs::ring::dump("proptest-mid-flight", None);
                let dump = fta_obs::ring::parse(&text)
                    .expect("mid-flight dump parses (no torn ring)");
                assert_eq!(dump.reason, "proptest-mid-flight");
            }
            solver.join().expect("solver thread");
        });
        // Quiescent dump: pool threads emitted real solve traffic, and
        // every thread's event stream is ordered.
        let text = fta_obs::ring::dump("proptest-final", None);
        let dump = fta_obs::ring::parse(&text).expect("final dump parses");
        prop_assert!(!dump.events.is_empty(), "pooled solve emitted nothing");
        prop_assert!(dump.threads >= 1);
    }
}

//! Property-based tests of the assignment algorithms on randomly generated
//! instances: validity, determinism, and equilibrium conditions must hold
//! for every input, not just the crafted unit-test cases.

use fta_algorithms::{
    fgt, gta, iegt, mpta, random_assignment, solve, Algorithm, FgtConfig, GameContext, IegtConfig,
    MptaConfig, SolveConfig,
};
use fta_core::iau::IauEvaluator;
use fta_core::{Instance, SolveBudget};
use fta_data::{generate_syn, SynConfig};
use fta_vdps::{StrategySpace, VdpsConfig};
use proptest::prelude::*;

/// Everything one best-response engine produces that another engine must
/// reproduce: selections, payoff bits, per-round trace summaries
/// (moves, `P_dif` bits, average-payoff bits), and convergence.
type EngineRun = (Vec<Option<u32>>, Vec<u64>, Vec<(usize, u64, u64)>, bool);

/// Random small instances driven by a seed and size knobs.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (1u64..500, 2usize..12, 4usize..16, 1usize..4).prop_map(|(seed, n_workers, n_dps, max_dp)| {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers,
                n_tasks: n_dps * 6,
                n_delivery_points: n_dps,
                max_dp,
                extent: 3.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    })
}

fn space(instance: &Instance) -> StrategySpace {
    let views = instance.center_views();
    StrategySpace::build(instance, &views[0], &VdpsConfig::unpruned(4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_produce_valid_disjoint_assignments(instance in arb_instance()) {
        for algorithm in [
            Algorithm::Gta,
            Algorithm::Mpta(MptaConfig::default()),
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(IegtConfig::default()),
            Algorithm::Random { seed: 1 },
        ] {
            let outcome = solve(
                &instance,
                &SolveConfig {
                    vdps: VdpsConfig::unpruned(4),
                    algorithm,
                    parallel: false,
                    ..SolveConfig::new(Algorithm::Gta)
                },
            );
            prop_assert!(outcome.assignment.validate(&instance).is_ok());
        }
    }

    /// A budget-exhausted solve may degrade all the way down the ladder
    /// but must still return a *valid* partial assignment: deadline-feasible
    /// routes, disjoint delivery points, workers bound to their own center.
    #[test]
    fn budget_exhausted_solves_return_valid_partial_assignments(
        instance in arb_instance(),
        budget_kind in 0usize..4,
        cap in 1usize..16,
    ) {
        let budget = match budget_kind {
            0 => SolveBudget::wall_ms(0),
            1 => SolveBudget { max_states: Some(cap), ..SolveBudget::UNLIMITED },
            2 => SolveBudget { max_rounds: Some(cap % 3), ..SolveBudget::UNLIMITED },
            _ => SolveBudget {
                wall_ms: Some(0),
                max_states: Some(cap),
                max_rounds: Some(1),
            },
        };
        for algorithm in [
            Algorithm::Gta,
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(IegtConfig::default()),
        ] {
            let cfg = SolveConfig {
                vdps: VdpsConfig::unpruned(4),
                algorithm,
                parallel: false,
                budget,
                ..SolveConfig::new(Algorithm::Gta)
            };
            let outcome = solve(&instance, &cfg);
            prop_assert!(
                outcome.assignment.validate(&instance).is_ok(),
                "budget {budget:?} broke assignment validity"
            );
            // State-cap and round-cap budgets are deterministic (wall-clock
            // budgets are not): identical runs give identical assignments.
            if budget.wall_ms.is_none() {
                let again = solve(&instance, &cfg);
                prop_assert_eq!(&outcome.assignment, &again.assignment);
                prop_assert_eq!(&outcome.degradation.events, &again.degradation.events);
            }
        }
    }

    #[test]
    fn gta_assigns_each_worker_their_best_remaining(instance in arb_instance()) {
        let s = space(&instance);
        let mut ctx = GameContext::new(&s);
        gta(&mut ctx);
        for local in 0..ctx.n_workers() {
            let current = ctx.payoff(local);
            for (_, payoff) in ctx.available_strategies(local) {
                prop_assert!(payoff <= current + 1e-9);
            }
        }
    }

    #[test]
    fn mpta_total_payoff_dominates_gta(instance in arb_instance()) {
        let s = space(&instance);
        let mut g = GameContext::new(&s);
        gta(&mut g);
        let mut m = GameContext::new(&s);
        mpta(&mut m, &MptaConfig::default());
        prop_assert!(m.total_payoff() >= g.total_payoff() - 1e-9);
    }

    #[test]
    fn fgt_fixed_point_is_a_nash_equilibrium(instance in arb_instance()) {
        let s = space(&instance);
        let mut ctx = GameContext::new(&s);
        let cfg = FgtConfig::default();
        let trace = fgt(&mut ctx, &cfg);
        prop_assert!(trace.converged);
        let n = ctx.n_workers();
        for local in 0..n {
            let others: Vec<f64> = (0..n)
                .filter(|&j| j != local)
                .map(|j| ctx.payoff(j))
                .collect();
            let eval = IauEvaluator::new(&others, cfg.iau);
            let current = eval.eval(ctx.payoff(local));
            prop_assert!(eval.eval(0.0) <= current + 1e-6);
            for (_, p) in ctx.available_strategies(local) {
                prop_assert!(eval.eval(p) <= current + 1e-6);
            }
        }
    }

    #[test]
    fn iegt_fixed_point_is_a_replicator_rest_point(instance in arb_instance()) {
        let s = space(&instance);
        let mut ctx = GameContext::new(&s);
        let cfg = IegtConfig::default();
        let trace = iegt(&mut ctx, &cfg);
        prop_assert!(trace.converged);
        let n = ctx.n_workers() as f64;
        let average = ctx.total_payoff() / n;
        // Mirror the algorithm's scale-aware equality notions: a worker
        // strictly below the average (beyond the rest slack) must have no
        // available strategy that clears the improvement threshold.
        for local in 0..ctx.n_workers() {
            let current = ctx.payoff(local);
            if current < average - cfg.rest_slack(average) {
                let margin = cfg.improvement_threshold(current);
                prop_assert!(!ctx
                    .available_strategies(local)
                    .any(|(_, p)| p > current + margin));
            }
        }
    }

    #[test]
    fn iegt_average_payoff_is_monotone_over_rounds(instance in arb_instance()) {
        let s = space(&instance);
        let mut ctx = GameContext::new(&s);
        let trace = iegt(&mut ctx, &IegtConfig::default());
        for w in trace.rounds.windows(2) {
            prop_assert!(w[1].average_payoff >= w[0].average_payoff - 1e-9);
        }
    }

    #[test]
    fn solver_is_deterministic(instance in arb_instance()) {
        for algorithm in [
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(IegtConfig::default()),
        ] {
            let run = || {
                solve(
                    &instance,
                    &SolveConfig {
                        vdps: VdpsConfig::unpruned(4),
                        algorithm,
                        parallel: false,
                        ..SolveConfig::new(Algorithm::Gta)
                    },
                )
                .assignment
            };
            prop_assert_eq!(run(), run());
        }
    }

    #[test]
    fn random_assignment_is_valid_for_any_seed(
        instance in arb_instance(),
        seed in 0u64..1000,
    ) {
        let s = space(&instance);
        let mut ctx = GameContext::new(&s);
        random_assignment(&mut ctx, seed);
        prop_assert!(ctx.to_assignment().validate(&instance).is_ok());
    }

    #[test]
    fn game_context_invariants_hold_under_random_strategy_sequences(
        instance in arb_instance(),
        ops in prop::collection::vec((0u16..u16::MAX, 0u16..u16::MAX, prop::bool::ANY), 1..40),
    ) {
        // After ANY sequence of set_strategy calls, the cached occupancy
        // mask must equal the OR of the selected strategies' masks, and the
        // cached payoffs must equal a fresh recomputation from the space.
        let s = space(&instance);
        let mut ctx = GameContext::new(&s);
        for (w, pick, clear) in ops {
            let local = w as usize % ctx.n_workers();
            if clear {
                ctx.set_strategy(local, None);
            } else {
                let avail: Vec<(u32, f64)> = ctx.available_strategies(local).collect();
                if !avail.is_empty() {
                    let (idx, _) = avail[pick as usize % avail.len()];
                    ctx.set_strategy(local, Some(idx));
                }
            }
            let mut expect_taken = 0u128;
            let mut expect_total = 0.0;
            for l in 0..ctx.n_workers() {
                let expect_payoff = match ctx.selection(l) {
                    Some(idx) => {
                        expect_taken |= s.pool[idx as usize].mask;
                        s.payoff_of(l, idx).expect("selected strategy must stay valid")
                    }
                    None => 0.0,
                };
                prop_assert_eq!(ctx.payoff(l), expect_payoff, "worker {}", l);
                expect_total += expect_payoff;
            }
            prop_assert_eq!(ctx.taken_mask(), expect_taken);
            prop_assert!((ctx.total_payoff() - expect_total).abs() < 1e-9);
        }
    }

    /// Engine-equivalence property (the fast path's correctness contract):
    /// for any sound IAU weights (`α ≥ 0`, `β < 1`), the monotone fast
    /// path must reproduce the exhaustive engines *bit for bit* — same
    /// selections, same per-round trace summaries, same payoff vectors.
    #[test]
    fn fastpath_engine_is_bit_identical_for_sound_iau_weights(
        instance in arb_instance(),
        alpha in 0.0f64..4.0,
        beta in 0.0f64..1.0,
    ) {
        let iau = fta_core::iau::IauParams { alpha, beta };
        prop_assert!(fta_algorithms::fastpath_sound(iau));
        let s = space(&instance);
        let run = |engine| {
            let mut ctx = GameContext::new(&s);
            let trace = fgt(&mut ctx, &FgtConfig { iau, engine, ..FgtConfig::default() });
            let selections: Vec<Option<u32>> =
                (0..ctx.n_workers()).map(|l| ctx.selection(l)).collect();
            let payoff_bits: Vec<u64> =
                (0..ctx.n_workers()).map(|l| ctx.payoff(l).to_bits()).collect();
            let summaries: Vec<(usize, u64, u64)> = trace
                .rounds
                .iter()
                .map(|r| (r.moves, r.payoff_difference.to_bits(), r.average_payoff.to_bits()))
                .collect();
            (selections, payoff_bits, summaries, trace.converged)
        };
        let rebuild = run(fta_algorithms::BestResponseEngine::Rebuild);
        let incremental = run(fta_algorithms::BestResponseEngine::Incremental);
        let fastpath = run(fta_algorithms::BestResponseEngine::FastPath);
        // The rebuild engine recomputes round summaries from scratch while
        // the incremental engines maintain them, so their summary *floats*
        // may differ by an ulp; selections, payoffs, move counts, and
        // convergence must still agree exactly.
        prop_assert_eq!(&rebuild.0, &incremental.0, "rebuild selections diverged");
        prop_assert_eq!(&rebuild.1, &incremental.1, "rebuild payoffs diverged");
        let moves =
            |r: &EngineRun| r.2.iter().map(|&(m, _, _)| m).collect::<Vec<usize>>();
        prop_assert_eq!(moves(&rebuild), moves(&incremental), "rebuild moves diverged");
        prop_assert_eq!(rebuild.3, incremental.3, "rebuild convergence diverged");
        // The fast path mirrors the incremental engine's rival structure
        // operation for operation, so it must be bit-identical to it —
        // trace summaries included.
        prop_assert_eq!(&incremental, &fastpath, "fastpath diverged");
    }

    /// Unsound IAU weights (`β ≥ 1`, where IAU utility is no longer
    /// monotone in own payoff) must make the `FastPath` engine fall back
    /// to exhaustive evaluation: zero fast-path rounds, and the outcome
    /// identical to the `Incremental` engine it delegates to.
    #[test]
    fn fastpath_engine_falls_back_when_beta_is_large(
        instance in arb_instance(),
        beta in 1.0f64..3.0,
    ) {
        let iau = fta_core::iau::IauParams { alpha: 0.5, beta };
        prop_assert!(!fta_algorithms::fastpath_sound(iau));
        let s = space(&instance);
        let run = |engine| {
            let mut ctx = GameContext::new(&s);
            let trace = fgt(&mut ctx, &FgtConfig { iau, engine, ..FgtConfig::default() });
            (ctx.to_assignment(), trace)
        };
        let (inc_asg, inc) = run(fta_algorithms::BestResponseEngine::Incremental);
        let (fast_asg, fast) = run(fta_algorithms::BestResponseEngine::FastPath);
        prop_assert_eq!(fast.stats.fastpath_rounds, 0, "unsound weights took the fast path");
        prop_assert_eq!(fast.stats.early_exits, 0);
        prop_assert_eq!(inc_asg, fast_asg);
        prop_assert_eq!(inc.stats, fast.stats);
    }
}

//! Property-based tests of the incremental [`Solver`]: a resolve with an
//! empty churn set must return the cached outcome bit for bit, and warm
//! re-solves under randomized churn must agree with cold solves — exactly
//! for the deterministic baselines, and up to equilibrium validity for
//! the iterative games.

use fta_algorithms::{Algorithm, FgtConfig, IegtConfig, MptaConfig, SolveConfig, Solver};
use fta_core::{ChurnSet, Instance, WorkerId};
use fta_data::{generate_syn, SynConfig};
use proptest::prelude::*;

/// Random multi-center instances driven by a seed and size knobs.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (1u64..500, 2usize..4, 8usize..24, 16usize..40).prop_map(
        |(seed, n_centers, n_workers, n_dps)| {
            generate_syn(
                &SynConfig {
                    n_centers,
                    n_workers,
                    n_tasks: n_dps * 6,
                    n_delivery_points: n_dps,
                    max_dp: 3,
                    extent: 3.0,
                    ..SynConfig::bench_scale()
                },
                seed,
            )
        },
    )
}

/// A randomized churn: drop a fraction of tasks and age the rest.
fn churn_instance(base: &Instance, drop_every: usize, age: f64) -> Instance {
    let mut churned = base.clone();
    let mut i = 0usize;
    churned.tasks.retain(|t| {
        i += 1;
        (i - 1) % drop_every != 0 && t.expiry > age
    });
    for t in &mut churned.tasks {
        t.expiry -= age;
    }
    churned
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Resolving with an empty churn set is a pure cache hit: every
    /// center short-circuits clean and the merged assignment is the
    /// cached one bit for bit, for every algorithm family.
    #[test]
    fn empty_churn_resolve_returns_the_cached_outcome(instance in arb_instance()) {
        for algorithm in [
            Algorithm::Gta,
            Algorithm::Mpta(MptaConfig::default()),
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(IegtConfig::default()),
            Algorithm::Random { seed: 9 },
        ] {
            let mut solver = Solver::new(SolveConfig::new(algorithm));
            let first = solver.solve(&instance);
            let again = solver.resolve(&instance, &ChurnSet::empty(instance.workers.len()));
            let stats = solver.last_stats();
            prop_assert_eq!(
                stats.centers_clean,
                instance.centers.len(),
                "algorithm {} left centers unclean: {:?}",
                algorithm.name(),
                stats
            );
            prop_assert_eq!(&first.assignment, &again.assignment);
            let pop: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
            for (a, b) in first
                .assignment
                .payoffs(&instance, &pop)
                .iter()
                .zip(again.assignment.payoffs(&instance, &pop))
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "payoffs not bit-identical");
            }
        }
    }

    /// Under randomized task churn the warm GTA resolve must be bitwise
    /// equal to a cold solve of the churned instance: GTA is
    /// deterministic and the delta pool is bit-identical to regeneration.
    #[test]
    fn warm_gta_equals_cold_under_randomized_churn(
        instance in arb_instance(),
        drop_every in 3usize..12,
        age in 0.0f64..0.5,
    ) {
        let config = SolveConfig::new(Algorithm::Gta);
        let mut solver = Solver::new(config);
        solver.solve(&instance);
        let churned = churn_instance(&instance, drop_every, age);
        let warm = solver.resolve(&churned, &ChurnSet::empty(churned.workers.len()));
        let cold = fta_algorithms::solve(&churned, &config);
        prop_assert_eq!(&warm.assignment, &cold.assignment);
        let pop: Vec<WorkerId> = churned.workers.iter().map(|w| w.id).collect();
        for (a, b) in warm
            .assignment
            .payoffs(&churned, &pop)
            .iter()
            .zip(cold.assignment.payoffs(&churned, &pop))
        {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "payoffs not bit-identical");
        }
        prop_assert!(warm.assignment.validate(&churned).is_ok());
    }

    /// Warm FGT under randomized churn: the re-solve must stay a valid,
    /// converged equilibrium of the churned instance, and repeating the
    /// identical resolve from the same cache state must be deterministic.
    #[test]
    fn warm_fgt_is_valid_converged_and_deterministic(
        instance in arb_instance(),
        drop_every in 3usize..12,
        age in 0.0f64..0.5,
    ) {
        let config = SolveConfig::new(Algorithm::Fgt(FgtConfig::default()));
        let churned = churn_instance(&instance, drop_every, age);
        let churn = ChurnSet::empty(churned.workers.len());

        let mut a = Solver::new(config);
        a.solve(&instance);
        let wa = a.resolve(&churned, &churn);

        let mut b = Solver::new(config);
        b.solve(&instance);
        let wb = b.resolve(&churned, &churn);

        prop_assert!(wa.assignment.validate(&churned).is_ok());
        prop_assert!(wa.trace.converged, "warm FGT did not converge");
        prop_assert_eq!(&wa.assignment, &wb.assignment, "warm resolve not deterministic");
        prop_assert_eq!(a.last_stats(), b.last_stats());
    }
}

//! Property-based equivalence of the chunked-limb scan kernels against
//! the scalar reference loops, end to end through every assignment
//! algorithm: for any random instance, a game solved with
//! `ScanKernel::Chunked` must be *bit-identical* to the same game solved
//! with `ScanKernel::Scalar` — same selections, same payoff bits, same
//! work counters. The kernels are a pure representation change; any
//! divergence is a kernel bug, never an acceptable rounding difference.

use fta_algorithms::{
    fgt, gta, iegt, mpta, pfgt, random_assignment, FgtConfig, GameContext, IegtConfig, MptaConfig,
    PfgtConfig,
};
use fta_core::Instance;
use fta_data::{generate_syn, SynConfig};
use fta_vdps::{ScanKernel, StrategySpace, VdpsConfig};
use proptest::prelude::*;

/// Random small instances driven by a seed and size knobs.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (1u64..500, 2usize..12, 4usize..16, 1usize..4).prop_map(|(seed, n_workers, n_dps, max_dp)| {
        generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers,
                n_tasks: n_dps * 6,
                n_delivery_points: n_dps,
                max_dp,
                extent: 3.0,
                ..SynConfig::bench_scale()
            },
            seed,
        )
    })
}

fn space(instance: &Instance) -> StrategySpace {
    let views = instance.center_views();
    StrategySpace::build(instance, &views[0], &VdpsConfig::unpruned(4))
}

/// Runs one algorithm under the given kernel and returns everything the
/// other kernel must reproduce exactly: selections, payoff bits, and —
/// for the trace-producing algorithms — the scan work counter (the
/// kernels must visit candidates in the same order, so even `scanned`
/// accounting is pinned).
fn run(
    s: &StrategySpace,
    kernel: ScanKernel,
    algorithm: usize,
) -> (Vec<Option<u32>>, Vec<u64>, Option<u64>) {
    let mut ctx = GameContext::new(s);
    ctx.set_scan_kernel(kernel);
    let scanned = match algorithm {
        0 => {
            gta(&mut ctx);
            None
        }
        1 => {
            mpta(&mut ctx, &MptaConfig::default());
            None
        }
        2 => Some(
            fgt(&mut ctx, &FgtConfig::default())
                .stats
                .candidates_scanned,
        ),
        3 => Some(
            pfgt(&mut ctx, &PfgtConfig::default())
                .stats
                .candidates_scanned,
        ),
        4 => Some(
            iegt(&mut ctx, &IegtConfig::default())
                .stats
                .candidates_scanned,
        ),
        _ => {
            random_assignment(&mut ctx, 7);
            None
        }
    };
    let selections: Vec<Option<u32>> = (0..ctx.n_workers()).map(|l| ctx.selection(l)).collect();
    let payoff_bits: Vec<u64> = (0..ctx.n_workers())
        .map(|l| ctx.payoff(l).to_bits())
        .collect();
    (selections, payoff_bits, scanned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chunked_kernels_are_bit_identical_across_all_algorithms(
        instance in arb_instance(),
        algorithm in 0usize..6,
    ) {
        let s = space(&instance);
        let scalar = run(&s, ScanKernel::Scalar, algorithm);
        let chunked = run(&s, ScanKernel::Chunked, algorithm);
        prop_assert_eq!(&scalar.0, &chunked.0, "selections diverged (algorithm {})", algorithm);
        prop_assert_eq!(&scalar.1, &chunked.1, "payoff bits diverged (algorithm {})", algorithm);
        prop_assert_eq!(scalar.2, chunked.2, "candidates_scanned diverged (algorithm {})", algorithm);
    }
}

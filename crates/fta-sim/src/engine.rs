//! The discrete-event loop: periodic snapshot → solve → apply.

use crate::faults::FaultPlan;
use crate::metrics::{DayMetrics, WorkerLedger};
use crate::scenario::{ArrivingTask, Scenario};
use crate::state::{self, LoopState};
use fta_algorithms::{
    solve, solve_sharded, Algorithm, CacheSeed, ShardedSolver, SolveConfig, SolveOutcome, Solver,
};
use fta_core::entities::{SpatialTask, Worker};
use fta_core::ids::{DeliveryPointId, TaskId, WorkerId};
use fta_core::route::Route;
use fta_core::{CenterChurn, ChurnSet, Instance, ShardBy, SolveBudget};
use fta_durable::{DurableError, FsyncPolicy, Journal};
use fta_obs::ledger::SolveRecord;
use fta_vdps::VdpsConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

/// Plans single-stop routes for the [`DispatchPolicy::Immediate`] baseline:
/// per center, delivery points are served in earliest-deadline order, each
/// by the nearest idle worker whose initial leg still meets the deadline.
/// Returns `(original worker index, route)` pairs; `idle` maps the
/// snapshot's dense worker ids back to scenario indices.
fn plan_immediate(snapshot: &Instance, idle: &[usize]) -> Vec<(usize, Arc<Route>)> {
    let aggs = snapshot.dp_aggregates();
    let mut used = vec![false; snapshot.workers.len()];
    let mut planned = Vec::new();
    for view in snapshot.center_views() {
        let dc = snapshot.centers[view.center.index()].location;
        let mut dps = view.dps.clone();
        dps.sort_by(|a, b| {
            aggs[a.index()]
                .earliest_expiry
                .total_cmp(&aggs[b.index()].earliest_expiry)
        });
        for dp in dps {
            let route = Route::build(snapshot, &aggs, view.center, vec![dp])
                .expect("singleton routes over snapshot dps are well-formed");
            if !route.is_center_origin_valid() {
                continue;
            }
            // Nearest feasible unused worker of this center.
            let candidate = view
                .workers
                .iter()
                .filter(|w| !used[w.index()])
                .map(|&w| {
                    let to_dc = snapshot.travel_time(snapshot.workers[w.index()].location, dc);
                    (w, to_dc)
                })
                .filter(|&(_, to_dc)| route.is_valid_for_travel(to_dc))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((w, _)) = candidate {
                used[w.index()] = true;
                planned.push((idle[w.index()], Arc::new(route)));
            }
        }
    }
    planned
}

/// How pending tasks are dispatched at each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchPolicy {
    /// Snapshot everything and run an FTA assignment algorithm (the
    /// paper's batch model).
    Batch(Algorithm),
    /// Naive production dispatching: serve each pending delivery point by
    /// sending its nearest feasible idle courier on a single-stop route,
    /// first-come first-served. No routing, no fairness — the baseline a
    /// platform has *before* adopting the paper's approach.
    Immediate,
}

/// Durability settings: where and how aggressively the engine journals
/// its round-by-round state (see [`SimConfig::durable`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DurableConfig {
    /// Directory holding the commit log (`wal.fta`) and snapshots.
    pub dir: PathBuf,
    /// When appended frames are fsynced (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// A full snapshot is persisted (and the log truncated) every this
    /// many journaled rounds.
    pub snapshot_every: u64,
    /// Crash drill: abort the whole process (as `kill -9` would) right
    /// after journaling this round. Test/CI hook for exercising recovery;
    /// `None` in production.
    pub crash_after_round: Option<u64>,
}

impl DurableConfig {
    /// Journaling into `dir` with the default policy: fsync every 8
    /// frames, snapshot every 16 rounds.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(8),
            snapshot_every: 16,
            crash_after_round: None,
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Simulated horizon, hours.
    pub horizon: f64,
    /// Interval between assignment rounds, hours.
    pub assignment_period: f64,
    /// The dispatch policy run at each round.
    pub policy: DispatchPolicy,
    /// VDPS generation settings for each round (batch policies only).
    pub vdps: VdpsConfig,
    /// Solve distribution centers on separate threads (batch policies
    /// only).
    pub parallel: bool,
    /// Per-round solve budget (batch policies only). Rounds whose solve
    /// degrades down the ladder are counted in
    /// [`DayMetrics::degraded_rounds`]. Defaults to
    /// [`SolveBudget::UNLIMITED`], which leaves the solver untouched.
    pub budget: SolveBudget,
    /// Optional fault injection (see [`FaultPlan`]). `None` — the
    /// default — runs the pristine simulation, bit-identical to builds
    /// without the fault layer.
    pub faults: Option<FaultPlan>,
    /// Solve rounds incrementally (batch policies only): a persistent
    /// [`Solver`] keeps per-center VDPS pools and equilibrium profiles
    /// between rounds, delta-updates them against the computed
    /// [`ChurnSet`], and warm-starts the game from the previous round's
    /// equilibrium. Incremental rounds solve centers sequentially (the
    /// `parallel` flag only affects cold solves). For deterministic
    /// single-attempt algorithms (GTA, MPTA, Random) the incremental day
    /// is bit-identical to the cold day; the iterative games may converge
    /// to a different — equally valid — equilibrium because the warm path
    /// runs a single best-response pass instead of multi-restart search.
    pub incremental: bool,
    /// Optional durability: journal every solved round's full state (plus
    /// the incremental solver's cache seed) to a checksummed commit log
    /// with periodic snapshots, so a crashed day can be resumed with
    /// [`restore`] bit-for-bit. `None` — the default — journals nothing
    /// and is bit-identical to builds without the durability layer; when
    /// set, journaling only *observes* the day (same metrics either way).
    pub durable: Option<DurableConfig>,
    /// Solve each round's centers in geo-sharded groups (batch policies
    /// only): `Some(k)` partitions the centers into `k` shards (see
    /// [`ShardBy`]) and solves the shards concurrently with cost-aware
    /// scheduling. `None` — the default — uses the flat per-center path.
    /// Sharding never changes a deterministic algorithm's assignment
    /// (GTA, MPTA, Random are bit-identical at any shard count); the
    /// iterative games may converge to an equally valid equilibrium.
    pub shards: Option<usize>,
    /// Shard partitioner used when [`SimConfig::shards`] is set.
    pub shard_by: ShardBy,
}

impl SimConfig {
    /// An 8-hour day with a batch assignment round every 15 minutes.
    #[must_use]
    pub fn day(algorithm: Algorithm) -> Self {
        Self {
            horizon: 8.0,
            assignment_period: 0.25,
            policy: DispatchPolicy::Batch(algorithm),
            vdps: VdpsConfig::default(),
            parallel: false,
            budget: SolveBudget::UNLIMITED,
            faults: None,
            incremental: false,
            durable: None,
            shards: None,
            shard_by: ShardBy::default(),
        }
    }

    /// Sets the per-round solve budget.
    #[must_use]
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables incremental round-over-round solving (see
    /// [`SimConfig::incremental`]).
    #[must_use]
    pub fn with_incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// Enables fault injection with the given plan.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables durability (see [`SimConfig::durable`]).
    #[must_use]
    pub fn with_durable(mut self, durable: DurableConfig) -> Self {
        self.durable = Some(durable);
        self
    }

    /// Enables geo-sharded round solves (see [`SimConfig::shards`]).
    #[must_use]
    pub fn with_shards(mut self, shards: usize, by: ShardBy) -> Self {
        self.shards = Some(shards);
        self.shard_by = by;
        self
    }
}

/// The persistent round-over-round solver held by incremental days:
/// either the flat per-center [`Solver`] or the geo-sharded
/// [`ShardedSolver`], chosen once from [`SimConfig::shards`]. Both
/// produce interchangeable cache seeds (center-sorted), so a journal
/// written by one shape can be rehydrated by the other.
enum RoundSolver {
    Flat(Solver),
    Sharded(ShardedSolver),
}

impl RoundSolver {
    fn new(config: SolveConfig, shards: Option<usize>, by: ShardBy) -> Self {
        match shards {
            Some(k) => Self::Sharded(ShardedSolver::new(config, k, by)),
            None => Self::Flat(Solver::new(config)),
        }
    }

    fn resolve(&mut self, instance: &Instance, churn: &ChurnSet) -> SolveOutcome {
        match self {
            Self::Flat(s) => s.resolve(instance, churn),
            Self::Sharded(s) => s.resolve(instance, churn),
        }
    }

    fn cache_seed(&self) -> Option<CacheSeed> {
        match self {
            Self::Flat(s) => s.cache_seed(),
            Self::Sharded(s) => s.cache_seed(),
        }
    }

    fn rehydrate(&mut self, instance: &Instance, keys: &[u64], seed: &CacheSeed) -> bool {
        match self {
            Self::Flat(s) => s.rehydrate(instance, keys, seed),
            Self::Sharded(s) => s.rehydrate(instance, keys, seed),
        }
    }
}

/// Outcome of a run: the longitudinal metrics (see [`DayMetrics`]).
pub type SimReport = DayMetrics;

/// A pending (arrived, unassigned, unexpired) task.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub(crate) task: ArrivingTask,
    /// Instant at which the requester cancels this task, if the fault
    /// plan decided so at ingest.
    pub(crate) cancel_at: Option<f64>,
    /// Times this task has been requeued after a failed route.
    pub(crate) retries: u32,
    /// Retry backoff: the task is excluded from round snapshots until
    /// this instant.
    pub(crate) eligible_after: f64,
}

/// Builds a [`Pending`] entry, drawing the cancellation fate from the
/// fault RNG when a plan with `p_cancel > 0` is active.
fn make_pending(task: ArrivingTask, plan: Option<&FaultPlan>, rng: Option<&mut StdRng>) -> Pending {
    let cancel_at = match (plan, rng) {
        (Some(plan), Some(rng)) if plan.p_cancel > 0.0 => {
            if rng.gen_range(0.0..1.0) < plan.p_cancel {
                Some(if task.deadline > task.arrival {
                    rng.gen_range(task.arrival..task.deadline)
                } else {
                    task.arrival
                })
            } else {
                None
            }
        }
        _ => None,
    };
    Pending {
        task,
        cancel_at,
        retries: 0,
        eligible_after: 0.0,
    }
}

/// The shape of one solved round, remembered for churn detection: the
/// instant it was solved at, which scenario workers were idle per center,
/// and how many tasks each center's snapshot carried.
pub(crate) struct RoundShape {
    pub(crate) now: f64,
    pub(crate) center_workers: Vec<Vec<usize>>,
    pub(crate) center_tasks: Vec<u64>,
}

impl RoundShape {
    fn of(scenario: &Scenario, idle: &[usize], instance: &Instance, now: f64) -> Self {
        let n_centers = scenario.centers.len();
        let mut center_workers = vec![Vec::new(); n_centers];
        for &orig in idle {
            center_workers[scenario.workers[orig].center.index()].push(orig);
        }
        let mut center_tasks = vec![0u64; n_centers];
        for t in &instance.tasks {
            center_tasks[scenario.delivery_points[t.delivery_point.index()]
                .center
                .index()] += 1;
        }
        Self {
            now,
            center_workers,
            center_tasks,
        }
    }
}

/// Builds the [`ChurnSet`] handed to [`Solver::resolve`]: worker keys are
/// scenario indices (stable across the dense per-round renumbering), age
/// is the time since the last solved round, and the per-center
/// diagnostics compare idle sets exactly and task counts approximately
/// (count deltas — identity-accurate task diffing is the solver's job,
/// done bitwise on aggregates).
fn churn_between(prev: Option<&RoundShape>, cur: &RoundShape, idle: &[usize]) -> ChurnSet {
    let worker_keys = idle.iter().map(|&w| w as u64).collect();
    let Some(prev) = prev else {
        return ChurnSet {
            age: 0.0,
            worker_keys,
            per_center: Vec::new(),
        };
    };
    let per_center = cur
        .center_workers
        .iter()
        .zip(&prev.center_workers)
        .zip(cur.center_tasks.iter().zip(&prev.center_tasks))
        .map(|((cw, pw), (&ct, &pt))| CenterChurn {
            added_tasks: ct.saturating_sub(pt).min(u64::from(u32::MAX)) as u32,
            removed_tasks: pt.saturating_sub(ct).min(u64::from(u32::MAX)) as u32,
            arrived_workers: cw.iter().filter(|w| !pw.contains(w)).count() as u32,
            departed_workers: pw.iter().filter(|w| !cw.contains(w)).count() as u32,
        })
        .collect();
    ChurnSet {
        age: cur.now - prev.now,
        worker_keys,
        per_center,
    }
}

/// A log-normal multiplicative factor with median 1 (Box–Muller), or
/// exactly 1 when `sigma` is zero (no RNG draw in that case).
fn lognormal_factor(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

/// Runs the simulation.
///
/// Every `assignment_period` the engine ingests new arrivals, drops
/// expired tasks, snapshots the idle workers and pending tasks into an
/// [`Instance`] (task expiries become *remaining* times relative to the
/// round instant), solves it with the configured algorithm, and applies
/// the assignment: each assigned worker is busy until route completion,
/// reappears at its final delivery point, and banks the route's rewards.
///
/// ```
/// use fta_algorithms::Algorithm;
/// use fta_sim::{run, Scenario, ScenarioConfig, SimConfig};
///
/// let scenario = Scenario::generate(&ScenarioConfig::default(), 1.0, 42);
/// let metrics = run(&scenario, &SimConfig {
///     horizon: 1.0,
///     ..SimConfig::day(Algorithm::Gta)
/// });
/// assert_eq!(metrics.tasks_arrived, scenario.tasks.len());
/// assert!(metrics.completion_rate() <= 1.0);
/// ```
///
/// # Faults and budgets
///
/// With [`SimConfig::faults`] set, the engine layers a deterministic
/// adversary over the day (see [`FaultPlan`]): assigned routes may be
/// refused outright (*no-show*) or abandoned after a prefix of stops
/// (*dropout*), in which case the undelivered tasks are **requeued** with
/// a backoff window and a bounded retry count, after which they are
/// abandoned. Requesters may cancel tasks, and executed travel times may
/// be inflated log-normally (delaying the worker's return to the idle
/// pool). With [`SimConfig::budget`] set, every round's solve runs under
/// that budget and rounds that degrade are counted. Both default to off,
/// in which case this function behaves identically to the pristine
/// engine.
///
/// # Panics
///
/// Panics if the horizon or the assignment period is not positive, or if
/// the fault plan fails [`FaultPlan::validate`].
#[must_use]
pub fn run(scenario: &Scenario, config: &SimConfig) -> SimReport {
    run_inner(scenario, config, None)
}

/// Runs the simulation and appends one [`SolveRecord`] per batch
/// assignment round to `records` — the per-round solve ledger.
///
/// Each record carries the round number (1-based), the simulated instant
/// in hours, per-center causal attribution (rung, budget axis, resolve
/// path, work counters), and the fairness trajectory over *cumulative*
/// worker earnings at the end of the round, so "why did center 17 fall
/// to GTA in round 40" is answerable from the ledger file alone. The
/// [`DispatchPolicy::Immediate`] baseline runs no solver and therefore
/// writes no records.
///
/// The returned metrics are bit-identical to [`run`]: the ledger only
/// observes the day, it never influences it.
#[must_use]
pub fn run_with_ledger(
    scenario: &Scenario,
    config: &SimConfig,
    records: &mut Vec<SolveRecord>,
) -> SimReport {
    run_inner(scenario, config, Some(records))
}

impl LoopState {
    /// The loop state at the start of a pristine day.
    fn fresh(scenario: &Scenario, config: &SimConfig) -> Self {
        let n_workers = scenario.workers.len();
        Self {
            now: config.assignment_period,
            rounds: 0,
            next_arrival: 0,
            tasks_completed: 0,
            tasks_expired: 0,
            tasks_cancelled: 0,
            tasks_abandoned: 0,
            reassignments: 0,
            worker_no_shows: 0,
            route_dropouts: 0,
            degraded_rounds: 0,
            ledgers: vec![WorkerLedger::default(); n_workers],
            busy_until: vec![0.0_f64; n_workers],
            location: scenario.workers.iter().map(|w| w.location).collect(),
            pending: Vec::new(),
            fault_rng: config.faults.map(|p| StdRng::seed_from_u64(p.seed)),
            last_round: None,
        }
    }
}

/// Live journaling handle carried through the day. A mid-day append
/// failure (disk full, volume gone) must never take the day down: the
/// sink goes dead, counts the loss, and the rest of the day runs
/// unjournaled — the simulation result is unaffected by construction.
struct DurableSink {
    journal: Journal,
    crash_after_round: Option<u64>,
    dead: bool,
}

impl DurableSink {
    fn record(&mut self, round: u64, payload: &[u8]) {
        if !self.dead {
            if let Err(e) = self.journal.record(round, payload) {
                self.dead = true;
                fta_obs::counter("wal.dead", 1);
                fta_obs::ring::mark("wal-dead", None);
                eprintln!("fta-sim: journaling disabled after round {round}: {e}");
            }
        }
        if self.crash_after_round == Some(round) {
            // The crash drill models a power cut, not a clean shutdown —
            // but the frame under test must be on disk first, so the
            // drill syncs and then dies without unwinding.
            let _ = self.journal.sync();
            eprintln!("fta-sim: crash drill firing after round {round}");
            std::process::abort();
        }
    }
}

fn validate_config(config: &SimConfig) {
    assert!(
        config.horizon > 0.0 && config.assignment_period > 0.0,
        "horizon and assignment period must be positive"
    );
    if let Some(plan) = &config.faults {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
    }
}

fn run_inner(
    scenario: &Scenario,
    config: &SimConfig,
    ledger_sink: Option<&mut Vec<SolveRecord>>,
) -> SimReport {
    validate_config(config);
    let mut st = LoopState::fresh(scenario, config);
    let mut inc_solver: Option<RoundSolver> = None;
    // A journal that cannot even be *created* is a configuration error
    // (unwritable directory), not a mid-day fault — fail loudly up front
    // rather than run a day the caller believes is durable.
    let mut durable = config.durable.as_ref().map(|d| {
        let fingerprint = state::fingerprint(scenario, config);
        let journal = Journal::create(&d.dir, fingerprint, d.fsync, d.snapshot_every)
            .unwrap_or_else(|e| panic!("cannot create durable journal in {:?}: {e}", d.dir));
        DurableSink {
            journal,
            crash_after_round: d.crash_after_round,
            dead: false,
        }
    });
    drive(
        scenario,
        config,
        &mut st,
        &mut inc_solver,
        ledger_sink,
        durable.as_mut(),
    )
}

/// The event loop itself, shared by fresh runs and recovered runs: drives
/// `st` from wherever it stands to the horizon and settles the metrics.
fn drive(
    scenario: &Scenario,
    config: &SimConfig,
    st: &mut LoopState,
    inc_solver: &mut Option<RoundSolver>,
    mut ledger_sink: Option<&mut Vec<SolveRecord>>,
    mut durable: Option<&mut DurableSink>,
) -> SimReport {
    let n_workers = scenario.workers.len();
    let plan = config.faults;
    while st.now <= config.horizon + 1e-12 {
        let now = st.now;
        // Ingest arrivals up to this round.
        while st.next_arrival < scenario.tasks.len()
            && scenario.tasks[st.next_arrival].arrival <= now
        {
            let entry = make_pending(
                scenario.tasks[st.next_arrival],
                plan.as_ref(),
                st.fault_rng.as_mut(),
            );
            st.pending.push(entry);
            st.next_arrival += 1;
        }
        // Requester cancellations fire before the expiry sweep (a task
        // cancelled before its deadline counts as cancelled, not expired).
        st.pending.retain(|p| {
            if p.cancel_at.is_some_and(|c| c <= now) {
                st.tasks_cancelled += 1;
                fta_obs::counter("sim.cancelled", 1);
                false
            } else {
                true
            }
        });
        // Drop tasks that expired while waiting.
        st.pending.retain(|p| {
            if p.task.deadline <= now {
                st.tasks_expired += 1;
                false
            } else {
                true
            }
        });

        // Backlog peak is a property of every tick, not just the ticks
        // that run an assignment round, and it must include tasks hidden
        // by retry backoff — record it before any eligibility filtering.
        fta_obs::gauge_max("sim.pending_peak", st.pending.len() as u64);

        // Snapshot idle workers and backoff-eligible pending tasks.
        let idle: Vec<usize> = (0..n_workers)
            .filter(|&w| st.busy_until[w] <= now)
            .collect();
        let any_eligible = st.pending.iter().any(|p| p.eligible_after <= now);
        if !idle.is_empty() && any_eligible {
            st.rounds += 1;
            let _tick_span = fta_obs::span("sim.tick");
            fta_obs::counter("sim.rounds", 1);
            let snapshot_workers: Vec<Worker> = idle
                .iter()
                .enumerate()
                .map(|(dense, &orig)| Worker {
                    id: WorkerId::from_index(dense),
                    location: st.location[orig],
                    max_dp: scenario.workers[orig].max_dp,
                    center: scenario.workers[orig].center,
                })
                .collect();
            let snapshot_tasks: Vec<SpatialTask> = st
                .pending
                .iter()
                .filter(|p| p.eligible_after <= now)
                .enumerate()
                .map(|(dense, p)| SpatialTask {
                    id: TaskId::from_index(dense),
                    delivery_point: p.task.delivery_point,
                    expiry: p.task.deadline - now,
                    reward: p.task.reward,
                })
                .collect();
            let instance = Instance::new(
                scenario.centers.clone(),
                snapshot_workers,
                scenario.delivery_points.clone(),
                snapshot_tasks,
                scenario.config.speed,
            )
            .expect("snapshots preserve all instance invariants");

            // Plan routes: (original worker index, route) pairs. The
            // timer feeds the per-tick assignment latency histogram
            // (both dispatch policies, so they can be compared).
            // A batch round additionally stages its ledger record here;
            // the fairness block is filled in after the routes are
            // applied, when this round's earnings have been banked. A
            // durable round stages the same record so recovery can
            // re-materialise the ledger from the journal alone.
            let mut round_record: Option<SolveRecord> = None;
            let planned: Vec<(usize, Arc<Route>)> = {
                let _assign_timer = fta_obs::hist_timer("sim.assign_nanos");
                match config.policy {
                    DispatchPolicy::Batch(algorithm) => {
                        let solve_config = SolveConfig {
                            vdps: config.vdps,
                            algorithm,
                            parallel: config.parallel,
                            budget: config.budget,
                            ..SolveConfig::new(Algorithm::Gta)
                        };
                        let outcome = if config.incremental {
                            let shape = RoundShape::of(scenario, &idle, &instance, now);
                            let churn = churn_between(st.last_round.as_ref(), &shape, &idle);
                            st.last_round = Some(shape);
                            inc_solver
                                .get_or_insert_with(|| {
                                    RoundSolver::new(solve_config, config.shards, config.shard_by)
                                })
                                .resolve(&instance, &churn)
                        } else if let Some(shards) = config.shards {
                            solve_sharded(&instance, &solve_config, shards, config.shard_by)
                        } else {
                            solve(&instance, &solve_config)
                        };
                        debug_assert!(outcome.assignment.validate(&instance).is_ok());
                        if outcome.is_degraded() {
                            st.degraded_rounds += 1;
                            fta_obs::counter("sim.degraded_rounds", 1);
                        }
                        if ledger_sink.is_some() || durable.is_some() {
                            round_record = Some(SolveRecord {
                                round: Some(st.rounds as u64),
                                sim_hours: Some(now),
                                algo: algorithm.name().to_string(),
                                engine: if config.incremental {
                                    "incremental".to_string()
                                } else {
                                    "batch".to_string()
                                },
                                degraded: outcome.is_degraded(),
                                budget_exhausted: outcome.degradation.budget_exhausted(),
                                centers: fta_algorithms::ledger::center_records(&outcome),
                                // Placeholder; replaced with the
                                // end-of-round cumulative distribution.
                                fairness: fta_algorithms::ledger::fairness_from_incomes(&[]),
                            });
                        }
                        outcome
                            .assignment
                            .iter_shared()
                            .map(|(w, route)| (idle[w.index()], route))
                            .collect()
                    }
                    DispatchPolicy::Immediate => plan_immediate(&instance, &idle),
                }
            };

            // Apply each planned route, subjecting it to the fault plan:
            // a no-show leaves the worker idle and fails every stop; a
            // dropout delivers a prefix of stops and fails the rest;
            // inflation stretches the executed travel time.
            let mut delivered_dps: Vec<DeliveryPointId> = Vec::new();
            let mut failed_dps: Vec<DeliveryPointId> = Vec::new();
            for (orig, route) in &planned {
                let orig = *orig;
                let mut served: &[DeliveryPointId] = route.dps();
                if let (Some(plan), Some(rng)) = (plan.as_ref(), st.fault_rng.as_mut()) {
                    if plan.p_no_show > 0.0 && rng.gen_range(0.0..1.0) < plan.p_no_show {
                        st.worker_no_shows += 1;
                        fta_obs::counter("sim.no_shows", 1);
                        failed_dps.extend_from_slice(route.dps());
                        continue; // the worker never moves and stays idle
                    }
                    if plan.p_dropout > 0.0 && rng.gen_range(0.0..1.0) < plan.p_dropout {
                        st.route_dropouts += 1;
                        fta_obs::counter("sim.dropouts", 1);
                        let stops = rng.gen_range(0..route.len());
                        served = &route.dps()[..stops];
                        failed_dps.extend_from_slice(&route.dps()[stops..]);
                    }
                }
                let dc = scenario.centers[route.center().index()].location;
                let to_dc = st.location[orig].travel_time(dc, scenario.config.speed);
                // Completed routes reuse the precomputed route time (the
                // pristine code path, bit-for-bit); truncated routes are
                // re-walked leg by leg up to the last stop served.
                let travel = if served.len() == route.len() {
                    to_dc + route.travel_from_dc()
                } else {
                    let mut t = to_dc;
                    let mut at = dc;
                    for dp in served {
                        let next = scenario.delivery_points[dp.index()].location;
                        t += at.travel_time(next, scenario.config.speed);
                        at = next;
                    }
                    t
                };
                let travel = match (plan.as_ref(), st.fault_rng.as_mut()) {
                    (Some(plan), Some(rng)) => travel * lognormal_factor(rng, plan.travel_sigma),
                    _ => travel,
                };
                st.busy_until[orig] = now + travel;
                st.location[orig] = match served.last() {
                    Some(dp) => scenario.delivery_points[dp.index()].location,
                    // Dropped out before the first stop: stranded at the dc.
                    None => dc,
                };

                let on_manifest = |p: &Pending| {
                    p.eligible_after <= now && served.contains(&p.task.delivery_point)
                };
                let ledger = &mut st.ledgers[orig];
                ledger.earnings += if served.len() == route.len() {
                    route.total_reward()
                } else {
                    st.pending
                        .iter()
                        .filter(|p| on_manifest(p))
                        .map(|p| p.task.reward)
                        .sum()
                };
                ledger.busy_hours += travel;
                ledger.routes += 1;
                ledger.tasks_delivered += st.pending.iter().filter(|p| on_manifest(p)).count();
                delivered_dps.extend_from_slice(served);
            }
            // All pending tasks at a served delivery point are delivered
            // (Definition 2: a route serves the full task set of each dp).
            if !delivered_dps.is_empty() {
                let before = st.pending.len();
                st.pending.retain(|p| {
                    !(p.eligible_after <= now && delivered_dps.contains(&p.task.delivery_point))
                });
                st.tasks_completed += before - st.pending.len();
            }
            // Requeue-on-failure with bounded retries: every task on a
            // failed manifest either returns to the pool with a backoff
            // window or, once its retry budget is spent, is abandoned.
            if !failed_dps.is_empty() {
                let plan = plan.expect("failed stops can only come from a fault plan");
                st.pending.retain_mut(|p| {
                    if p.eligible_after <= now && failed_dps.contains(&p.task.delivery_point) {
                        if p.retries >= plan.max_retries {
                            st.tasks_abandoned += 1;
                            fta_obs::counter("sim.abandoned", 1);
                            return false;
                        }
                        p.retries += 1;
                        p.eligible_after = now + plan.backoff;
                        st.reassignments += 1;
                        fta_obs::counter("sim.retries", 1);
                    }
                    true
                });
            }
            let mut record_json: Vec<u8> = Vec::new();
            if let Some(mut record) = round_record {
                let incomes: Vec<f64> = st.ledgers.iter().map(|l| l.earnings).collect();
                record.fairness = fta_algorithms::ledger::fairness_from_incomes(&incomes);
                if durable.is_some() {
                    record_json = fta_obs::ledger::record_to_json(&record).into_bytes();
                }
                if let Some(records) = ledger_sink.as_deref_mut() {
                    records.push(record);
                }
            }
            // Journal the round *after* everything above settled: the
            // frame is a pure function of state the simulation computed
            // anyway, so durability observes the day without perturbing
            // it. Ticks between journaled rounds are deterministic given
            // this state (the fault-RNG stream is part of it), which is
            // why journaling only at solve rounds still recovers
            // bit-for-bit.
            if let Some(sink) = durable.as_deref_mut() {
                let worker_keys: Vec<u64>;
                let cache;
                let solver_seed = match inc_solver.as_ref().and_then(RoundSolver::cache_seed) {
                    Some(seed) => {
                        worker_keys = idle.iter().map(|&w| w as u64).collect();
                        cache = seed;
                        Some((&instance, worker_keys.as_slice(), &cache))
                    }
                    None => None,
                };
                let payload = state::encode_frame(st.rounds as u64, st, solver_seed, &record_json);
                sink.record(st.rounds as u64, &payload);
            }
        }
        st.now += config.assignment_period;
    }

    // Arrivals after the final assignment round were never snapshotted;
    // ingest them so the end-of-horizon accounting covers every task.
    while st.next_arrival < scenario.tasks.len() {
        let entry = make_pending(
            scenario.tasks[st.next_arrival],
            plan.as_ref(),
            st.fault_rng.as_mut(),
        );
        st.pending.push(entry);
        st.next_arrival += 1;
    }

    // Cancellation fires first, then anything past its deadline at the
    // horizon is lost; the rest pends.
    let mut tasks_pending = 0usize;
    for p in &st.pending {
        if p.cancel_at.is_some_and(|c| c <= config.horizon) {
            st.tasks_cancelled += 1;
        } else if p.task.deadline <= config.horizon {
            st.tasks_expired += 1;
        } else {
            tasks_pending += 1;
        }
    }

    DayMetrics {
        ledgers: std::mem::take(&mut st.ledgers),
        tasks_arrived: st.next_arrival,
        tasks_completed: st.tasks_completed,
        tasks_expired: st.tasks_expired,
        tasks_pending,
        tasks_cancelled: st.tasks_cancelled,
        tasks_abandoned: st.tasks_abandoned,
        reassignments: st.reassignments,
        worker_no_shows: st.worker_no_shows,
        route_dropouts: st.route_dropouts,
        degraded_rounds: st.degraded_rounds,
        rounds: st.rounds,
        horizon: config.horizon,
    }
}

/// What [`restore`] reconstructed, alongside the finished day's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The journaled round the day resumed after (1-based).
    pub resumed_round: u64,
    /// Round of the snapshot that participated in recovery, if any.
    pub snapshot_round: Option<u64>,
    /// Clean log frames found after the snapshot.
    pub frames: usize,
    /// True when the log ended mid-frame (crash signature); the torn
    /// round is re-simulated, not lost.
    pub torn_tail: bool,
    /// True when the incremental solver's warm caches were re-hydrated
    /// from the journal (incremental batch runs only).
    pub cache_rehydrated: bool,
    /// Ledger records re-staged from the journal into the caller's sink.
    pub replayed_records: usize,
}

/// Resumes a crashed day from its durable directory and runs it to the
/// horizon. See [`restore_with_ledger`] for the semantics.
///
/// # Errors
///
/// Fails typed (never panics on bad bytes) when the directory holds no
/// recoverable state, belongs to a different scenario/config
/// (fingerprint mismatch), or is structurally corrupt.
///
/// # Panics
///
/// Panics if `config.durable` is `None`, the horizon or period is not
/// positive, or the fault plan fails validation — the same configuration
/// contract as [`run`].
pub fn restore(
    scenario: &Scenario,
    config: &SimConfig,
) -> Result<(SimReport, RecoveryInfo), DurableError> {
    restore_inner(scenario, config, None)
}

/// [`restore`], additionally re-staging the journaled per-round ledger
/// records into `records` before appending the resumed rounds — so the
/// recovered day's ledger is continuous from round 1 (minus any rounds
/// truncated by an earlier snapshot, which bound the log's history).
///
/// The resumed day is **bit-for-bit identical** to the uninterrupted run:
/// every journaled frame carries the complete loop state (including the
/// fault-RNG stream position and, on incremental runs, the solver's
/// cache seed), so there is no divergent replay path. The crash costs at
/// most the torn final round, which is re-simulated deterministically.
///
/// # Errors
///
/// See [`restore`].
pub fn restore_with_ledger(
    scenario: &Scenario,
    config: &SimConfig,
    records: &mut Vec<SolveRecord>,
) -> Result<(SimReport, RecoveryInfo), DurableError> {
    restore_inner(scenario, config, Some(records))
}

fn restore_inner(
    scenario: &Scenario,
    config: &SimConfig,
    mut ledger_sink: Option<&mut Vec<SolveRecord>>,
) -> Result<(SimReport, RecoveryInfo), DurableError> {
    validate_config(config);
    let d = config
        .durable
        .as_ref()
        .expect("restore requires SimConfig::durable");
    let fingerprint = state::fingerprint(scenario, config);
    let rec = fta_durable::recover(&d.dir, Some(fingerprint))?;

    // Decode every surviving recovery point and order by round: a crash
    // between snapshot write and log truncation legitimately leaves log
    // frames older than the snapshot, which must not regress the resume
    // point or duplicate replayed ledger records.
    let mut decoded: Vec<state::DecodedFrame> = Vec::new();
    if let Some(snap) = &rec.snapshot {
        decoded.push(state::decode_frame(&snap.payload)?);
    }
    for frame in &rec.frames {
        decoded.push(state::decode_frame(frame)?);
    }
    decoded.sort_by_key(|f| f.round);
    decoded.dedup_by_key(|f| f.round);

    let mut replayed_records = 0usize;
    if let Some(records) = ledger_sink.as_deref_mut() {
        for frame in &decoded {
            if frame.record_json.is_empty() {
                continue;
            }
            let line = std::str::from_utf8(&frame.record_json)
                .map_err(|_| DurableError::Corrupt("journaled ledger record is not UTF-8"))?;
            let record = fta_obs::ledger::record_from_json(line)
                .map_err(|_| DurableError::Corrupt("journaled ledger record does not parse"))?;
            records.push(record);
            replayed_records += 1;
        }
    }

    let newest = decoded.pop().ok_or(DurableError::NoState)?;
    let state::DecodedFrame {
        round: resumed_round,
        state: mut st,
        solver: solver_seed,
        ..
    } = newest;
    if st.ledgers.len() != scenario.workers.len()
        || st.busy_until.len() != scenario.workers.len()
        || st.location.len() != scenario.workers.len()
        || st.next_arrival > scenario.tasks.len()
    {
        return Err(DurableError::Corrupt(
            "journaled state does not match the scenario",
        ));
    }

    // Re-hydrate the incremental solver's warm caches so the resumed
    // rounds take the same (17× faster, and for iterative games
    // differently-converged) warm path the uninterrupted day would have.
    let mut inc_solver: Option<RoundSolver> = None;
    let mut cache_rehydrated = false;
    if config.incremental {
        if let (DispatchPolicy::Batch(algorithm), Some(seed)) = (config.policy, &solver_seed) {
            let solve_config = SolveConfig {
                vdps: config.vdps,
                algorithm,
                parallel: config.parallel,
                budget: config.budget,
                ..SolveConfig::new(Algorithm::Gta)
            };
            let mut solver = RoundSolver::new(solve_config, config.shards, config.shard_by);
            cache_rehydrated = solver.rehydrate(&seed.instance, &seed.worker_keys, &seed.cache);
            if cache_rehydrated {
                inc_solver = Some(solver);
            }
        }
    }

    let info = RecoveryInfo {
        resumed_round,
        snapshot_round: rec.snapshot.as_ref().map(|s| s.round),
        frames: rec.frames.len(),
        torn_tail: rec.torn_tail,
        cache_rehydrated,
        replayed_records,
    };

    // The journaled frame closes its round; the day resumes at the next
    // tick, with journaling continuing into the same directory (a torn
    // tail is overwritten in place).
    st.now += config.assignment_period;
    let journal = Journal::resume(&d.dir, fingerprint, d.fsync, d.snapshot_every, &rec)?;
    let mut durable = DurableSink {
        journal,
        crash_after_round: d.crash_after_round,
        dead: false,
    };
    let report = drive(
        scenario,
        config,
        &mut st,
        &mut inc_solver,
        ledger_sink,
        Some(&mut durable),
    );
    Ok((report, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use fta_algorithms::IegtConfig;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::generate(
            &ScenarioConfig {
                n_workers: 8,
                n_delivery_points: 20,
                extent: 3.0,
                arrival_rate: 60.0,
                ..ScenarioConfig::default()
            },
            2.0,
            seed,
        )
    }

    fn config(algorithm: Algorithm) -> SimConfig {
        SimConfig {
            horizon: 2.0,
            assignment_period: 0.25,
            vdps: VdpsConfig::pruned(1.5, 3),
            ..SimConfig::day(algorithm)
        }
    }

    #[test]
    fn task_accounting_is_conserved() {
        let scenario = small_scenario(1);
        let m = run(&scenario, &config(Algorithm::Gta));
        assert_eq!(m.tasks_arrived, scenario.tasks.len());
        let delivered: usize = m.ledgers.iter().map(|l| l.tasks_delivered).sum();
        assert_eq!(delivered, m.tasks_completed);
        assert_eq!(
            m.tasks_completed + m.tasks_expired + m.tasks_pending,
            m.tasks_arrived,
            "tasks must be completed, expired, or pending"
        );
    }

    #[test]
    fn some_tasks_are_completed_under_reasonable_load() {
        let m = run(&small_scenario(2), &config(Algorithm::Gta));
        assert!(m.tasks_completed > 0, "no tasks delivered at all");
        assert!(m.rounds > 0);
        assert!(m.completion_rate() > 0.0);
    }

    #[test]
    fn earnings_match_route_rewards() {
        let m = run(&small_scenario(3), &config(Algorithm::Gta));
        let total_earned: f64 = m.ledgers.iter().map(|l| l.earnings).sum();
        // Unit rewards: total earnings equal delivered task count.
        assert!((total_earned - m.tasks_completed as f64).abs() < 1e-9);
    }

    #[test]
    fn busy_workers_are_not_double_assigned() {
        // With a long period and slow workers, utilisation must stay ≤ 1
        // plus at most one overhanging route.
        let m = run(&small_scenario(4), &config(Algorithm::Gta));
        for (i, l) in m.ledgers.iter().enumerate() {
            assert!(
                l.busy_hours <= m.horizon + 3.0,
                "worker {i} busy {} h in a {} h day",
                l.busy_hours,
                m.horizon
            );
        }
    }

    #[test]
    fn period_longer_than_horizon_runs_no_rounds() {
        let scenario = small_scenario(7);
        let mut cfg = config(Algorithm::Gta);
        cfg.assignment_period = 10.0; // > 2 h horizon
        let m = run(&scenario, &cfg);
        assert_eq!(m.rounds, 0);
        assert_eq!(m.tasks_completed, 0);
        // Every task is either expired or pending at the horizon.
        assert_eq!(m.tasks_expired + m.tasks_pending, m.tasks_arrived);
    }

    #[test]
    fn deterministic_per_seed_and_config() {
        let scenario = small_scenario(5);
        let a = run(&scenario, &config(Algorithm::Gta));
        let b = run(&scenario, &config(Algorithm::Gta));
        assert_eq!(a, b);
    }

    #[test]
    fn immediate_dispatch_conserves_tasks_and_is_single_stop() {
        let scenario = small_scenario(6);
        let mut cfg = config(Algorithm::Gta);
        cfg.policy = DispatchPolicy::Immediate;
        let m = run(&scenario, &cfg);
        assert_eq!(
            m.tasks_completed + m.tasks_expired + m.tasks_pending,
            m.tasks_arrived
        );
        // Single-stop routes: each completed route delivers exactly the
        // pending tasks of one delivery point, so routes ≥ ... at least
        // every delivering worker has routes ≥ 1.
        for l in &m.ledgers {
            if l.tasks_delivered > 0 {
                assert!(l.routes > 0);
            }
        }
        assert!(
            m.tasks_completed > 0,
            "immediate dispatch delivered nothing"
        );
    }

    #[test]
    fn incremental_gta_day_is_bit_identical_to_cold() {
        // GTA is deterministic and single-attempt, and the delta-updated
        // pools are bit-identical to regeneration, so the incremental day
        // must reproduce the cold day exactly — round by round.
        let scenario = small_scenario(20);
        let cold = run(&scenario, &config(Algorithm::Gta));
        let warm = run(&scenario, &config(Algorithm::Gta).with_incremental());
        assert_eq!(cold, warm);
    }

    #[test]
    fn incremental_iterative_day_is_valid_and_deterministic() {
        let scenario = small_scenario(21);
        let cfg = config(Algorithm::Iegt(IegtConfig::default())).with_incremental();
        let a = run(&scenario, &cfg);
        let b = run(&scenario, &cfg);
        assert_eq!(a, b, "incremental runs must be reproducible");
        assert!(a.is_conserved(), "accounting broken: {a:?}");
        assert!(a.tasks_completed > 0, "incremental day delivered nothing");
    }

    #[test]
    fn sharded_gta_day_is_bit_identical_to_flat() {
        // Sharding only regroups which pool job solves each center; the
        // per-center work and the merge order are unchanged, so a
        // deterministic algorithm's day must be bit-identical at any
        // shard count, cold and incremental alike.
        let scenario = small_scenario(23);
        let flat = run(&scenario, &config(Algorithm::Gta));
        for by in [ShardBy::Hash, ShardBy::Geo] {
            let cold = run(&scenario, &config(Algorithm::Gta).with_shards(3, by));
            assert_eq!(flat, cold, "cold sharded day diverged ({by:?})");
            let warm = run(
                &scenario,
                &config(Algorithm::Gta).with_shards(3, by).with_incremental(),
            );
            assert_eq!(flat, warm, "incremental sharded day diverged ({by:?})");
        }
    }

    #[test]
    fn sharded_iterative_day_is_valid_and_deterministic() {
        let scenario = small_scenario(24);
        let cfg = config(Algorithm::Iegt(IegtConfig::default()))
            .with_shards(2, ShardBy::Geo)
            .with_incremental();
        let a = run(&scenario, &cfg);
        let b = run(&scenario, &cfg);
        assert_eq!(a, b, "sharded incremental runs must be reproducible");
        assert!(a.is_conserved(), "accounting broken: {a:?}");
        assert!(a.tasks_completed > 0, "sharded day delivered nothing");
    }

    #[test]
    fn incremental_with_budget_still_conserves() {
        // A budget disables caching inside the solver; the incremental
        // flag must degrade gracefully to per-round cold solves.
        use fta_core::SolveBudget;
        let scenario = small_scenario(22);
        let cfg = config(Algorithm::Gta)
            .with_budget(SolveBudget::wall_ms(0))
            .with_incremental();
        let m = run(&scenario, &cfg);
        assert!(m.is_conserved(), "accounting broken: {m:?}");
        assert_eq!(m.degraded_rounds, m.rounds);
    }

    #[test]
    fn churn_between_reports_arrivals_departures_and_age() {
        let prev = RoundShape {
            now: 1.0,
            center_workers: vec![vec![0, 1], vec![4]],
            center_tasks: vec![5, 2],
        };
        let cur = RoundShape {
            now: 1.25,
            center_workers: vec![vec![1, 2], vec![]],
            center_tasks: vec![3, 6],
        };
        let churn = churn_between(Some(&prev), &cur, &[1, 2]);
        assert!((churn.age - 0.25).abs() < 1e-12);
        assert_eq!(churn.worker_keys, vec![1, 2]);
        assert_eq!(churn.per_center[0].arrived_workers, 1); // worker 2
        assert_eq!(churn.per_center[0].departed_workers, 1); // worker 0
        assert_eq!(churn.per_center[0].removed_tasks, 2);
        assert_eq!(churn.per_center[1].added_tasks, 4);
        assert_eq!(churn.per_center[1].departed_workers, 1);
        // First round: no previous shape, empty diagnostics.
        let first = churn_between(None, &cur, &[1, 2]);
        assert_eq!(first.age, 0.0);
        assert!(first.per_center.is_empty());
    }

    #[test]
    fn ledgered_run_matches_plain_run_and_records_every_round() {
        let scenario = small_scenario(40);
        let cfg = config(Algorithm::Gta);
        let plain = run(&scenario, &cfg);
        let mut records = Vec::new();
        let ledgered = run_with_ledger(&scenario, &cfg, &mut records);
        assert_eq!(plain, ledgered, "the ledger must only observe the day");
        assert_eq!(records.len(), ledgered.rounds);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.round, Some(i as u64 + 1));
            assert!(r.sim_hours.is_some_and(|h| h > 0.0));
            assert_eq!(r.algo, "GTA");
            assert_eq!(r.engine, "batch");
            assert_eq!(r.fairness.incomes.len(), scenario.workers.len());
            assert!(!r.centers.is_empty());
        }
        // Cumulative incomes: the final record's distribution is the
        // day-end earnings vector.
        let last = records.last().expect("at least one round ran");
        let earnings: Vec<f64> = ledgered.ledgers.iter().map(|l| l.earnings).collect();
        assert_eq!(last.fairness.incomes, earnings);
        // The records survive the ledger container's serialization.
        let ledger = fta_obs::ledger::Ledger {
            label: "sim-test".to_string(),
            created_unix_ms: 0,
            records,
        };
        let parsed =
            fta_obs::ledger::parse(&fta_obs::ledger::to_jsonl(&ledger)).expect("ledger parses");
        assert_eq!(parsed.records.len(), ledgered.rounds);
    }

    #[test]
    fn faulted_budgeted_ledger_attributes_degradation() {
        use fta_core::SolveBudget;
        let scenario = small_scenario(41);
        let cfg = config(Algorithm::Gta)
            .with_budget(SolveBudget::wall_ms(0))
            .with_faults(FaultPlan::stress(9));
        let mut records = Vec::new();
        let m = run_with_ledger(&scenario, &cfg, &mut records);
        assert_eq!(records.len(), m.rounds);
        assert!(records.iter().all(|r| r.degraded && r.budget_exhausted));
        for r in &records {
            let degraded_center = r
                .centers
                .iter()
                .find(|c| c.rung != "full")
                .expect("0 ms budget degrades every round");
            assert_eq!(degraded_center.budget_axis.as_deref(), Some("wall_ms"));
        }
    }

    #[test]
    fn fault_plan_is_deterministic_per_seed() {
        let scenario = small_scenario(11);
        let cfg = config(Algorithm::Gta).with_faults(FaultPlan::stress(77));
        let a = run(&scenario, &cfg);
        let b = run(&scenario, &cfg);
        assert_eq!(a, b, "same fault seed must reproduce the same day");
        let c = run(
            &scenario,
            &config(Algorithm::Gta).with_faults(FaultPlan::stress(78)),
        );
        assert_ne!(a, c, "different fault seeds should diverge");
    }

    #[test]
    fn zero_rate_fault_plan_changes_nothing() {
        let scenario = small_scenario(12);
        let pristine = run(&scenario, &config(Algorithm::Gta));
        let with_inert_plan = run(
            &scenario,
            &config(Algorithm::Gta).with_faults(FaultPlan::none(123)),
        );
        assert_eq!(pristine, with_inert_plan);
    }

    #[test]
    fn faults_conserve_task_accounting() {
        let scenario = small_scenario(13);
        let m = run(
            &scenario,
            &config(Algorithm::Gta).with_faults(FaultPlan::stress(5)),
        );
        assert!(m.is_conserved(), "accounting broken: {m:?}");
        assert!(
            m.worker_no_shows + m.route_dropouts > 0,
            "stress plan injected no route faults over a 2 h day"
        );
        assert!(
            m.reassignments + m.tasks_abandoned > 0,
            "route faults produced neither requeues nor abandonments"
        );
        let delivered: usize = m.ledgers.iter().map(|l| l.tasks_delivered).sum();
        assert_eq!(delivered, m.tasks_completed);
    }

    #[test]
    fn zero_retry_budget_abandons_on_first_failure() {
        let scenario = small_scenario(14);
        let plan = FaultPlan {
            p_no_show: 1.0, // every route fails before starting
            max_retries: 0, // and every failure abandons its tasks
            ..FaultPlan::none(3)
        };
        let m = run(&scenario, &config(Algorithm::Gta).with_faults(plan));
        assert_eq!(m.tasks_completed, 0, "no route ever starts");
        assert_eq!(m.reassignments, 0, "zero retry budget forbids requeues");
        assert!(m.tasks_abandoned > 0);
        assert!(m.worker_no_shows > 0);
        assert!(m.is_conserved());
        // No-show workers never move or accrue hours.
        for l in &m.ledgers {
            assert_eq!(l.tasks_delivered, 0);
            assert!(l.busy_hours == 0.0);
        }
    }

    #[test]
    fn retries_requeue_before_abandoning() {
        let scenario = small_scenario(15);
        let plan = FaultPlan {
            p_no_show: 1.0,
            max_retries: 2,
            backoff: 0.25,
            ..FaultPlan::none(3)
        };
        let m = run(&scenario, &config(Algorithm::Gta).with_faults(plan));
        assert_eq!(m.tasks_completed, 0);
        assert!(m.reassignments > 0, "with retries left, failures requeue");
        assert!(m.is_conserved());
    }

    #[test]
    fn cancellations_remove_tasks_before_dispatch() {
        let scenario = small_scenario(16);
        let plan = FaultPlan {
            p_cancel: 1.0, // every task is cancelled some time before its deadline
            ..FaultPlan::none(4)
        };
        let m = run(&scenario, &config(Algorithm::Gta).with_faults(plan));
        assert!(m.tasks_cancelled > 0);
        assert!(m.is_conserved());
    }

    #[test]
    fn budgeted_rounds_degrade_and_stay_deterministic() {
        use fta_core::SolveBudget;
        let scenario = small_scenario(17);
        let cfg =
            config(Algorithm::Iegt(IegtConfig::default())).with_budget(SolveBudget::wall_ms(0));
        let a = run(&scenario, &cfg);
        let b = run(&scenario, &cfg);
        assert_eq!(
            a, b,
            "an already-expired deadline degrades deterministically"
        );
        assert!(a.rounds > 0);
        assert_eq!(
            a.degraded_rounds, a.rounds,
            "every budgeted round should fall to the bottom rung"
        );
        assert!(a.is_conserved());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_fault_plan_is_rejected() {
        let scenario = small_scenario(18);
        let plan = FaultPlan {
            p_no_show: 2.0,
            ..FaultPlan::none(0)
        };
        let _ = run(&scenario, &config(Algorithm::Gta).with_faults(plan));
    }

    // ---- durability: journaling, crash recovery, bit-for-bit resume ----

    use std::fs;
    use std::path::{Path, PathBuf};

    fn durable_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fta-sim-durable-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// One journaled day with no snapshot truncation, so the wal holds
    /// every frame — the raw material for simulated crashes.
    fn journaled_config(algorithm: Algorithm, dir: &Path) -> SimConfig {
        config(algorithm).with_durable(DurableConfig {
            dir: dir.to_path_buf(),
            fsync: fta_durable::FsyncPolicy::Never,
            snapshot_every: u64::MAX,
            crash_after_round: None,
        })
    }

    /// Byte offset of the end of the first `frames` clean wal frames.
    fn wal_prefix_len(dir: &Path, frames: usize) -> u64 {
        let log = fta_durable::read_log(&dir.join(fta_durable::WAL_FILE)).unwrap();
        assert!(
            frames <= log.frames.len(),
            "day ran fewer rounds than asked"
        );
        let mut off = fta_durable::log::WAL_HEADER_LEN;
        for f in log.frames.iter().take(frames) {
            off += (fta_durable::log::FRAME_HEADER_LEN + f.len()) as u64;
        }
        off
    }

    /// Clones a journaled directory and truncates its wal to `len` bytes,
    /// reproducing the on-disk state a crash at that point leaves behind.
    fn crashed_copy(src: &Path, name: &str, len: u64) -> PathBuf {
        let dst = durable_dir(name);
        fs::create_dir_all(&dst).unwrap();
        for entry in fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
        fs::OpenOptions::new()
            .write(true)
            .open(dst.join(fta_durable::WAL_FILE))
            .unwrap()
            .set_len(len)
            .unwrap();
        dst
    }

    #[test]
    fn durable_run_is_bit_identical_to_plain_run() {
        // Journaling must only observe the day: every DayMetrics field and
        // every ledger record is unchanged by it, faults and all.
        let scenario = small_scenario(50);
        let cfg = config(Algorithm::Gta).with_faults(FaultPlan::stress(7));
        let mut plain_records = Vec::new();
        let plain = run_with_ledger(&scenario, &cfg, &mut plain_records);

        let dir = durable_dir("observe-only");
        let durable_cfg = journaled_config(Algorithm::Gta, &dir).with_faults(FaultPlan::stress(7));
        let mut durable_records = Vec::new();
        let journaled = run_with_ledger(&scenario, &durable_cfg, &mut durable_records);

        assert_eq!(plain, journaled, "journaling perturbed the day");
        assert_eq!(plain_records.len(), durable_records.len());
        for (a, b) in plain_records.iter().zip(&durable_records) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.fairness.incomes, b.fairness.incomes);
            assert_eq!(a.degraded, b.degraded);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_is_bit_identical_at_every_crash_round() {
        // Crash after each journaled round in turn; every recovery must
        // finish the day bit-for-bit equal to the uninterrupted run.
        let scenario = small_scenario(51);
        let dir = durable_dir("every-round");
        let cfg = journaled_config(Algorithm::Gta, &dir).with_faults(FaultPlan::stress(3));
        let uninterrupted = run(&scenario, &cfg);
        let rounds = fta_durable::read_log(&dir.join(fta_durable::WAL_FILE))
            .unwrap()
            .frames
            .len();
        assert!(rounds >= 3, "need a few rounds to make this meaningful");
        for k in 1..=rounds {
            let crash = crashed_copy(&dir, &format!("every-round-{k}"), wal_prefix_len(&dir, k));
            let mut cfg_k = cfg.clone();
            cfg_k.durable.as_mut().unwrap().dir.clone_from(&crash);
            let (recovered, info) = restore(&scenario, &cfg_k).expect("recovery succeeds");
            assert_eq!(
                recovered, uninterrupted,
                "crash after round {k} did not recover bit-for-bit"
            );
            assert_eq!(info.resumed_round, k as u64);
            assert!(!info.torn_tail);
            let _ = fs::remove_dir_all(&crash);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_with_torn_tail_resumes_from_previous_round() {
        // A frame torn mid-write (the crash signature) costs exactly that
        // round: recovery resumes from the previous frame and still ends
        // bit-identical, reporting the tear.
        let scenario = small_scenario(52);
        let dir = durable_dir("torn");
        let cfg = journaled_config(Algorithm::Gta, &dir);
        let uninterrupted = run(&scenario, &cfg);
        let clean = wal_prefix_len(&dir, 2);
        let torn = crashed_copy(&dir, "torn-crash", clean + 11); // partial 3rd frame
        let mut cfg_t = cfg.clone();
        cfg_t.durable.as_mut().unwrap().dir.clone_from(&torn);
        let (recovered, info) = restore(&scenario, &cfg_t).expect("torn tail recovers");
        assert_eq!(recovered, uninterrupted);
        assert!(info.torn_tail, "the tear must be reported");
        assert_eq!(info.resumed_round, 2);
        let _ = fs::remove_dir_all(&torn);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rehydrates_incremental_caches_bit_for_bit() {
        // The hard case: IEGT's warm path converges differently from cold
        // multi-restart, so recovery must re-install the journaled
        // equilibria rather than re-solve — otherwise the resumed day
        // diverges from the uninterrupted one.
        let scenario = small_scenario(53);
        let dir = durable_dir("inc-iegt");
        let cfg = journaled_config(Algorithm::Iegt(IegtConfig::default()), &dir).with_incremental();
        let uninterrupted = run(&scenario, &cfg);
        let rounds = fta_durable::read_log(&dir.join(fta_durable::WAL_FILE))
            .unwrap()
            .frames
            .len();
        assert!(rounds >= 3);
        let k = rounds / 2;
        let crash = crashed_copy(&dir, "inc-iegt-crash", wal_prefix_len(&dir, k));
        let mut cfg_k = cfg.clone();
        cfg_k.durable.as_mut().unwrap().dir.clone_from(&crash);
        let (recovered, info) = restore(&scenario, &cfg_k).expect("recovery succeeds");
        assert!(
            info.cache_rehydrated,
            "incremental recovery must re-hydrate the solver caches"
        );
        assert_eq!(
            recovered, uninterrupted,
            "re-hydrated warm path diverged from the live warm path"
        );
        let _ = fs::remove_dir_all(&crash);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rehydrates_sharded_incremental_caches() {
        // A sharded incremental day journals a center-sorted cache seed
        // interchangeable with the flat solver's; recovery must partition
        // it back per shard and resume bit-for-bit.
        let scenario = small_scenario(57);
        let dir = durable_dir("inc-sharded");
        let cfg = journaled_config(Algorithm::Iegt(IegtConfig::default()), &dir)
            .with_incremental()
            .with_shards(2, ShardBy::Geo);
        let uninterrupted = run(&scenario, &cfg);
        let rounds = fta_durable::read_log(&dir.join(fta_durable::WAL_FILE))
            .unwrap()
            .frames
            .len();
        assert!(rounds >= 3);
        let k = rounds / 2;
        let crash = crashed_copy(&dir, "inc-sharded-crash", wal_prefix_len(&dir, k));
        let mut cfg_k = cfg.clone();
        cfg_k.durable.as_mut().unwrap().dir.clone_from(&crash);
        let (recovered, info) = restore(&scenario, &cfg_k).expect("recovery succeeds");
        assert!(
            info.cache_rehydrated,
            "sharded incremental recovery must re-hydrate the solver caches"
        );
        assert_eq!(
            recovered, uninterrupted,
            "re-hydrated sharded warm path diverged from the live warm path"
        );
        let _ = fs::remove_dir_all(&crash);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_with_ledger_replays_journaled_records() {
        // The recovered ledger is continuous: journaled rounds are
        // replayed verbatim, resumed rounds are appended live.
        let scenario = small_scenario(54);
        let dir = durable_dir("ledger-replay");
        let cfg = journaled_config(Algorithm::Gta, &dir);
        let mut full_records = Vec::new();
        let uninterrupted = run_with_ledger(&scenario, &cfg, &mut full_records);
        let k = 2usize;
        let crash = crashed_copy(&dir, "ledger-replay-crash", wal_prefix_len(&dir, k));
        let mut cfg_k = cfg.clone();
        cfg_k.durable.as_mut().unwrap().dir.clone_from(&crash);
        let mut records = Vec::new();
        let (recovered, info) =
            restore_with_ledger(&scenario, &cfg_k, &mut records).expect("recovery succeeds");
        assert_eq!(recovered, uninterrupted);
        assert_eq!(info.replayed_records, k);
        assert_eq!(records.len(), full_records.len());
        for (a, b) in records.iter().zip(&full_records) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.algo, b.algo);
            // Fairness is computed from journaled f64 earnings; the JSON
            // round-trip must preserve them exactly.
            assert_eq!(a.fairness.incomes, b.fairness.incomes);
        }
        let _ = fs::remove_dir_all(&crash);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_snapshot_cycle_survives_log_truncation() {
        // With a real snapshot cadence the log is truncated as the day
        // runs; recovery must stitch snapshot + log tail back together.
        let scenario = small_scenario(55);
        let dir = durable_dir("snap-cycle");
        let mut cfg = journaled_config(Algorithm::Gta, &dir);
        cfg.durable.as_mut().unwrap().snapshot_every = 3;
        let uninterrupted = run(&scenario, &cfg);
        let (recovered, info) = restore(&scenario, &cfg).expect("recovery succeeds");
        assert_eq!(recovered, uninterrupted);
        assert!(info.snapshot_round.is_some(), "a snapshot should exist");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_refuses_foreign_journal() {
        // A journal written under a different scenario must be refused,
        // not restored into a silently-wrong day.
        let scenario = small_scenario(56);
        let dir = durable_dir("foreign");
        let cfg = journaled_config(Algorithm::Gta, &dir);
        let _ = run(&scenario, &cfg);
        let other = small_scenario(57);
        assert!(matches!(
            restore(&other, &cfg),
            Err(fta_durable::DurableError::FingerprintMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_empty_or_missing_dir_is_no_state() {
        let scenario = small_scenario(58);
        let dir = durable_dir("nostate");
        let cfg = config(Algorithm::Gta).with_durable(DurableConfig::new(&dir));
        assert!(matches!(
            restore(&scenario, &cfg),
            Err(fta_durable::DurableError::NoState)
        ));
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            restore(&scenario, &cfg),
            Err(fta_durable::DurableError::NoState)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_games_beat_immediate_dispatch_on_day_fairness() {
        // The "before adopting the paper" baseline: across seeds, IEGT's
        // day-end earnings Gini should beat naive nearest-courier dispatch.
        let mut immed_gini = 0.0;
        let mut iegt_gini = 0.0;
        for seed in 0..4 {
            let scenario = small_scenario(30 + seed);
            let mut immed_cfg = config(Algorithm::Gta);
            immed_cfg.policy = DispatchPolicy::Immediate;
            immed_gini += run(&scenario, &immed_cfg).earnings_fairness().gini;
            iegt_gini += run(&scenario, &config(Algorithm::Iegt(IegtConfig::default())))
                .earnings_fairness()
                .gini;
        }
        assert!(
            iegt_gini <= immed_gini + 0.05,
            "IEGT day-Gini {iegt_gini} much worse than immediate dispatch {immed_gini}"
        );
    }

    #[test]
    fn fair_policy_spreads_earnings_more_evenly() {
        // Averaged over seeds, IEGT's daily-earnings Gini should not exceed
        // GTA's — the longitudinal version of the paper's claim.
        let mut gta_gini = 0.0;
        let mut iegt_gini = 0.0;
        for seed in 0..4 {
            let scenario = small_scenario(10 + seed);
            gta_gini += run(&scenario, &config(Algorithm::Gta))
                .earnings_fairness()
                .gini;
            iegt_gini += run(&scenario, &config(Algorithm::Iegt(IegtConfig::default())))
                .earnings_fairness()
                .gini;
        }
        assert!(
            iegt_gini <= gta_gini + 0.05,
            "IEGT day-Gini {iegt_gini} much worse than GTA {gta_gini}"
        );
    }
}
